//! Umbrella crate re-exporting the CABA stack.
pub use caba_compress as compress;
pub use caba_core as core;
pub use caba_energy as energy;
pub use caba_isa as isa;
pub use caba_mem as mem;
pub use caba_sim as sim;
pub use caba_stats as stats;
pub use caba_store as store;
pub use caba_workloads as workloads;
