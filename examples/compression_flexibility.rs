//! Compression flexibility (§6.3): the same CABA framework drives BDI, FPC,
//! C-Pack, and a best-of-all selector — the paper's headline argument
//! against dedicated single-algorithm hardware.
//!
//! ```sh
//! cargo run --release --example compression_flexibility
//! ```

use caba::compress::{Algorithm, BestOfAll, LINE_SIZE};
use caba::core::CabaController;
use caba::sim::{Design, GpuConfig};
use caba::workloads::{app, run_app, DataProfile};

fn main() {
    // Part 1: raw algorithm behaviour on characteristic data patterns.
    println!("Per-pattern compressed sizes of one {LINE_SIZE}-byte line:\n");
    let patterns = [
        (
            "low-dynamic-range ints",
            DataProfile::LowDynamicRange {
                base: 0x0BAD_C0DE,
                range: 90,
            },
        ),
        (
            "sparse small ints     ",
            DataProfile::SparseSmall {
                zero_prob: 0.7,
                max_value: 48,
            },
        ),
        (
            "pointer-pool words    ",
            DataProfile::PointerPool { pool: 6 },
        ),
        ("high-entropy noise    ", DataProfile::Random),
    ];
    println!("pattern                  BDI     FPC     C-Pack  BestOfAll");
    for (name, profile) in patterns {
        let line = profile.generate_bytes(LINE_SIZE / 4, 99);
        let mut cells = Vec::new();
        for alg in Algorithm::ALL {
            let size = alg
                .compressor()
                .compress(&line)
                .map(|c| format!("{:>3} B", c.size_bytes()))
                .unwrap_or_else(|| "  raw".into());
            cells.push(size);
        }
        let best = BestOfAll::new()
            .compress(&line)
            .map(|c| format!("{:>3} B ({})", c.size_bytes(), c.algorithm.name()))
            .unwrap_or_else(|| "  raw".into());
        // Algorithm::ALL order is FPC, BDI, C-Pack; print BDI first.
        println!(
            "{name}  {:>6}  {:>6}  {:>6}  {best}",
            cells[1], cells[0], cells[2]
        );
    }

    // Part 2: whole-application runs, swapping the algorithm by swapping the
    // controller — no other change.
    println!("\nEnd-to-end speedup on PVC (BDI-friendly) and nw (FPC-friendly):\n");
    for name in ["PVC", "nw"] {
        let a = app(name).expect("known app");
        let base = run_app(&a, GpuConfig::isca2015_scaled(), Design::Base, 0.5)
            .expect("base run")
            .cycles;
        print!("{name:<4}");
        for (label, ctrl) in [
            ("BDI", CabaController::bdi()),
            ("FPC", CabaController::fpc()),
            ("C-Pack", CabaController::cpack()),
            ("Best", CabaController::best_of_all()),
        ] {
            let s = run_app(
                &a,
                GpuConfig::isca2015_scaled(),
                Design::Caba(Box::new(ctrl)),
                0.5,
            )
            .expect("caba run");
            print!("  CABA-{label}: {:.2}x", base as f64 / s.cycles as f64);
        }
        println!();
    }
    println!("\nDifferent data favours different algorithms — the flexibility");
    println!("a fixed-function compressor cannot offer (§6.3).");
}
