//! The motivation experiment (§2 / Figures 1 and 12): show that memory-bound
//! applications track the available off-chip bandwidth while compute-bound
//! applications do not, and that CABA-BDI recovers much of a doubled-
//! bandwidth machine's performance on the baseline machine.
//!
//! ```sh
//! cargo run --release --example bandwidth_bottleneck
//! ```

use caba::core::CabaController;
use caba::sim::{Design, GpuConfig};
use caba::stats::StallKind;
use caba::workloads::{app, run_app};

fn main() {
    let scale = 0.5;
    println!("Cycles at 1/2x, 1x, 2x peak DRAM bandwidth (scale {scale}):\n");
    println!("app    class     1/2x BW    1x BW      2x BW      stall profile @1x");
    for name in ["CONS", "PVC", "bp", "dmr"] {
        let a = app(name).expect("known app");
        let mut cells = Vec::new();
        let mut profile = String::new();
        for bw in [0.5, 1.0, 2.0] {
            let cfg = GpuConfig::isca2015_scaled().with_bandwidth_scale(bw);
            let s = run_app(&a, cfg, Design::Base, scale).expect("run completes");
            cells.push(s.cycles);
            if bw == 1.0 {
                profile = format!(
                    "mem {:.0}% sb {:.0}% issued {:.0}%",
                    s.breakdown.fraction(StallKind::MemoryData) * 100.0,
                    s.breakdown.fraction(StallKind::ScoreboardPipeline) * 100.0,
                    s.breakdown.fraction(StallKind::IssuedApp) * 100.0
                );
            }
        }
        println!(
            "{:<6} {:<9} {:<10} {:<10} {:<10} {profile}",
            a.name,
            format!("{:?}", a.class),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    println!("\nCABA vs doubling the physical bandwidth (the Figure 12 claim):\n");
    for name in ["CONS", "PVC"] {
        let a = app(name).expect("known app");
        let base = run_app(&a, GpuConfig::isca2015_scaled(), Design::Base, scale)
            .expect("base")
            .cycles;
        let twice = run_app(
            &a,
            GpuConfig::isca2015_scaled().with_bandwidth_scale(2.0),
            Design::Base,
            scale,
        )
        .expect("2x")
        .cycles;
        let caba = run_app(
            &a,
            GpuConfig::isca2015_scaled(),
            Design::Caba(Box::new(CabaController::bdi())),
            scale,
        )
        .expect("caba")
        .cycles;
        println!(
            "{name}: 1x-Base {:>7} cy | 2x-Base {:>7} cy ({:.2}x) | 1x-CABA {:>7} cy ({:.2}x)",
            base,
            twice,
            base as f64 / twice as f64,
            caba,
            base as f64 / caba as f64
        );
    }
    println!("\nOn bandwidth-bound compressible apps, CABA recovers a large share of");
    println!("the benefit of physically doubling the memory system (§6.4).");
}
