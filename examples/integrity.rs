//! Simulation integrity layer, end to end: audits on a healthy run, fault
//! injection with recovery, silent corruption caught by the audits, and a
//! watchdog hang report from a wedged machine.
//!
//! ```sh
//! cargo run --release --example integrity
//! ```

use caba::compress::Algorithm;
use caba::isa::{
    AluOp, CmpOp, Kernel, LaunchDims, Pred, ProgramBuilder, Reg, Space, Special, Src, Width,
};
use caba::sim::{Design, FaultConfig, FaultMode, Gpu, GpuConfig};

const IN: u64 = 0x1_0000;
const OUT: u64 = 0x8_0000;
const N: u32 = 2048;

/// out[i] = in[i] * 2.
fn scale_kernel() -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
    b.alu(AluOp::Shl, v, Src::Reg(v), Src::Imm(1));
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(1)));
    b.st(Space::Global, Width::B4, Src::Reg(v), Src::Reg(addr), 0);
    b.exit();
    Kernel::new("scale", b.build(), LaunchDims::new(N.div_ceil(64), 64)).with_params(vec![IN, OUT])
}

/// Warp 1 consumes a load before the block barrier warp 0 waits at; lose
/// that load and the machine wedges.
fn barrier_kernel() -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    b.setp(Pred(0), CmpOp::GeU, Src::Reg(gid), Src::Imm(32));
    b.if_then(Pred(0), true, |b| {
        b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
        b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
        b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
        b.alu(AluOp::Add, v, Src::Reg(v), Src::Imm(1));
    });
    b.bar();
    b.exit();
    Kernel::new("barrier", b.build(), LaunchDims::new(1, 64)).with_params(vec![IN])
}

fn gpu_with(cfg: GpuConfig) -> Gpu {
    let mut gpu = Gpu::new(
        cfg,
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
    );
    for i in 0..N {
        gpu.mem_mut().write_u32(IN + i as u64 * 4, 0x100 + i);
    }
    gpu
}

fn check_output(gpu: &Gpu) -> bool {
    (0..N).all(|i| gpu.mem().read_u32(OUT + i as u64 * 4) == (0x100 + i) * 2)
}

fn main() {
    // 1. Healthy run, audits on: invisible to timing, zero violations.
    let mut cfg = GpuConfig::small();
    cfg.audit_interval = 32;
    let mut gpu = gpu_with(cfg);
    let stats = gpu.run(&scale_kernel(), 1_000_000).expect("healthy run");
    println!(
        "[healthy + audits]   cycles={} audits_run={} output_correct={}",
        stats.cycles,
        stats.audits_run,
        check_output(&gpu)
    );

    // 2. All three fault classes with the recovery hardware modeled: the
    //    run completes bit-correct and every event is counted.
    let mut cfg = GpuConfig::small();
    cfg.audit_interval = 32;
    cfg.fault = FaultConfig {
        corrupt_line_rate: 0.25,
        dram_delay_rate: 0.2,
        ..FaultConfig::recover(0xFA11, 0.05)
    };
    let mut gpu = gpu_with(cfg);
    let stats = gpu.run(&scale_kernel(), 4_000_000).expect("recovery run");
    println!(
        "[faults, recover]    cycles={} dropped={} retransmitted={} dram_delayed={} \
         corrupted={} detected={} refetched={} output_correct={}",
        stats.cycles,
        stats.flits_dropped,
        stats.flit_retransmissions,
        stats.dram_delay_faults,
        stats.lines_corrupted,
        stats.corruptions_detected,
        stats.corruption_refetches,
        check_output(&gpu)
    );

    // 3. Silent corruption: broken hardware the audits must catch.
    let mut cfg = GpuConfig::small();
    cfg.audit_interval = 32;
    cfg.paranoid_assist_checks = false;
    cfg.fault = FaultConfig {
        enabled: true,
        seed: 0xC0FF,
        mode: FaultMode::Silent,
        corrupt_line_rate: 1.0,
        ..FaultConfig::disabled()
    };
    let mut gpu = gpu_with(cfg);
    match gpu.run(&scale_kernel(), 1_000_000) {
        Ok(_) => println!("[silent corruption]  NOT CAUGHT (bug!)"),
        Err(e) => println!("[silent corruption]  caught:\n{e}"),
    }

    // 4. A lost request under a block barrier: the watchdog declares a
    //    hang and prints forensics instead of burning the cycle budget.
    let mut cfg = GpuConfig::small();
    cfg.watchdog_window = 2_000;
    cfg.fault = FaultConfig {
        enabled: true,
        seed: 9,
        mode: FaultMode::Silent,
        drop_flit_rate: 1.0,
        ..FaultConfig::disabled()
    };
    let mut gpu = gpu_with(cfg);
    match gpu.run(&barrier_kernel(), 1_000_000) {
        Ok(_) => println!("[lost req + barrier] NOT CAUGHT (bug!)"),
        Err(e) => println!("[lost req + barrier] caught:\n{e}"),
    }

    // 5. Nonsense configurations are typed errors, not mid-run panics.
    let mut cfg = GpuConfig::small();
    cfg.fault = FaultConfig::recover(1, 1.5);
    match Gpu::try_new(cfg, Design::Base) {
        Ok(_) => println!("[bad config]         NOT CAUGHT (bug!)"),
        Err(e) => println!("[bad config]         rejected: {e}"),
    }
}
