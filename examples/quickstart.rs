//! Quickstart: build a kernel, run it on the simulated GPU under the
//! baseline and under CABA-BDI, and compare what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use caba::core::CabaController;
use caba::isa::{AluOp, Kernel, LaunchDims, ProgramBuilder, Reg, Space, Special, Src, Width};
use caba::sim::{Design, Gpu, GpuConfig};

/// A bandwidth-bound kernel: each thread sums four grid-strided 8-byte
/// elements and stores a small result.
fn build_kernel(threads: u32, in_base: u64, out_base: u64) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v, acc) = (Reg(0), Reg(1), Reg(2), Reg(3));
    b.global_thread_id(gid);
    b.movi(acc, 0);
    b.alu(AluOp::Mul, addr, Src::Reg(gid), Src::Imm(8));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    for r in 0..4 {
        b.ld(Space::Global, Width::B8, v, Src::Reg(addr), 0);
        b.alu(AluOp::Add, acc, Src::Reg(acc), Src::Reg(v));
        if r < 3 {
            b.alu(
                AluOp::Add,
                addr,
                Src::Reg(addr),
                Src::Imm(threads as u64 * 8),
            );
        }
    }
    b.alu(AluOp::And, acc, Src::Reg(acc), Src::Imm(0xFFFF));
    b.alu(AluOp::Mul, addr, Src::Reg(gid), Src::Imm(4));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(1)));
    b.st(Space::Global, Width::B4, Src::Reg(acc), Src::Reg(addr), 0);
    b.exit();
    Kernel::new("quickstart", b.build(), LaunchDims::new(threads / 256, 256))
        .with_params(vec![in_base, out_base])
}

fn main() {
    const THREADS: u32 = 32 * 1024;
    const IN: u64 = 0x10_0000;
    const OUT: u64 = 0x200_0000;
    let kernel = build_kernel(THREADS, IN, OUT);

    for (name, design) in [
        ("Base     ", Design::Base),
        ("CABA-BDI ", Design::Caba(Box::new(CabaController::bdi()))),
    ] {
        let mut gpu = Gpu::new(GpuConfig::isca2015_scaled(), design);
        // Compressible input: low-dynamic-range 32-bit values.
        for i in 0..(THREADS as u64 * 8) {
            gpu.mem_mut()
                .write_u32(IN + i * 4, 0x4000_0000 + (i % 97) as u32);
        }
        let stats = gpu.run(&kernel, 100_000_000).expect("kernel completes");
        println!(
            "{name} cycles={:<8} IPC={:<5.2} DRAM bursts={:<8} BW util={:>5.1}%  \
             assist warps={} ({} instructions)",
            stats.cycles,
            stats.ipc(),
            stats.dram_bursts,
            stats.bandwidth_utilization() * 100.0,
            stats.assist_launches,
            stats.assist_instructions,
        );
        // The functional result is identical regardless of design.
        println!(
            "          out[0..4] = {:?}",
            (0..4)
                .map(|i| gpu.mem().read_u32(OUT + i * 4))
                .collect::<Vec<_>>()
        );
    }
    println!("\nCABA moves fewer DRAM bursts (compressed lines) at the cost of");
    println!("assist-warp instructions executed in otherwise-idle issue slots.");
}
