//! The §7.1 "other use" of CABA: assist warps performing memoization —
//! trading computation for on-chip storage via a shared-memory LUT.
//!
//! ```sh
//! cargo run --release --example memoization
//! ```

use caba::core::memoize::{evaluate, MemoConfig};
use caba::stats::Rng64;

fn main() {
    // A fragment-shader-like computation stream: most invocations repeat a
    // small set of quantized inputs (Arnau et al. [12] report exactly this
    // redundancy for mobile GPU fragments).
    let mut rng = Rng64::new(2015);
    let redundant: Vec<Vec<u64>> = (0..50_000)
        .map(|_| {
            if rng.chance(0.9) {
                vec![rng.range(0, 64) * 256, rng.range(0, 8)]
            } else {
                vec![rng.next_u64(), rng.next_u64()]
            }
        })
        .collect();
    let unique: Vec<Vec<u64>> = (0..50_000).map(|i| vec![i as u64, i as u64 * 3]).collect();

    let compute_cycles = 400; // an expensive transcendental-heavy shader
    let expensive = |inp: &[u64]| {
        inp[0].wrapping_mul(0x9E37_79B9).rotate_left(13) ^ inp.get(1).copied().unwrap_or(7)
    };

    println!(
        "LUT capacity 2048 entries, probe {} cy, compute {} cy\n",
        MemoConfig::default().lookup_cycles,
        compute_cycles
    );
    println!("workload          hit rate  eliminated  speedup");
    for (name, trace) in [
        ("redundant (90%)", &redundant),
        ("all-unique     ", &unique),
    ] {
        let r = evaluate(MemoConfig::default(), compute_cycles, trace, expensive);
        println!(
            "{name}   {:>6.1}%  {:>9}   {:>5.2}x",
            r.hit_rate * 100.0,
            r.eliminated,
            r.speedup()
        );
    }

    // Approximate memoization: quantizing inputs raises reuse further for
    // error-tolerant kernels (§7.1).
    println!("\nApproximate matching (quantize low bits) on jittered inputs:");
    let mut rng = Rng64::new(7);
    let jittered: Vec<Vec<u64>> = (0..50_000)
        .map(|_| vec![rng.range(0, 64) * 256 + rng.range(0, 9)])
        .collect();
    println!("quantize_bits  hit rate  speedup");
    for bits in [0, 2, 4, 6] {
        let cfg = MemoConfig {
            quantize_bits: bits,
            ..MemoConfig::default()
        };
        let r = evaluate(cfg, compute_cycles, &jittered, expensive);
        println!(
            "{bits:>13}  {:>7.1}%  {:>5.2}x",
            r.hit_rate * 100.0,
            r.speedup()
        );
    }
    println!("\nMemoization helps exactly when input redundancy exists — and the");
    println!("CABA framework lets it be enabled per-application, like compression.");
}
