//! The §7.2 "other use" of CABA: stride-prefetching assist warps that issue
//! only when the memory pipeline is idle, avoiding the demand-interference
//! problem of uncontrolled GPU prefetchers.
//!
//! ```sh
//! cargo run --release --example prefetching
//! ```

use caba::core::prefetch::{evaluate, PrefetchConfig};
use caba::stats::Rng64;

fn strided_trace(warps: u32, per_warp: u32, stride: u64) -> Vec<(u32, u64)> {
    let mut t = Vec::new();
    for i in 0..per_warp {
        for w in 0..warps {
            // Skew each warp's base by a few lines so the streams do not
            // alias onto the same L1 sets.
            let base = 0x100_0000 * (w as u64 + 1) + w as u64 * 5 * 128;
            t.push((w, base + i as u64 * stride));
        }
    }
    t
}

fn main() {
    let streaming = strided_trace(4, 2000, 128);
    let mut rng = Rng64::new(3);
    let irregular: Vec<(u32, u64)> = (0..16_000)
        .map(|_| (rng.next_u32() % 8, rng.next_u64() % (1 << 26)))
        .collect();

    println!("Per-warp stride prefetching into the 16 KB L1 (paper geometry):\n");
    println!("trace        throttle   L1 misses base→pf   coverage  issued  dropped");
    for (name, trace) in [("streaming", &streaming), ("irregular", &irregular)] {
        for (tname, idle_only, busy_every) in [("idle-only", true, 3), ("unthrottled", false, 0)] {
            let cfg = PrefetchConfig {
                idle_only,
                ..PrefetchConfig::default()
            };
            let r = evaluate(cfg, trace, busy_every);
            println!(
                "{name}   {tname:<11} {:>7} → {:<7}  {:>6.1}%  {:>6}  {:>6}",
                r.baseline_misses,
                r.prefetch_misses,
                r.coverage() * 100.0,
                r.issued,
                r.dropped_busy
            );
        }
    }
    println!("\nStreaming warps train the stride table and prefetching removes most");
    println!("cold misses; irregular traces gain nothing, and the idle-only");
    println!("throttle (the CABA scheduler's low-priority rule) bounds the waste.");
}
