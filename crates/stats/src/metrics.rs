//! A hierarchical metric registry with dense, deterministic storage.
//!
//! Components register named metrics once, up front, and get back typed
//! handles ([`CounterId`] / [`GaugeId`]) that resolve to dense `Vec` indices
//! — recording an event is a bounds-checked array increment, never a string
//! lookup. Each parallel worker records into its own [`MetricShard`]; shards
//! are merged **in index order** at a serial point (counters sum, gauges
//! take the max), so the merged [`MetricsSnapshot`] is bit-identical no
//! matter how many workers ran.
//!
//! Hierarchy is by dotted name (`"sm.assist.launches"`): the registry keeps
//! registration order, so a snapshot lists a component's metrics together
//! and reports stay diffable run-to-run.
//!
//! # Examples
//!
//! ```
//! use caba_stats::metrics::MetricRegistry;
//!
//! let mut reg = MetricRegistry::new();
//! let launches = reg.counter("sm.assist.launches");
//! let peak = reg.gauge("sm.assist.peak_active");
//! let mut a = reg.shard();
//! let mut b = reg.shard();
//! a.inc(launches);
//! a.set_max(peak, 3);
//! b.add(launches, 2);
//! b.set_max(peak, 5);
//! let merged = reg.merge_shards([&a, &b].into_iter());
//! let snap = reg.snapshot(&merged);
//! assert_eq!(snap.get("sm.assist.launches"), Some(3));
//! assert_eq!(snap.get("sm.assist.peak_active"), Some(5));
//! ```

use std::fmt;

/// How much metric recording the simulator performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsLevel {
    /// No registry, no shards, no snapshot — the zero-cost default.
    #[default]
    Off,
    /// Export-time metrics only: the snapshot is assembled from counters
    /// the simulator maintains anyway; nothing extra runs per cycle.
    Counters,
    /// Counters plus per-event shard recording (assist spawn/retire,
    /// occupancy peaks) inside the cycle loop.
    Full,
}

impl MetricsLevel {
    /// True unless the level is [`MetricsLevel::Off`].
    pub fn enabled(self) -> bool {
        !matches!(self, MetricsLevel::Off)
    }

    /// True only for [`MetricsLevel::Full`] (per-event recording).
    pub fn per_event(self) -> bool {
        matches!(self, MetricsLevel::Full)
    }
}

/// The kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    /// Sums across shards.
    Counter,
    /// Max across shards (high-water marks).
    Gauge,
}

/// Typed handle to a registered counter (sums on merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Typed handle to a registered gauge (max on merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// The schema: every metric name, in registration order, with its kind.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    names: Vec<&'static str>,
    kinds: Vec<MetricKind>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter under `name` (dotted hierarchy by convention).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — schemas are built once at
    /// startup, so a duplicate is a wiring bug, not a runtime condition.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        CounterId(self.register(name, MetricKind::Counter))
    }

    /// Registers a gauge (high-water mark) under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        GaugeId(self.register(name, MetricKind::Gauge))
    }

    fn register(&mut self, name: &'static str, kind: MetricKind) -> u32 {
        assert!(
            !self.names.contains(&name),
            "metric {name:?} registered twice"
        );
        self.names.push(name);
        self.kinds.push(kind);
        (self.names.len() - 1) as u32
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// A zeroed shard laid out for this registry.
    pub fn shard(&self) -> MetricShard {
        MetricShard {
            values: vec![0; self.names.len()],
        }
    }

    /// Pairs the merged shard's values with the registered names.
    ///
    /// # Panics
    ///
    /// Panics if `merged` was built for a different registry (length
    /// mismatch).
    pub fn snapshot(&self, merged: &MetricShard) -> MetricsSnapshot {
        assert_eq!(
            merged.values.len(),
            self.names.len(),
            "shard does not match this registry"
        );
        MetricsSnapshot {
            entries: self
                .names
                .iter()
                .zip(&merged.values)
                .map(|(&n, &v)| (n, v))
                .collect(),
        }
    }

    /// Merges `shards` in index order into one shard (counters sum, gauges
    /// max). Index order makes the result independent of which worker owned
    /// which shard.
    pub fn merge_shards<'a>(&self, shards: impl Iterator<Item = &'a MetricShard>) -> MetricShard {
        let mut out = self.shard();
        for s in shards {
            out.merge_kinds(s, &self.kinds);
        }
        out
    }
}

/// One worker's dense metric storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricShard {
    values: Vec<u64>,
}

impl MetricShard {
    /// Adds `n` to a counter (saturating).
    pub fn add(&mut self, id: CounterId, n: u64) {
        let v = &mut self.values[id.0 as usize];
        *v = v.saturating_add(n);
    }

    /// Adds one to a counter.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Raises a gauge to at least `v` (high-water mark).
    pub fn set_max(&mut self, id: GaugeId, v: u64) {
        let g = &mut self.values[id.0 as usize];
        *g = (*g).max(v);
    }

    /// Current value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Current value of a gauge.
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Merges `other` into `self` treating every slot as a counter. Use
    /// [`MetricRegistry::merge_shards`] when gauges are in play.
    pub fn merge(&mut self, other: &MetricShard) {
        assert_eq!(self.values.len(), other.values.len());
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a = a.saturating_add(*b);
        }
    }

    fn merge_kinds(&mut self, other: &MetricShard, kinds: &[MetricKind]) {
        assert_eq!(self.values.len(), other.values.len());
        for ((a, b), k) in self.values.iter_mut().zip(&other.values).zip(kinds) {
            match k {
                MetricKind::Counter => *a = a.saturating_add(*b),
                MetricKind::Gauge => *a = (*a).max(*b),
            }
        }
    }
}

impl crate::snap::SnapshotState for MetricShard {
    fn save(&self, w: &mut crate::snap::SnapshotWriter) {
        self.values.save(w);
    }
    fn load(r: &mut crate::snap::SnapshotReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(MetricShard {
            values: Vec::<u64>::load(r)?,
        })
    }
}

/// The merged, named result: `(name, value)` pairs in registration order.
///
/// Derives `Eq`, so determinism tests can compare snapshots bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    entries: Vec<(&'static str, u64)>,
}

impl MetricsSnapshot {
    /// All `(name, value)` pairs in registration order.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries
    }

    /// Looks a metric up by exact name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Appends export-time entries (derived at snapshot time from counters
    /// the simulator maintains anyway).
    pub fn push(&mut self, name: &'static str, value: u64) {
        self.entries.push((name, value));
    }

    /// Serializes the snapshot as one JSON object, names in registration
    /// order.
    pub fn write_json<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(b"{")?;
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                w.write_all(b", ")?;
            }
            write!(w, "\"{}\": {value}", crate::json::escape(name))?;
        }
        w.write_all(b"}")
    }

    /// [`MetricsSnapshot::write_json`] into a `String`.
    pub fn to_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_json(&mut buf)
            .expect("Vec<u8> writes are infallible");
        String::from_utf8(buf).expect("JSON output is UTF-8")
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.entries {
            writeln!(f, "{name} = {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_order_is_preserved() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter("a.first");
        let b = reg.counter("b.second");
        assert_eq!(reg.len(), 2);
        let mut shard = reg.shard();
        shard.add(b, 2);
        shard.inc(a);
        let snap = reg.snapshot(&shard);
        assert_eq!(snap.entries(), &[("a.first", 1), ("b.second", 2)]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_panic() {
        let mut reg = MetricRegistry::new();
        reg.counter("dup");
        reg.gauge("dup");
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("events");
        let g = reg.gauge("peak");
        let mut shards = Vec::new();
        for (adds, peak) in [(3, 7), (5, 2), (1, 7)] {
            let mut s = reg.shard();
            s.add(c, adds);
            s.set_max(g, peak);
            shards.push(s);
        }
        let merged = reg.merge_shards(shards.iter());
        assert_eq!(merged.counter(c), 9);
        assert_eq!(merged.gauge(g), 7);
        // Merge order cannot matter for sum/max, but the API contract is
        // index order; spot-check reversal gives the same result.
        let rev = reg.merge_shards(shards.iter().rev());
        assert_eq!(merged, rev);
    }

    #[test]
    fn snapshot_json_is_valid_and_ordered() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("sm.assist.launches");
        let mut shard = reg.shard();
        shard.add(c, 42);
        let mut snap = reg.snapshot(&shard);
        snap.push("derived.extra", 7);
        let json = snap.to_json();
        crate::json::validate(&json).expect("snapshot JSON parses");
        assert_eq!(json, "{\"sm.assist.launches\": 42, \"derived.extra\": 7}");
        assert_eq!(snap.get("derived.extra"), Some(7));
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    fn levels_gate_correctly() {
        assert!(!MetricsLevel::Off.enabled());
        assert!(MetricsLevel::Counters.enabled());
        assert!(!MetricsLevel::Counters.per_event());
        assert!(MetricsLevel::Full.per_event());
        assert_eq!(MetricsLevel::default(), MetricsLevel::Off);
    }
}
