//! Statistics infrastructure shared by every crate in the CABA stack.
//!
//! This crate has no dependencies and provides:
//!
//! * [`Rng64`] — a deterministic SplitMix64 pseudo-random generator, so every
//!   experiment in the repository is reproducible bit-for-bit without pulling
//!   in an external RNG crate.
//! * [`Counter`] — a named saturating event counter.
//! * [`StallKind`] / [`IssueBreakdown`] — the issue-cycle taxonomy of Figure 1
//!   of the paper: issued-app / issued-assist slots plus memory-data,
//!   scoreboard-or-pipeline, synchronization, control-reconvergence and
//!   no-eligible-warp stalls.
//! * [`metrics`] — a hierarchical metric registry with typed counter/gauge
//!   handles resolved to dense indices at registration; per-worker shards
//!   merge in index order so parallel runs stay bit-identical.
//! * [`json`] — the hand-rolled JSON toolkit (escaping, float formatting,
//!   and a minimal validating parser) shared by every report/trace emitter.
//! * [`Table`] — a small fixed-width text table used by the benchmark
//!   harnesses to print the rows/series each paper figure reports.
//! * [`prop`] — a minimal deterministic property-test harness (seeded random
//!   cases with replayable failures), so the test suites need no external
//!   property-testing dependency.
//! * [`fxhash`] — a fast deterministic multiply-xor hasher ([`FxHashMap`],
//!   [`FxHashSet`]) for the simulator's hot address-keyed maps, replacing
//!   SipHash without an external dependency.
//!
//! # Examples
//!
//! ```
//! use caba_stats::Rng64;
//! let mut rng = Rng64::new(42);
//! let a = rng.next_u64();
//! let b = Rng64::new(42).next_u64();
//! assert_eq!(a, b); // fully deterministic
//! ```

pub mod checksum;
pub mod fxhash;
pub mod json;
pub mod metrics;
pub mod prop;
pub mod rng;
pub mod snap;
pub mod table;

pub use checksum::{checksum64, Fnv64};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use metrics::{CounterId, GaugeId, MetricRegistry, MetricShard, MetricsLevel, MetricsSnapshot};
pub use rng::Rng64;
pub use snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
pub use table::Table;

use std::fmt;

/// A named, monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use caba_stats::Counter;
/// let mut issued = Counter::new("instructions_issued");
/// issued.add(3);
/// issued.inc();
/// assert_eq!(issued.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a counter with the given diagnostic name, starting at zero.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// The diagnostic name supplied at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Adds `n` events (saturating).
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Adds a single event.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// How one scheduler issue slot was spent, in the Figure 1 taxonomy of the
/// paper.
///
/// Every cycle of every warp scheduler lands in exactly one bucket: either an
/// instruction issued (split into application vs. assist-warp issue, the
/// Fig. 13/14 overhead axis), or the slot stalled for one attributable
/// reason, or no eligible warp existed at all. The buckets are mutually
/// exclusive and collectively exhaustive, so
/// `Σ buckets == cycles × schedulers × SMs` — an invariant the simulator's
/// integrity audits enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallKind {
    /// An application-warp instruction issued in this slot.
    IssuedApp,
    /// An assist-warp instruction issued in this slot (CABA designs only).
    IssuedAssist,
    /// Blocked waiting for data from the memory system: either the
    /// scoreboard holds a register whose producing load is still in flight,
    /// or a ready memory instruction could not enter the backed-up LSU.
    MemoryData,
    /// Blocked on the compute pipelines: a scoreboard hazard on an in-flight
    /// ALU/SFU producer, or a structural stall on a busy SFU.
    ScoreboardPipeline,
    /// Every eligible warp is parked at a block-wide barrier.
    Synchronization,
    /// Blocked computing control flow: the next instruction steers the SIMT
    /// stack (branch/reconvergence/predicate machinery) and waits on an
    /// in-flight operand.
    ControlReconvergence,
    /// No warp had an issuable instruction for any other reason (no CTAs
    /// resident yet, all warps done, instruction buffers drained).
    Idle,
}

impl StallKind {
    /// All variants, in the display order used by Figure 1 (issue slots
    /// first, then stalls from most to least memory-attributable).
    pub const ALL: [StallKind; 7] = [
        StallKind::IssuedApp,
        StallKind::IssuedAssist,
        StallKind::MemoryData,
        StallKind::Synchronization,
        StallKind::ScoreboardPipeline,
        StallKind::ControlReconvergence,
        StallKind::Idle,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::IssuedApp => "App Issue",
            StallKind::IssuedAssist => "Assist Issue",
            StallKind::MemoryData => "Memory Stalls",
            StallKind::Synchronization => "Sync Stalls",
            StallKind::ScoreboardPipeline => "Pipeline Stalls",
            StallKind::ControlReconvergence => "Control Stalls",
            StallKind::Idle => "Idle Cycles",
        }
    }

    /// Stable kebab-case identifier used in JSON reports and trace tracks.
    pub fn slug(self) -> &'static str {
        match self {
            StallKind::IssuedApp => "issued-app",
            StallKind::IssuedAssist => "issued-assist",
            StallKind::MemoryData => "memory-data",
            StallKind::Synchronization => "synchronization",
            StallKind::ScoreboardPipeline => "scoreboard-pipeline",
            StallKind::ControlReconvergence => "control-reconvergence",
            StallKind::Idle => "idle",
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-scheduler-slot issue-cycle accounting (the Figure 1 stack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueBreakdown {
    counts: [u64; 7],
}

impl IssueBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    fn index(kind: StallKind) -> usize {
        match kind {
            StallKind::IssuedApp => 0,
            StallKind::IssuedAssist => 1,
            StallKind::MemoryData => 2,
            StallKind::ScoreboardPipeline => 3,
            StallKind::Synchronization => 4,
            StallKind::ControlReconvergence => 5,
            StallKind::Idle => 6,
        }
    }

    /// Records one scheduler slot outcome.
    pub fn record(&mut self, kind: StallKind) {
        self.counts[Self::index(kind)] += 1;
    }

    /// Records `n` identical slot outcomes at once. Exactly equivalent to
    /// `n` calls to [`IssueBreakdown::record`] — used by the next-event
    /// clock to credit a skipped span in bulk without per-cycle work.
    pub fn record_n(&mut self, kind: StallKind, n: u64) {
        self.counts[Self::index(kind)] += n;
    }

    /// Count for one outcome kind.
    pub fn count(&self, kind: StallKind) -> u64 {
        self.counts[Self::index(kind)]
    }

    /// Total recorded slots.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Slots in which any instruction issued (app or assist).
    pub fn issued(&self) -> u64 {
        self.count(StallKind::IssuedApp) + self.count(StallKind::IssuedAssist)
    }

    /// Fraction (0..=1) of slots attributed to `kind`. Returns 0 when empty.
    pub fn fraction(&self, kind: StallKind) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(kind) as f64 / total as f64
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &IssueBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
    }

    /// Per-bucket difference `self - prev`, for interval samplers that turn
    /// cumulative totals into rate tracks.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any bucket of `prev` exceeds `self` (the
    /// breakdown is monotone, so a sampler's previous snapshot can't).
    pub fn delta(&self, prev: &IssueBreakdown) -> IssueBreakdown {
        let mut d = IssueBreakdown::new();
        for (i, (a, b)) in self.counts.iter().zip(prev.counts.iter()).enumerate() {
            debug_assert!(a >= b, "bucket {i} went backwards");
            d.counts[i] = a - b;
        }
        d
    }
}

impl snap::SnapshotState for IssueBreakdown {
    fn save(&self, w: &mut snap::SnapshotWriter) {
        self.counts.save(w);
    }
    fn load(r: &mut snap::SnapshotReader<'_>) -> Result<Self, snap::SnapError> {
        Ok(IssueBreakdown {
            counts: <[u64; 7]>::load(r)?,
        })
    }
}

/// Computes the geometric mean of a set of strictly positive values.
///
/// Returns `None` for an empty slice or when any value is not finite and
/// positive. The paper's average speedups are arithmetic means over the
/// application pool; we expose both (see [`arith_mean`]).
///
/// # Examples
///
/// ```
/// let g = caba_stats::geo_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut acc = 0.0f64;
    for &v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        acc += v.ln();
    }
    Some((acc / values.len() as f64).exp())
}

/// Arithmetic mean; `None` for an empty slice.
pub fn arith_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.value(), 11);
        assert_eq!(c.name(), "x");
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("sat");
        c.add(u64::MAX);
        c.inc();
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn counter_display_nonempty() {
        let c = Counter::new("events");
        assert_eq!(format!("{c}"), "events = 0");
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut b = IssueBreakdown::new();
        b.record(StallKind::IssuedApp);
        b.record(StallKind::IssuedApp);
        b.record(StallKind::IssuedAssist);
        b.record(StallKind::Idle);
        b.record(StallKind::MemoryData);
        let sum: f64 = StallKind::ALL.iter().map(|&k| b.fraction(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(b.count(StallKind::IssuedApp), 2);
        assert_eq!(b.issued(), 3);
        assert_eq!(b.total(), 5);
    }

    #[test]
    fn breakdown_empty_fraction_is_zero() {
        let b = IssueBreakdown::new();
        assert_eq!(b.fraction(StallKind::IssuedApp), 0.0);
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn breakdown_merge() {
        let mut a = IssueBreakdown::new();
        a.record(StallKind::Idle);
        let mut b = IssueBreakdown::new();
        b.record(StallKind::Idle);
        b.record(StallKind::ScoreboardPipeline);
        a.merge(&b);
        assert_eq!(a.count(StallKind::Idle), 2);
        assert_eq!(a.count(StallKind::ScoreboardPipeline), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = IssueBreakdown::new();
        bulk.record_n(StallKind::Idle, 1000);
        bulk.record_n(StallKind::MemoryData, 3);
        bulk.record_n(StallKind::Synchronization, 0);
        let mut slow = IssueBreakdown::new();
        for _ in 0..1000 {
            slow.record(StallKind::Idle);
        }
        for _ in 0..3 {
            slow.record(StallKind::MemoryData);
        }
        assert_eq!(bulk, slow);
    }

    #[test]
    fn breakdown_delta_subtracts_per_bucket() {
        let mut prev = IssueBreakdown::new();
        prev.record(StallKind::IssuedApp);
        let mut now = prev;
        now.record(StallKind::IssuedApp);
        now.record(StallKind::Synchronization);
        let d = now.delta(&prev);
        assert_eq!(d.count(StallKind::IssuedApp), 1);
        assert_eq!(d.count(StallKind::Synchronization), 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn stall_kind_labels_and_slugs_are_distinct() {
        let labels: std::collections::HashSet<_> =
            StallKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), StallKind::ALL.len());
        let slugs: std::collections::HashSet<_> = StallKind::ALL.iter().map(|k| k.slug()).collect();
        assert_eq!(slugs.len(), StallKind::ALL.len());
    }

    #[test]
    fn means() {
        assert_eq!(geo_mean(&[]), None);
        assert_eq!(geo_mean(&[1.0, -1.0]), None);
        assert!((geo_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(arith_mean(&[]), None);
        assert!((arith_mean(&[1.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }
}
