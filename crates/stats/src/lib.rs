//! Statistics infrastructure shared by every crate in the CABA stack.
//!
//! This crate has no dependencies and provides:
//!
//! * [`Rng64`] — a deterministic SplitMix64 pseudo-random generator, so every
//!   experiment in the repository is reproducible bit-for-bit without pulling
//!   in an external RNG crate.
//! * [`Counter`] — a named saturating event counter.
//! * [`StallKind`] / [`IssueBreakdown`] — the issue-cycle taxonomy of Figure 1
//!   of the paper (Compute stalls, Memory stalls, Data-dependence stalls, Idle
//!   cycles, Active cycles).
//! * [`Table`] — a small fixed-width text table used by the benchmark
//!   harnesses to print the rows/series each paper figure reports.
//! * [`prop`] — a minimal deterministic property-test harness (seeded random
//!   cases with replayable failures), so the test suites need no external
//!   property-testing dependency.
//! * [`fxhash`] — a fast deterministic multiply-xor hasher ([`FxHashMap`],
//!   [`FxHashSet`]) for the simulator's hot address-keyed maps, replacing
//!   SipHash without an external dependency.
//!
//! # Examples
//!
//! ```
//! use caba_stats::Rng64;
//! let mut rng = Rng64::new(42);
//! let a = rng.next_u64();
//! let b = Rng64::new(42).next_u64();
//! assert_eq!(a, b); // fully deterministic
//! ```

pub mod fxhash;
pub mod prop;
pub mod rng;
pub mod table;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use rng::Rng64;
pub use table::Table;

use std::fmt;

/// A named, monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use caba_stats::Counter;
/// let mut issued = Counter::new("instructions_issued");
/// issued.add(3);
/// issued.inc();
/// assert_eq!(issued.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a counter with the given diagnostic name, starting at zero.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// The diagnostic name supplied at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Adds `n` events (saturating).
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Adds a single event.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Why a warp scheduler failed to issue (or issued) in a given slot.
///
/// This is exactly the five-way breakdown of Figure 1 in the paper:
/// structural stalls on the memory pipeline, structural stalls on the compute
/// (ALU) pipelines, data-dependence (scoreboard) stalls, idle cycles with no
/// schedulable warp, and active cycles in which an instruction issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallKind {
    /// The memory (load/store) pipeline was backed up — an instruction was
    /// ready but could not enter the LSU.
    MemoryStructural,
    /// The ALU/SFU pipelines were backed up.
    ComputeStructural,
    /// The next instruction of every eligible warp waits on an earlier
    /// long-latency result (scoreboard hazard).
    DataDependence,
    /// No warp had a decoded instruction available (empty instruction
    /// buffers, barriers, or all warps already issued).
    Idle,
    /// At least one instruction issued this cycle.
    Active,
}

impl StallKind {
    /// All variants, in the display order used by Figure 1.
    pub const ALL: [StallKind; 5] = [
        StallKind::ComputeStructural,
        StallKind::MemoryStructural,
        StallKind::DataDependence,
        StallKind::Idle,
        StallKind::Active,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::ComputeStructural => "Compute Stalls",
            StallKind::MemoryStructural => "Memory Stalls",
            StallKind::DataDependence => "Data Dep Stalls",
            StallKind::Idle => "Idle Cycles",
            StallKind::Active => "Active Cycles",
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-scheduler-slot issue-cycle accounting (the Figure 1 stack).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IssueBreakdown {
    counts: [u64; 5],
}

impl IssueBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    fn index(kind: StallKind) -> usize {
        match kind {
            StallKind::ComputeStructural => 0,
            StallKind::MemoryStructural => 1,
            StallKind::DataDependence => 2,
            StallKind::Idle => 3,
            StallKind::Active => 4,
        }
    }

    /// Records one scheduler slot outcome.
    pub fn record(&mut self, kind: StallKind) {
        self.counts[Self::index(kind)] += 1;
    }

    /// Count for one outcome kind.
    pub fn count(&self, kind: StallKind) -> u64 {
        self.counts[Self::index(kind)]
    }

    /// Total recorded slots.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction (0..=1) of slots attributed to `kind`. Returns 0 when empty.
    pub fn fraction(&self, kind: StallKind) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(kind) as f64 / total as f64
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &IssueBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
    }
}

/// Computes the geometric mean of a set of strictly positive values.
///
/// Returns `None` for an empty slice or when any value is not finite and
/// positive. The paper's average speedups are arithmetic means over the
/// application pool; we expose both (see [`arith_mean`]).
///
/// # Examples
///
/// ```
/// let g = caba_stats::geo_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut acc = 0.0f64;
    for &v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        acc += v.ln();
    }
    Some((acc / values.len() as f64).exp())
}

/// Arithmetic mean; `None` for an empty slice.
pub fn arith_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.value(), 11);
        assert_eq!(c.name(), "x");
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("sat");
        c.add(u64::MAX);
        c.inc();
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn counter_display_nonempty() {
        let c = Counter::new("events");
        assert_eq!(format!("{c}"), "events = 0");
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut b = IssueBreakdown::new();
        b.record(StallKind::Active);
        b.record(StallKind::Active);
        b.record(StallKind::Idle);
        b.record(StallKind::MemoryStructural);
        let sum: f64 = StallKind::ALL.iter().map(|&k| b.fraction(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(b.count(StallKind::Active), 2);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn breakdown_empty_fraction_is_zero() {
        let b = IssueBreakdown::new();
        assert_eq!(b.fraction(StallKind::Active), 0.0);
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn breakdown_merge() {
        let mut a = IssueBreakdown::new();
        a.record(StallKind::Idle);
        let mut b = IssueBreakdown::new();
        b.record(StallKind::Idle);
        b.record(StallKind::ComputeStructural);
        a.merge(&b);
        assert_eq!(a.count(StallKind::Idle), 2);
        assert_eq!(a.count(StallKind::ComputeStructural), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn stall_kind_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            StallKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), StallKind::ALL.len());
    }

    #[test]
    fn means() {
        assert_eq!(geo_mean(&[]), None);
        assert_eq!(geo_mean(&[1.0, -1.0]), None);
        assert!((geo_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(arith_mean(&[]), None);
        assert!((arith_mean(&[1.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }
}
