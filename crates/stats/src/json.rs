//! Hand-rolled JSON toolkit shared by every emitter in the workspace.
//!
//! The repository builds fully offline with zero external dependencies, so
//! reports and traces are serialized by hand. This module centralizes the
//! three pieces every emitter needs — string escaping, a stable float
//! format, and a minimal validating parser — so the sweep report, the
//! Perfetto trace writer and the fig01 emitter cannot drift apart, and the
//! test suites can check well-formedness without pulling in serde.
//!
//! # Examples
//!
//! ```
//! use caba_stats::json;
//! let s = format!("{{\"name\": \"{}\"}}", json::escape("a\"b\\c\n"));
//! json::validate(&s).expect("escaped output parses");
//! assert_eq!(json::fmt_f64(0.25), "0.25");
//! ```

use std::fmt;

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
///
/// Handles the two mandatory escapes (`"` and `\`) plus all control
/// characters below U+0020, using the short forms where JSON defines them.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float compactly but losslessly enough for reports: six decimal
/// places with trailing zeros trimmed, and non-finite values mapped to
/// `null` (JSON has no NaN/Infinity).
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x:.6}");
    let s = s.trim_end_matches('0');
    let s = s.trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// A JSON well-formedness error from [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Validates that `s` is one well-formed JSON value (RFC 8259 grammar:
/// objects, arrays, strings with escapes, numbers, booleans, null).
///
/// This is a recognizer, not a deserializer — it builds no value tree, so
/// multi-megabyte traces validate in one pass with O(depth) memory.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first grammar violation.
pub fn validate(s: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the top-level value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("expected 4 hex digits after \\u")),
                                }
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return Err(self.err("expected a digit after '.'")),
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return Err(self.err("expected a digit in exponent")),
            }
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc\r"), "a\\nb\\tc\\r");
        assert_eq!(escape("\u{08}\u{0C}"), "\\b\\f");
        assert_eq!(escape("\u{01}"), "\\u0001");
        // Non-ASCII passes through unescaped (JSON strings are Unicode).
        assert_eq!(escape("µs"), "µs");
    }

    #[test]
    fn fmt_f64_is_compact_and_valid() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-2.5), "-2.5");
        assert_eq!(fmt_f64(1.0 / 3.0), "0.333333");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        for x in [0.0, 1.0, 0.25, -2.5, 1.0 / 3.0, 1e-9, -0.0] {
            validate(&fmt_f64(x)).unwrap_or_else(|e| panic!("{x}: {e}"));
        }
    }

    #[test]
    fn validate_accepts_well_formed_documents() {
        for s in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "\"a\\u00e9\\n\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"d\"}",
            " [ 1 , 2 ] ",
        ] {
            validate(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "\"unterminated",
            "\"bad \\x escape\"",
            "01",
            "1.",
            "1e",
            "nulL",
            "[1] extra",
            "\"ctrl \u{01}\"",
        ] {
            assert!(validate(s).is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn errors_carry_an_offset() {
        let e = validate("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
