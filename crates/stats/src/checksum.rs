//! The one FNV-1a-64 checksum implementation in the workspace, and the
//! *sealed-container* framing contract built on it.
//!
//! Every durable byte container in the repository — the `CABASNAP` machine
//! snapshot (`caba_sim::snapshot`), the on-disk store entries of
//! `caba-store`, and the per-line checksums of the sweep resume journal —
//! seals its bytes with the same trailing checksum and verifies it
//! **before any field is decoded**. Centralizing the hash and the framing
//! here keeps the corruption-rejection behaviour identical everywhere: a
//! torn, truncated, or bit-flipped container is rejected as a unit, and
//! corrupt bytes never reach a decoder.
//!
//! # Examples
//!
//! ```
//! use caba_stats::checksum::{seal, verify_sealed};
//!
//! let sealed = seal(b"payload".to_vec());
//! assert_eq!(verify_sealed(&sealed), Some(&b"payload"[..]));
//!
//! let mut torn = sealed.clone();
//! torn.pop();
//! assert_eq!(verify_sealed(&torn), None);
//! ```

/// FNV-1a 64-bit offset basis (the checksum of the empty string).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit checksum over a byte slice — the integrity seal of every
/// container format in the workspace.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Streaming FNV-1a-64 state, for checksumming data that arrives in
/// pieces (store entry headers + payloads) without concatenating first.
/// `Fnv64::new().update(a).update(b).finish()` equals
/// [`checksum64`] of `a ++ b`.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    h: u64,
}

impl Fnv64 {
    /// Fresh state (the offset basis).
    pub fn new() -> Self {
        Fnv64 { h: FNV_OFFSET }
    }

    /// Folds `bytes` into the state; returns `&mut self` for chaining.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Appends the trailing little-endian checksum, turning `body` into a
/// sealed container. The inverse of [`verify_sealed`].
pub fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let sum = checksum64(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    body
}

/// Verifies the trailing checksum of a sealed container and returns the
/// body it covers, or `None` when the bytes are torn, truncated, or
/// corrupted. Runs **before** any decoding — the checksum-before-decode
/// contract shared by every container format in the workspace.
pub fn verify_sealed(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split tail is 8 bytes"));
    (checksum64(body) == stored).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_matches_reference_vectors() {
        // FNV-1a offset basis for the empty string.
        assert_eq!(checksum64(b""), FNV_OFFSET);
        assert_eq!(checksum64(b"caba snapshot"), checksum64(b"caba snapshot"));
        assert_ne!(checksum64(b"caba snapshot"), checksum64(b"caba snapshor"));
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Fnv64::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finish(), checksum64(data), "split at {split}");
        }
    }

    #[test]
    fn seal_verify_round_trip_and_rejection() {
        let sealed = seal(vec![1, 2, 3, 4, 5]);
        assert_eq!(verify_sealed(&sealed), Some(&[1u8, 2, 3, 4, 5][..]));
        // Every truncation is rejected.
        for len in 0..sealed.len() {
            assert_eq!(verify_sealed(&sealed[..len]), None, "truncated to {len}");
        }
        // Every flipped bit is rejected.
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(verify_sealed(&bad), None, "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn empty_body_seals() {
        let sealed = seal(Vec::new());
        assert_eq!(verify_sealed(&sealed), Some(&[][..]));
    }
}
