//! A tiny deterministic property-test harness built on [`Rng64`].
//!
//! The workspace must build and test on network-restricted machines, so it
//! cannot depend on an external property-testing crate. This module provides
//! the small slice of that functionality the test suites actually use:
//! run a closure over many seeded random cases and, on failure, report the
//! case index and a per-case seed that reproduces the failure in isolation.
//!
//! ```
//! use caba_stats::prop;
//! prop::check(0xCAB_A001, 64, |rng| {
//!     let x = rng.range_u64(1000);
//!     assert!(x.checked_add(1).is_some());
//! });
//! ```

use crate::rng::Rng64;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of cases used by the test suites.
pub const DEFAULT_CASES: u32 = 64;

/// Runs `property` against `cases` independently seeded RNGs derived from
/// `seed`, panicking with the failing case's index and per-case seed when a
/// case panics (assertion failure inside the property).
///
/// Each case gets `Rng64::for_stream(seed, case_index)`, so a reported
/// failure replays exactly with [`replay`].
///
/// # Panics
///
/// Panics (re-raising the property's failure) when any case fails.
pub fn check<F>(seed: u64, cases: u32, mut property: F)
where
    F: FnMut(&mut Rng64),
{
    for case in 0..cases {
        let mut rng = Rng64::for_stream(seed, case as u64);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            let msg = payload_message(&payload);
            panic!(
                "property failed on case {case}/{cases} (seed {seed:#x}, \
                 replay with prop::replay({seed:#x}, {case})): {msg}"
            );
        }
    }
}

/// Re-runs a single failing case reported by [`check`].
pub fn replay<F>(seed: u64, case: u32, mut property: F)
where
    F: FnMut(&mut Rng64),
{
    let mut rng = Rng64::for_stream(seed, case as u64);
    property(&mut rng);
}

fn payload_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fills a buffer with random bytes.
pub fn fill_bytes(rng: &mut Rng64, buf: &mut [u8]) {
    for chunk in buf.chunks_mut(8) {
        let v = rng.next_u64().to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&v[..n]);
    }
}

/// A random `Vec<u8>` of length `len`.
pub fn bytes(rng: &mut Rng64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    fill_bytes(rng, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0;
        check(1, 10, |_| ran += 1);
        assert_eq!(ran, 10);
    }

    #[test]
    fn failing_property_reports_case_and_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(0xBAD, 32, |rng| {
                assert!(rng.range_u64(10) != 3, "hit the bad value");
            })
        }));
        let payload = result.expect_err("property must fail");
        let msg = payload_message(&payload);
        assert!(msg.contains("replay with"), "message: {msg}");
        assert!(msg.contains("hit the bad value"), "message: {msg}");
    }

    #[test]
    fn replay_reproduces_case_stream() {
        let mut from_check = Vec::new();
        check(7, 3, |rng| from_check.push(rng.next_u64()));
        let mut from_replay = Vec::new();
        for case in 0..3 {
            replay(7, case, |rng| from_replay.push(rng.next_u64()));
        }
        assert_eq!(from_check, from_replay);
    }

    #[test]
    fn bytes_are_deterministic() {
        let mut a = Rng64::new(5);
        let mut b = Rng64::new(5);
        assert_eq!(bytes(&mut a, 37), bytes(&mut b, 37));
        assert_eq!(bytes(&mut a, 0).len(), 0);
    }
}
