//! Deterministic pseudo-random number generation.
//!
//! The workload generators must be reproducible across runs and platforms, so
//! instead of an external RNG crate we provide SplitMix64 — a tiny, well-known
//! mixer with excellent statistical properties for this purpose (Steele et
//! al., "Fast splittable pseudorandom number generators", OOPSLA 2014).

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use caba_stats::Rng64;
/// let mut rng = Rng64::new(7);
/// let x = rng.range_u64(10); // 0..10
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..bound`. Returns 0 when `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction; the slight modulo bias is
    /// irrelevant for workload synthesis.
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.range_u64(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Forks an independent generator, advancing this one once.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64() ^ 0xA5A5_5A5A_F00D_BEEF)
    }

    /// Derives an independent generator for a numbered stream of `seed`.
    ///
    /// Components that each need their own reproducible randomness (one per
    /// SM, one per memory partition, ...) derive disjoint streams from a
    /// single user-facing seed: `for_stream(seed, i)` and
    /// `for_stream(seed, j)` are decorrelated for `i != j`, and the same
    /// `(seed, stream)` pair always produces the same sequence.
    pub fn for_stream(seed: u64, stream: u64) -> Rng64 {
        // Run the mixer once over a seed/stream combination so that nearby
        // stream ids land far apart in state space.
        let mut base = Rng64::new(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let state = base.next_u64();
        Rng64::new(state)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_u64(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl crate::snap::SnapshotState for Rng64 {
    fn save(&self, w: &mut crate::snap::SnapshotWriter) {
        w.u64(self.state);
    }
    fn load(r: &mut crate::snap::SnapshotReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(Rng64 { state: r.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng64::new(9);
        for _ in 0..1000 {
            let v = rng.range(5, 17);
            assert!((5..17).contains(&v));
        }
        assert_eq!(rng.range_u64(0), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::new(0).range(3, 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::new(77);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng64::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(42);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng64::new(5);
        let mut f = a.fork();
        assert_ne!(a.next_u64(), f.next_u64());
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = Rng64::for_stream(99, 0);
        let mut a2 = Rng64::for_stream(99, 0);
        let mut b = Rng64::for_stream(99, 1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), a2.next_u64());
        }
        assert_ne!(Rng64::for_stream(99, 0).next_u64(), b.next_u64());
    }

    #[test]
    fn rough_uniformity() {
        // Not a statistical test suite — just a sanity check that the mean of
        // many draws is near the middle of the range.
        let mut rng = Rng64::new(2024);
        let n = 10_000;
        let sum: u64 = (0..n).map(|_| rng.range_u64(100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((45.0..55.0).contains(&mean), "mean {mean}");
    }
}
