//! Hand-rolled binary snapshot serialization.
//!
//! The checkpoint/restore subsystem needs a compact, deterministic,
//! dependency-free wire format for full machine state. This module provides
//! the three layers every crate builds on:
//!
//! * [`SnapshotWriter`] / [`SnapshotReader`] — little-endian primitive
//!   encoding with length-prefixed byte strings. The reader is fully
//!   validating: every read returns a [`SnapError`] instead of panicking, so
//!   corrupt or truncated input can never take the process down.
//! * [`SnapshotState`] — the round-trip trait (`save` then `load` must
//!   reproduce the value exactly, and re-`save` must be byte-identical).
//!   Implemented here for primitives, tuples, arrays, `Option`, `Vec`,
//!   `VecDeque` and `String`; simulator crates implement it for their own
//!   state.
//! * [`checksum64`] — FNV-1a over the payload, the integrity seal of the
//!   container format in `caba_sim::snapshot`.
//!
//! Determinism contract: any map-shaped state must be serialized in sorted
//! key order, and any internal cache that is *pure memoization* (rebuildable
//! from serialized state without affecting timing) must be excluded so that
//! serialize → restore → re-serialize is byte-identical.
//!
//! # Examples
//!
//! ```
//! use caba_stats::snap::{SnapshotReader, SnapshotState, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new();
//! (7u64, vec![1u32, 2, 3]).save(&mut w);
//! let bytes = w.into_bytes();
//!
//! let mut r = SnapshotReader::new(&bytes);
//! let back = <(u64, Vec<u32>)>::load(&mut r).unwrap();
//! r.finish().unwrap();
//! assert_eq!(back, (7, vec![1, 2, 3]));
//! ```

use std::collections::VecDeque;
use std::fmt;

/// Typed decode failure. Never panics, never partially applies: callers see
/// exactly why a byte stream was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before `wanted` more bytes could be read.
    UnexpectedEof {
        /// Bytes the decoder needed.
        wanted: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An enum discriminant or sentinel byte had no defined meaning.
    BadTag {
        /// Which decoder rejected the tag.
        what: &'static str,
        /// The offending value.
        tag: u64,
    },
    /// A length prefix exceeds the bytes remaining in the stream, so the
    /// collection it describes cannot possibly be present.
    LengthOverflow {
        /// Which decoder rejected the length.
        what: &'static str,
        /// The claimed element count.
        len: u64,
    },
    /// [`SnapshotReader::finish`] found unconsumed bytes.
    TrailingBytes {
        /// Bytes left over.
        remaining: usize,
    },
    /// A decoded value violated a structural invariant of the target
    /// (for example, a cache blob whose set count disagrees with the
    /// configured geometry).
    Invariant {
        /// Which invariant failed.
        what: &'static str,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof { wanted, remaining } => {
                write!(
                    f,
                    "unexpected end of snapshot: wanted {wanted} bytes, {remaining} left"
                )
            }
            SnapError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            SnapError::LengthOverflow { what, len } => {
                write!(f, "{what} length {len} exceeds remaining snapshot bytes")
            }
            SnapError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after snapshot payload")
            }
            SnapError::Invariant { what } => write!(f, "snapshot violates invariant: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// The workspace-wide FNV-1a-64 checksum, the payload seal of every
/// container format (re-exported from [`crate::checksum`], the single
/// implementation).
pub use crate::checksum::checksum64;

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `i64` little-endian (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix (container framing only).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Validating little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::LengthOverflow {
            what: "usize",
            len: v,
        })
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is a [`SnapError::BadTag`].
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag {
                what: "bool",
                tag: t as u64,
            }),
        }
    }

    /// Reads exactly `n` raw bytes with no length prefix (the counterpart of
    /// [`SnapshotWriter::raw`], for fixed-size blobs and container framing).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(SnapError::LengthOverflow { what: "bytes", len });
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        std::str::from_utf8(b)
            .map(str::to_owned)
            .map_err(|_| SnapError::Invariant {
                what: "string is not UTF-8",
            })
    }

    /// Reads a collection length prefix, rejecting lengths that cannot fit
    /// in the remaining bytes (each element needs at least `min_elem_bytes`).
    /// This bounds allocation before the checksum layer has a say.
    pub fn seq_len(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, SnapError> {
        let len = self.u64()?;
        let need = len.saturating_mul(min_elem_bytes.max(1) as u64);
        if need > self.remaining() as u64 {
            return Err(SnapError::LengthOverflow { what, len });
        }
        Ok(len as usize)
    }

    /// Fails unless every byte was consumed — catches framing bugs and
    /// appended garbage alike.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            Err(SnapError::TrailingBytes {
                remaining: self.remaining(),
            })
        } else {
            Ok(())
        }
    }
}

/// Exact round-trip binary serialization for a value type.
///
/// Contract: `load(save(x)) == x`, and `save(load(save(x)))` yields bytes
/// identical to `save(x)` (pinned by `caba_stats::prop` round-trip tests
/// for every implementation in the workspace).
pub trait SnapshotState: Sized {
    /// Appends this value's encoding to the writer.
    fn save(&self, w: &mut SnapshotWriter);
    /// Decodes one value, consuming exactly the bytes `save` wrote.
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! prim_impl {
    ($t:ty, $w:ident, $r:ident) => {
        impl SnapshotState for $t {
            fn save(&self, w: &mut SnapshotWriter) {
                w.$w(*self);
            }
            fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
                r.$r()
            }
        }
    };
}

prim_impl!(u8, u8, u8);
prim_impl!(u16, u16, u16);
prim_impl!(u32, u32, u32);
prim_impl!(u64, u64, u64);
prim_impl!(usize, usize, usize);
prim_impl!(i64, i64, i64);
prim_impl!(f64, f64, f64);
prim_impl!(bool, bool, bool);

impl SnapshotState for String {
    fn save(&self, w: &mut SnapshotWriter) {
        w.str(self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.string()
    }
}

impl<A: SnapshotState, B: SnapshotState> SnapshotState for (A, B) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: SnapshotState, B: SnapshotState, C: SnapshotState> SnapshotState for (A, B, C) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: SnapshotState> SnapshotState for Option<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            t => Err(SnapError::BadTag {
                what: "Option",
                tag: t as u64,
            }),
        }
    }
}

impl<T: SnapshotState> SnapshotState for Vec<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let len = r.seq_len("Vec", 1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: SnapshotState> SnapshotState for VecDeque<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let len = r.seq_len("VecDeque", 1)?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: SnapshotState + Copy + Default, const N: usize> SnapshotState for [T; N] {
    fn save(&self, w: &mut SnapshotWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::load(r)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: SnapshotState + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = SnapshotWriter::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back = T::load(&mut r).expect("load");
        r.finish().expect("finish");
        assert_eq!(&back, v);
        // Re-serialize must be byte-identical.
        let mut w2 = SnapshotWriter::new();
        back.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&u8::MAX);
        round_trip(&0xBEEFu16);
        round_trip(&0xDEAD_BEEFu32);
        round_trip(&u64::MAX);
        round_trip(&usize::MAX);
        round_trip(&-42i64);
        round_trip(&3.5f64);
        round_trip(&true);
        round_trip(&false);
        round_trip(&"héllo".to_string());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Some(7u64));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Vec::<u64>::new());
        round_trip(&VecDeque::from([9u64, 8, 7]));
        round_trip(&(1u8, 2u64));
        round_trip(&(1u8, 2u64, vec![3u32]));
        round_trip(&[1u64, 2, 3]);
        round_trip(&vec![[1u64; 4], [2u64; 4]]);
    }

    #[test]
    fn truncated_input_is_eof() {
        let mut w = SnapshotWriter::new();
        0xAABB_CCDDu32.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes[..2]);
        assert!(matches!(
            u32::load(&mut r),
            Err(SnapError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_bool_and_option_tags_rejected() {
        let mut r = SnapshotReader::new(&[2]);
        assert!(matches!(
            bool::load(&mut r),
            Err(SnapError::BadTag { what: "bool", .. })
        ));
        let mut r = SnapshotReader::new(&[9]);
        assert!(matches!(
            Option::<u8>::load(&mut r),
            Err(SnapError::BadTag { what: "Option", .. })
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        // Claim 2^60 elements with 8 bytes of actual payload.
        let mut w = SnapshotWriter::new();
        w.u64(1 << 60);
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            Vec::<u8>::load(&mut r),
            Err(SnapError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = SnapshotWriter::new();
        7u64.save(&mut w);
        w.u8(0xFF);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        u64::load(&mut r).unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn checksum_stable_and_sensitive() {
        let a = checksum64(b"caba snapshot");
        assert_eq!(a, checksum64(b"caba snapshot"));
        assert_ne!(a, checksum64(b"caba snapshor"));
        // FNV-1a offset basis for the empty string (the one implementation
        // lives in `crate::checksum`; this re-export must stay identical).
        assert_eq!(checksum64(b""), crate::checksum::FNV_OFFSET);
    }
}
