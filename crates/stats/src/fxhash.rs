//! A small, fast, deterministic in-repo hasher for hot simulator maps.
//!
//! The standard library's default `SipHash 1-3` is DoS-resistant but costs
//! tens of cycles per `u64` key; the simulator's hottest maps (the request
//! ledger, functional-memory pages, the compression map) are keyed by
//! addresses under our own control, so a multiply-xor hash in the style of
//! Firefox's `FxHasher` is both safe and several times faster. The hash is
//! seed-free, so map *hashes* are identical across runs — note that the
//! simulator never lets `HashMap` iteration order reach architectural
//! state anyway (see `DESIGN.md`, "hot-path invariants").
//!
//! # Examples
//!
//! ```
//! use caba_stats::fxhash::FxHashMap;
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(0x80001d000, "line");
//! assert_eq!(m.get(&0x80001d000), Some(&"line"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier: `2^64 / phi`, the classic Fibonacci-hashing
/// constant (same value rustc's `FxHasher` uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hash state: rotate, xor the word in, multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path: consume 8-byte words, then the tail. Only integer
        // keys hit the specialised methods below; tuple keys combine them.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; seed-free and `Default`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`]. Construct with `FxHashSet::default()`.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&0xdead_beefu64), hash_of(&0xdead_beefu64));
        assert_eq!(hash_of(&(3usize, 0x40u64)), hash_of(&(3usize, 0x40u64)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Cache-line addresses differ only in low bits; the multiply must
        // spread them across the full 64-bit range.
        let a = hash_of(&0x1000u64);
        let b = hash_of(&0x1040u64);
        assert_ne!(a, b);
        assert_ne!(a >> 56, b >> 56, "high bits must differ: {a:#x} {b:#x}");
    }

    #[test]
    fn map_behaves_like_std() {
        let mut fx: FxHashMap<u64, u32> = FxHashMap::default();
        let mut std: HashMap<u64, u32> = HashMap::new();
        let mut rng = crate::Rng64::new(7);
        for _ in 0..1000 {
            let k = rng.next_u64() % 512;
            let v = rng.next_u64() as u32;
            fx.insert(k, v);
            std.insert(k, v);
        }
        assert_eq!(fx.len(), std.len());
        for (k, v) in &std {
            assert_eq!(fx.get(k), Some(v));
        }
    }

    #[test]
    fn byte_stream_tail_lengths_differ() {
        // A trailing zero byte must change the hash (length is mixed in).
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 0]);
        assert_ne!(h1.finish(), h2.finish());
    }
}
