//! Fixed-width text tables for the figure-regeneration harnesses.

use std::fmt;

/// A simple left-aligned text table.
///
/// Used by `caba-bench` to print the rows/series each paper figure reports.
///
/// # Examples
///
/// ```
/// use caba_stats::Table;
/// let mut t = Table::new(vec!["App".into(), "Speedup".into()]);
/// t.row(vec!["MM".into(), "1.42".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Speedup"));
/// assert!(s.contains("1.42"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Table::new(cols.iter().map(|c| c.to_string()).collect())
    }

    /// Appends one row. Shorter rows are padded with empty cells; longer rows
    /// extend the effective column count.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a row of displayable cells.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) {
        self.row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + widths.len().saturating_sub(1) * 2;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio as a percentage with one decimal, e.g. `41.7%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup with two decimals, e.g. `1.42x`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::with_columns(&["a", "longer"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header and row columns start at the same offset.
        assert_eq!(
            lines[0].find("longer").unwrap(),
            lines[2].find('1').unwrap()
        );
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::with_columns(&["a"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec![]);
        let s = t.to_string();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.417), "41.7%");
        assert_eq!(speedup(2.6), "2.60x");
    }

    #[test]
    fn row_display() {
        let mut t = Table::with_columns(&["v"]);
        t.row_display(&[3.5f64]);
        assert!(t.to_string().contains("3.5"));
    }
}
