//! Property tests for the snapshot wire format: every [`SnapshotState`]
//! impl must round-trip (serialize → load → re-serialize byte-identical),
//! and the reader must consume exactly the bytes the writer produced.

use caba_stats::prop;
use caba_stats::{SnapshotReader, SnapshotState, SnapshotWriter};
use std::collections::VecDeque;

/// Serializes `v`, loads it back, and asserts the re-serialization is
/// byte-identical and the reader consumed the encoding exactly.
fn round_trip<T: SnapshotState + PartialEq + std::fmt::Debug>(v: &T) {
    let mut w = SnapshotWriter::new();
    v.save(&mut w);
    let bytes = w.into_bytes();
    let mut r = SnapshotReader::new(&bytes);
    let back = T::load(&mut r).expect("round-trip load");
    r.finish().expect("no trailing bytes");
    assert_eq!(&back, v);
    let mut w2 = SnapshotWriter::new();
    back.save(&mut w2);
    assert_eq!(
        w2.into_bytes(),
        bytes,
        "re-serialization must be byte-identical"
    );
}

#[test]
fn primitives_round_trip() {
    prop::check(0x5EED_0001, prop::DEFAULT_CASES, |rng| {
        round_trip(&(rng.next_u64() as u8));
        round_trip(&(rng.next_u64() as u16));
        round_trip(&rng.next_u32());
        round_trip(&rng.next_u64());
        round_trip(&(rng.next_u64() as usize));
        round_trip(&(rng.next_u64() as i64));
        round_trip(&rng.chance(0.5));
        round_trip(&rng.next_f64());
    });
    // Edge values the RNG is unlikely to hit.
    round_trip(&u64::MAX);
    round_trip(&0u64);
    round_trip(&f64::INFINITY);
    round_trip(&f64::MIN_POSITIVE);
    round_trip(&-0.0f64);
}

#[test]
fn strings_round_trip() {
    prop::check(0x5EED_0002, prop::DEFAULT_CASES, |rng| {
        let len = rng.range_u64(64) as usize;
        let s: String = (0..len)
            .map(|_| char::from_u32(rng.range(32, 0xD7FF) as u32).unwrap_or('?'))
            .collect();
        round_trip(&s);
    });
    round_trip(&String::new());
}

#[test]
fn containers_round_trip() {
    prop::check(0x5EED_0003, prop::DEFAULT_CASES, |rng| {
        let len = rng.range_u64(32) as usize;
        let v: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        round_trip(&v);
        let d: VecDeque<u32> = (0..len).map(|_| rng.next_u32()).collect();
        round_trip(&d);
        let o: Option<u64> = rng.chance(0.5).then(|| rng.next_u64());
        round_trip(&o);
        let arr: [u64; 4] = [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ];
        round_trip(&arr);
        let pair: (u64, u32) = (rng.next_u64(), rng.next_u32());
        round_trip(&pair);
        let triple: (u8, u64, bool) = (rng.next_u64() as u8, rng.next_u64(), rng.chance(0.5));
        round_trip(&triple);
        // Nesting: the wire format composes.
        let nested: Vec<(Option<u64>, Vec<u32>)> = (0..rng.range_u64(8))
            .map(|_| {
                (
                    rng.chance(0.5).then(|| rng.next_u64()),
                    (0..rng.range_u64(8)).map(|_| rng.next_u32()).collect(),
                )
            })
            .collect();
        round_trip(&nested);
    });
    round_trip(&Vec::<u64>::new());
    round_trip(&None::<u64>);
}

#[test]
fn truncated_encodings_never_load() {
    // Any strict prefix of a valid encoding must fail to load (or fail the
    // trailing-bytes check after a shorter valid parse) — never succeed as
    // the original value.
    prop::check(0x5EED_0004, prop::DEFAULT_CASES, |rng| {
        let v: Vec<u64> = (1..=rng.range(1, 16)).map(|_| rng.next_u64()).collect();
        let mut w = SnapshotWriter::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapshotReader::new(&bytes[..cut]);
            let ok = Vec::<u64>::load(&mut r)
                .and_then(|back| r.finish().map(|()| back))
                .is_ok_and(|back| back == v);
            assert!(!ok, "truncation at {cut}/{} loaded silently", bytes.len());
        }
    });
}

#[test]
fn random_bytes_never_panic_the_reader() {
    // The reader must reject garbage with a typed error, never a panic or
    // an abort: prop::check catches unwinds per case and reports the seed.
    prop::check(0x5EED_0005, prop::DEFAULT_CASES, |rng| {
        let len = rng.range_u64(256) as usize;
        let garbage = prop::bytes(rng, len);
        let mut r = SnapshotReader::new(&garbage);
        let _ = Vec::<(u64, String)>::load(&mut r);
        let mut r = SnapshotReader::new(&garbage);
        let _ = String::load(&mut r);
        let mut r = SnapshotReader::new(&garbage);
        let _ = Vec::<Vec<u64>>::load(&mut r);
    });
}
