//! The 64-seed I/O fault chaos matrix over the durable store.
//!
//! Each seed drives a deterministic schedule of torn writes, silent short
//! reads, `ENOSPC`, failed renames, and failed cleanups under a realistic
//! put/get/scrub workload. The matrix proves the store's three safety
//! invariants hold under *every* schedule:
//!
//! 1. **No panic, typed errors only** — every operation returns `Ok` or a
//!    `StoreError`; the `#[should_panic]`-free run of this test is itself
//!    the assertion.
//! 2. **No corrupt payload is ever decoded** — any `Some(bytes)` returned
//!    by a get, at any point, is byte-identical to what was put.
//! 3. **Quarantine, never data loss** — entries the store gives up on are
//!    moved aside, not deleted: on a clean re-open, every successfully
//!    committed entry is either readable or present in `quarantine/`.
//!
//! A final aggregate assertion proves the matrix exercised every fault
//! class at least once, so a regression that stops injecting (or stops
//! surviving) a class cannot pass silently.

use caba_store::fsio::scratch_dir;
use caba_store::{FaultCounts, FaultFs, FaultRates, SnapKey, Store};
use std::path::Path;

const SEEDS: u64 = 64;
const FAULT_RATE: f64 = 0.12;
const RESULT_KEYS: u64 = 8;
const SNAP_KEYS: u64 = 3;

fn result_payload(seed: u64, i: u64) -> Vec<u8> {
    (0..(16 + 13 * i)).map(|j| (seed ^ i ^ j) as u8).collect()
}

fn snap_payload(seed: u64, i: u64) -> Vec<u8> {
    (0..(64 + 7 * i))
        .map(|j| (seed.wrapping_mul(31) ^ i ^ j) as u8)
        .collect()
}

fn snap_key(seed: u64, i: u64) -> SnapKey {
    SnapKey {
        config_hash: 0xC0FFEE ^ seed,
        kernel_hash: 0xBEEF ^ i,
        design: "Base".to_string(),
        cycle: 10_000 * (i + 1),
    }
}

/// True when `quarantine/` holds a file whose name embeds this entry key.
fn quarantined(root: &Path, key: u64) -> bool {
    let needle = format!("{key:016x}.entry");
    std::fs::read_dir(root.join("quarantine"))
        .map(|rd| {
            rd.flatten()
                .any(|e| e.file_name().to_string_lossy().contains(&needle))
        })
        .unwrap_or(false)
}

#[test]
fn chaos_matrix_64_seeds() {
    let mut totals = FaultCounts::default();
    for seed in 0..SEEDS {
        let dir = scratch_dir(&format!("chaos-{seed}"));
        let fault = FaultFs::new(seed, FaultRates::uniform(FAULT_RATE));
        let counts = fault.counts_handle();
        let store =
            Store::open_with_fs(&dir, Box::new(fault)).expect("open only touches unfaulted ops");

        // Fault phase: interleaved puts and gets, with a mid-phase scrub.
        // Keys where the put committed (returned Ok) are durable on disk.
        let mut committed_results = Vec::new();
        let mut committed_snaps = Vec::new();
        for i in 0..RESULT_KEYS {
            let key = 1_000 * seed + i;
            let payload = result_payload(seed, i);
            if store
                .put_result(key, &format!("chaos {seed}/{i}"), &payload)
                .is_ok()
            {
                committed_results.push((key, payload.clone()));
            }
            // Read back only the even keys under injection: a good entry
            // unlucky enough to draw two short reads in a row is
            // *quarantined*, which the odd keys below must not suffer so
            // they can pin the durability invariant on clean re-open.
            if i % 2 == 0 {
                if let Ok(Some(got)) = store.get_result(key) {
                    assert_eq!(
                        got, payload,
                        "seed {seed} key {key}: corrupt payload decoded"
                    );
                }
            }
        }
        for i in 0..SNAP_KEYS {
            let key = snap_key(seed, i);
            let payload = snap_payload(seed, i);
            if store.put_snapshot(&key, &payload).is_ok() {
                committed_snaps.push((key.clone(), payload.clone()));
            }
            if let Ok(Some(got)) = store.get_snapshot(&key) {
                assert_eq!(
                    got, payload,
                    "seed {seed} snap {i}: corrupt payload decoded"
                );
            }
        }
        // A scrub under injection must itself stay typed and lossless;
        // short reads may quarantine good entries — that is quarantine,
        // not loss, and the re-open check below accounts for it.
        let _ = store.scrub();
        drop(store);

        // Clean re-open: no injection. Every committed entry must now be
        // readable and exact, or sitting in quarantine/.
        let clean = Store::open(&dir).expect("clean reopen");
        let report = clean.scrub().expect("clean scrub");
        for q in &report.quarantined {
            // Quarantined files land as `quarantine/{seq:08x}-{name}`.
            let name = Path::new(&q.rel_path)
                .file_name()
                .expect("quarantine rel path has a file name")
                .to_string_lossy()
                .into_owned();
            let found = std::fs::read_dir(dir.join("quarantine"))
                .map(|rd| {
                    rd.flatten()
                        .any(|e| e.file_name().to_string_lossy().ends_with(&name))
                })
                .unwrap_or(false);
            assert!(found, "seed {seed}: quarantined {} vanished", q.rel_path);
        }
        for (key, payload) in &committed_results {
            match clean.get_result(*key).expect("clean get is infallible") {
                Some(got) => assert_eq!(&got, payload, "seed {seed} key {key} corrupted at rest"),
                None => assert!(
                    quarantined(&dir, *key),
                    "seed {seed} key {key}: committed entry lost without quarantine"
                ),
            }
        }
        for (key, payload) in &committed_snaps {
            match clean.get_snapshot(key).expect("clean get is infallible") {
                Some(got) => assert_eq!(&got, payload, "seed {seed} snap corrupted at rest"),
                None => assert!(
                    quarantined(&dir, key.hash()),
                    "seed {seed}: committed snapshot lost without quarantine"
                ),
            }
        }
        // After the clean scrub the store must verify clean end to end.
        assert!(
            clean.scrub().expect("second clean scrub").is_clean(),
            "seed {seed}: store still dirty after scrub"
        );

        let c = *counts.lock().unwrap();
        totals.torn_writes += c.torn_writes;
        totals.short_reads += c.short_reads;
        totals.enospc += c.enospc;
        totals.rename_fails += c.rename_fails;
        totals.cleanup_fails += c.cleanup_fails;
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The matrix must have exercised every fault class, or the survival
    // claims above are vacuous.
    assert!(totals.torn_writes > 0, "matrix never tore a write");
    assert!(totals.short_reads > 0, "matrix never shortened a read");
    assert!(totals.enospc > 0, "matrix never hit ENOSPC");
    assert!(totals.rename_fails > 0, "matrix never failed a rename");
    assert!(totals.cleanup_fails > 0, "matrix never failed a cleanup");
    eprintln!(
        "chaos matrix: {SEEDS} seeds, {} faults injected: {totals:?}",
        totals.total()
    );
}
