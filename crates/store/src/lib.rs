//! Crash-safe content-addressed store for CABA snapshots and results.
//!
//! Simulation campaigns produce two kinds of expensive artifacts: machine
//! snapshots (a warm `Gpu` mid-kernel, megabytes) and finished cell
//! results (a `StatsSummary`, bytes). Both are pure functions of their
//! key, so a store keyed by content hash lets a killed sweep — or an
//! entirely fresh process — pick up exactly where a previous one left
//! off, bit-identically. That only holds if the store itself can never
//! lie: a torn write, short read, or stale temp file must surface as a
//! *miss* (recompute) or a typed error, never as corrupt bytes decoded
//! into a live machine.
//!
//! # Entry container (format version 1)
//!
//! Every object is a sealed container reusing the `CABASNAP`
//! checksum-before-decode contract ([`caba_stats::checksum`]):
//!
//! | field    | encoding                 | purpose                      |
//! |----------|--------------------------|------------------------------|
//! | magic    | 8 raw bytes `"CABASTOR"` | file-type identification     |
//! | version  | `u32`                    | format evolution gate        |
//! | kind     | `u8` ([`EntryKind`])     | snapshot vs result           |
//! | key      | `u64`                    | content hash, = the filename |
//! | label    | length-prefixed string   | human-readable provenance    |
//! | payload  | length-prefixed bytes    | caller bytes, opaque         |
//! | checksum | trailing `u64` (LE)      | FNV-1a over everything above |
//!
//! The checksum is verified **before** any field is decoded. The `key`
//! field is then cross-checked against both the filename and the
//! caller's request, so a valid entry renamed to the wrong name is also
//! caught.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   objects/sn/<key:016x>.entry   machine snapshots
//!   objects/rs/<key:016x>.entry   cell results
//!   tmp/                          in-flight writes (pre-rename)
//!   quarantine/                   corrupt entries, moved — never deleted
//!   lru.log                       append-only self-checksummed touch log
//! ```
//!
//! # Write discipline
//!
//! `put` writes the sealed container to `tmp/`, fsyncs the file,
//! `rename(2)`s it onto its final name, and fsyncs the parent directory.
//! A crash at any point leaves either the old state, a stale temp file
//! (swept by [`Store::scrub`]), or the complete new entry — never a torn
//! visible entry at the final name. Failed in-flight writes are cleaned
//! up best-effort; a failed cleanup again just leaves a stale temp.
//!
//! # Scrub and quarantine
//!
//! [`Store::scrub`] re-verifies every entry's checksum and header and
//! *moves* anything corrupt into `quarantine/` (preserving the bytes for
//! forensics — the store never deletes data it cannot prove is garbage).
//! Stale temp files are quarantined the same way. [`Store::gc`] is the
//! one legitimate deleter: an LRU sweep driven by the touch log that
//! evicts verified-live entries until the store fits its size cap.

pub mod fsio;

use caba_stats::checksum::{self, Fnv64};
use caba_stats::snap::{SnapshotReader, SnapshotWriter};
pub use fsio::{FaultCounts, FaultFs, FaultRates, RealFs, StoreFs};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First bytes of every store entry.
pub const MAGIC: &[u8; 8] = b"CABASTOR";

/// Current entry format version. Bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// What an entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A sealed `Gpu` snapshot container (itself `CABASNAP`-framed).
    Snapshot = 0,
    /// A finished sweep-cell result (`StatsSummary` + wall time).
    Result = 1,
}

impl EntryKind {
    /// The objects subdirectory holding this kind.
    fn dir_name(self) -> &'static str {
        match self {
            EntryKind::Snapshot => "sn",
            EntryKind::Result => "rs",
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(EntryKind::Snapshot),
            1 => Some(EntryKind::Result),
            _ => None,
        }
    }
}

/// The identity of a machine snapshot: which machine, which program,
/// which design point, and how far it had run. Two snapshots with equal
/// keys are interchangeable bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapKey {
    /// Canonical configuration hash (`caba_sim::snapshot::config_hash`).
    pub config_hash: u64,
    /// Program/content hash. Callers must fold in anything the program
    /// hash alone does not cover (app name, data scale) — the store
    /// trusts this value as the full program identity.
    pub kernel_hash: u64,
    /// Design label the snapshot was taken on.
    pub design: String,
    /// Cycle the machine had reached.
    pub cycle: u64,
}

impl SnapKey {
    /// The content hash this snapshot files under.
    pub fn hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.update(b"caba-snapkey-v1|");
        h.update(&self.config_hash.to_le_bytes());
        h.update(&self.kernel_hash.to_le_bytes());
        h.update(self.design.as_bytes());
        h.update(b"|");
        h.update(&self.cycle.to_le_bytes());
        h.finish()
    }

    /// Human-readable provenance recorded in the entry label.
    pub fn label(&self) -> String {
        format!(
            "snap cfg={:016x} krn={:016x} design={} cycle={}",
            self.config_hash, self.kernel_hash, self.design, self.cycle
        )
    }
}

/// Why a store operation failed. Corruption is *not* an error — corrupt
/// entries quarantine and read as misses — so every variant here is an
/// environmental failure the caller may want to retry or report.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed.
    Io {
        /// Which store operation failed (e.g. `"write temp"`, `"rename"`).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store {op} failed on {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
        }
    }
}

fn ioerr(op: &'static str, path: &Path, source: io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// One quarantined file in a [`ScrubReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Path relative to the store root (e.g. `objects/sn/....entry`).
    pub rel_path: String,
    /// Why it was quarantined.
    pub reason: String,
}

/// Outcome of a [`Store::scrub`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Entries whose checksum and header verified.
    pub ok: u64,
    /// Files moved into `quarantine/` (corrupt entries + stale temps).
    pub quarantined: Vec<Quarantined>,
    /// Files that could not be scrubbed (I/O error mid-scrub); they are
    /// left in place for a later pass.
    pub skipped: Vec<Quarantined>,
}

impl ScrubReport {
    /// True when every entry verified and nothing needed quarantine.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.skipped.is_empty()
    }

    /// Serializes the report as JSON (dependency-free, like the sweep
    /// reports).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"ok\": {},\n", self.ok));
        s.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        let list = |items: &[Quarantined]| -> String {
            let rows: Vec<String> = items
                .iter()
                .map(|q| {
                    format!(
                        "    {{\"path\": {}, \"reason\": {}}}",
                        json_str(&q.rel_path),
                        json_str(&q.reason)
                    )
                })
                .collect();
            if rows.is_empty() {
                "[]".to_string()
            } else {
                format!("[\n{}\n  ]", rows.join(",\n"))
            }
        };
        s.push_str(&format!(
            "  \"quarantined\": {},\n",
            list(&self.quarantined)
        ));
        s.push_str(&format!("  \"skipped\": {}\n", list(&self.skipped)));
        s.push_str("}\n");
        s
    }
}

/// Outcome of a [`Store::gc`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Store size before the sweep (entry bytes only).
    pub before_bytes: u64,
    /// Store size after the sweep.
    pub after_bytes: u64,
    /// Entry file names evicted, oldest first.
    pub evicted: Vec<String>,
    /// Evictions that failed (entry left in place).
    pub failed: u64,
}

impl GcReport {
    /// Serializes the report as JSON.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.evicted.iter().map(|n| json_str(n)).collect();
        format!(
            "{{\n  \"before_bytes\": {},\n  \"after_bytes\": {},\n  \"evicted\": [{}],\n  \"failed\": {}\n}}\n",
            self.before_bytes,
            self.after_bytes,
            rows.join(", "),
            self.failed
        )
    }
}

/// A point-in-time inventory of the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Snapshot entries on disk.
    pub snapshots: u64,
    /// Result entries on disk.
    pub results: u64,
    /// Total entry bytes (both kinds).
    pub entry_bytes: u64,
    /// Files sitting in `quarantine/`.
    pub quarantined: u64,
    /// Stale files in `tmp/`.
    pub stale_temps: u64,
    /// Cache hits served by this `Store` handle (process-local).
    pub hits: u64,
    /// Cache misses served by this `Store` handle (process-local).
    pub misses: u64,
}

impl StoreStats {
    /// Serializes the stats as JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"snapshots\": {},\n  \"results\": {},\n  \"entry_bytes\": {},\n  \"quarantined\": {},\n  \"stale_temps\": {},\n  \"hits\": {},\n  \"misses\": {}\n}}\n",
            self.snapshots,
            self.results,
            self.entry_bytes,
            self.quarantined,
            self.stale_temps,
            self.hits,
            self.misses
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Counters {
    /// Monotonic sequence for LRU touches and temp-file uniqueness.
    next_seq: u64,
    hits: u64,
    misses: u64,
}

/// The store handle. All methods take `&self`; internal counters are
/// mutex-guarded so a handle can be shared across sweep worker threads.
pub struct Store {
    root: PathBuf,
    fs: Box<dyn StoreFs>,
    counters: Mutex<Counters>,
}

const LRU_LOG: &str = "lru.log";

impl Store {
    /// Opens (creating if needed) a store rooted at `root` on the real
    /// filesystem.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with_fs(root, Box::new(RealFs))
    }

    /// Opens a store over an explicit filesystem — the seam the chaos
    /// tests use to thread a [`FaultFs`] underneath.
    pub fn open_with_fs(
        root: impl Into<PathBuf>,
        fs: Box<dyn StoreFs>,
    ) -> Result<Self, StoreError> {
        let root = root.into();
        for sub in [
            PathBuf::from("objects").join("sn"),
            PathBuf::from("objects").join("rs"),
            PathBuf::from("tmp"),
            PathBuf::from("quarantine"),
        ] {
            let dir = root.join(&sub);
            fs.create_dir_all(&dir)
                .map_err(|e| ioerr("create dir", &dir, e))?;
        }
        let store = Store {
            root,
            fs,
            counters: Mutex::new(Counters {
                next_seq: 0,
                hits: 0,
                misses: 0,
            }),
        };
        // Resume the touch sequence past anything already logged so new
        // touches sort after old ones.
        let max_seq = store.read_touches().into_iter().map(|(_, s)| s).max();
        store.counters.lock().expect("store counters").next_seq = max_seq.map_or(0, |s| s + 1);
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Cache hits served by this handle (process-local, for tests and
    /// sweep summaries).
    pub fn hit_count(&self) -> u64 {
        self.counters.lock().expect("store counters").hits
    }

    /// Cache misses served by this handle.
    pub fn miss_count(&self) -> u64 {
        self.counters.lock().expect("store counters").misses
    }

    fn objects_dir(&self, kind: EntryKind) -> PathBuf {
        self.root.join("objects").join(kind.dir_name())
    }

    fn entry_path(&self, kind: EntryKind, key: u64) -> PathBuf {
        self.objects_dir(kind).join(format!("{key:016x}.entry"))
    }

    fn bump_seq(&self) -> u64 {
        let mut c = self.counters.lock().expect("store counters");
        let s = c.next_seq;
        c.next_seq += 1;
        s
    }

    fn count_hit(&self) {
        self.counters.lock().expect("store counters").hits += 1;
    }

    fn count_miss(&self) {
        self.counters.lock().expect("store counters").misses += 1;
    }

    // ---- entry encode/decode -------------------------------------------

    fn encode_entry(kind: EntryKind, key: u64, label: &str, payload: &[u8]) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.raw(MAGIC);
        w.u32(FORMAT_VERSION);
        w.u8(kind as u8);
        w.u64(key);
        w.str(label);
        w.bytes(payload);
        checksum::seal(w.into_bytes())
    }

    /// Decodes a sealed entry, verifying checksum (first), magic,
    /// version, kind, and key. Returns `(label, payload)`.
    fn decode_entry(
        bytes: &[u8],
        want_kind: EntryKind,
        want_key: u64,
    ) -> Result<(String, Vec<u8>), String> {
        let body = checksum::verify_sealed(bytes).ok_or("checksum mismatch")?;
        let mut r = SnapshotReader::new(body);
        let magic = r.raw(MAGIC.len()).map_err(|e| e.to_string())?;
        if magic != MAGIC {
            return Err("bad magic".to_string());
        }
        let version = r.u32().map_err(|e| e.to_string())?;
        if version != FORMAT_VERSION {
            return Err(format!("unsupported format version {version}"));
        }
        let kind_tag = r.u8().map_err(|e| e.to_string())?;
        let kind =
            EntryKind::from_tag(kind_tag).ok_or_else(|| format!("bad kind tag {kind_tag}"))?;
        if kind != want_kind {
            return Err(format!("entry kind {kind:?} filed under {want_kind:?}"));
        }
        let key = r.u64().map_err(|e| e.to_string())?;
        if key != want_key {
            return Err(format!("entry key {key:016x} filed under {want_key:016x}"));
        }
        let label = r.string().map_err(|e| e.to_string())?;
        let payload = r.bytes().map_err(|e| e.to_string())?.to_vec();
        r.finish().map_err(|e| e.to_string())?;
        Ok((label, payload))
    }

    // ---- put / get -----------------------------------------------------

    /// Stores a machine snapshot under its content key. Overwrites an
    /// existing entry atomically (same bytes by construction).
    pub fn put_snapshot(&self, key: &SnapKey, snapshot_bytes: &[u8]) -> Result<(), StoreError> {
        self.put(
            EntryKind::Snapshot,
            key.hash(),
            &key.label(),
            snapshot_bytes,
        )
    }

    /// Fetches a machine snapshot. `Ok(None)` means miss — absent, or
    /// corrupt-and-quarantined.
    pub fn get_snapshot(&self, key: &SnapKey) -> Result<Option<Vec<u8>>, StoreError> {
        self.get(EntryKind::Snapshot, key.hash())
    }

    /// Stores a cell result under the caller's content key (the sweep
    /// cell key).
    pub fn put_result(&self, key: u64, label: &str, payload: &[u8]) -> Result<(), StoreError> {
        self.put(EntryKind::Result, key, label, payload)
    }

    /// Fetches a cell result. `Ok(None)` means miss.
    pub fn get_result(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.get(EntryKind::Result, key)
    }

    fn put(
        &self,
        kind: EntryKind,
        key: u64,
        label: &str,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let sealed = Self::encode_entry(kind, key, label, payload);
        let final_path = self.entry_path(kind, key);
        let tmp_path = self.root.join("tmp").join(format!(
            "{}-{key:016x}-{:08x}.tmp",
            kind.dir_name(),
            self.bump_seq()
        ));

        if let Err(e) = self.fs.write_sync(&tmp_path, &sealed) {
            // The temp may hold a torn prefix; try to clean it up. A
            // failed cleanup just leaves a stale temp for scrub.
            let _ = self.fs.remove_file(&tmp_path);
            return Err(ioerr("write temp", &tmp_path, e));
        }
        if let Err(e) = self.fs.rename(&tmp_path, &final_path) {
            let _ = self.fs.remove_file(&tmp_path);
            return Err(ioerr("rename", &final_path, e));
        }
        let dir = self.objects_dir(kind);
        self.fs
            .sync_dir(&dir)
            .map_err(|e| ioerr("sync dir", &dir, e))?;
        self.touch(kind, key);
        Ok(())
    }

    fn get(&self, kind: EntryKind, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.entry_path(kind, key);
        let mut last_reason = String::new();
        // Decode failure can be a transient short read; re-read once
        // before concluding the bytes on disk are actually corrupt.
        for _attempt in 0..2 {
            let bytes = match self.fs.read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    self.count_miss();
                    return Ok(None);
                }
                Err(e) => return Err(ioerr("read", &path, e)),
            };
            match Self::decode_entry(&bytes, kind, key) {
                Ok((_label, payload)) => {
                    self.count_hit();
                    self.touch(kind, key);
                    return Ok(Some(payload));
                }
                Err(reason) => last_reason = reason,
            }
        }
        // Two reads, two decode failures: the entry itself is corrupt.
        // Quarantine it (preserving the bytes) and report a miss.
        self.quarantine_file(&path, &format!("get: {last_reason}"));
        self.count_miss();
        Ok(None)
    }

    // ---- quarantine ----------------------------------------------------

    /// Moves `path` into `quarantine/`, never deleting. Best-effort: a
    /// failed move leaves the file where it is for the next scrub.
    fn quarantine_file(&self, path: &Path, _reason: &str) -> bool {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".to_string());
        // Disambiguate collisions with the touch sequence rather than
        // overwriting previously quarantined bytes.
        let dest = self
            .root
            .join("quarantine")
            .join(format!("{:08x}-{name}", self.bump_seq()));
        self.fs.rename(path, &dest).is_ok()
    }

    // ---- LRU touch log -------------------------------------------------

    /// Records a use of `(kind, key)` in the touch log. Best-effort: the
    /// log is advisory (it only orders GC eviction), so an injected
    /// append fault must not fail the surrounding put/get.
    fn touch(&self, kind: EntryKind, key: u64) {
        let seq = self.bump_seq();
        let body = format!("touch {} {key:016x} {seq:016x}", kind.dir_name());
        let sum = checksum::checksum64(body.as_bytes());
        let line = format!("{body} sum={sum:016x}\n");
        let _ = self
            .fs
            .append_sync(&self.root.join(LRU_LOG), line.as_bytes());
    }

    /// Replays the touch log, skipping torn/corrupt lines (the journal
    /// idiom: each line carries its own checksum). Returns the latest
    /// sequence per entry file name.
    fn read_touches(&self) -> Vec<(String, u64)> {
        let bytes = match self.fs.read(&self.root.join(LRU_LOG)) {
            Ok(b) => b,
            Err(_) => return Vec::new(),
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut latest: Vec<(String, u64)> = Vec::new();
        for line in text.lines() {
            let Some((body, sum_part)) = line.rsplit_once(" sum=") else {
                continue;
            };
            let Ok(sum) = u64::from_str_radix(sum_part, 16) else {
                continue;
            };
            if checksum::checksum64(body.as_bytes()) != sum {
                continue; // torn or corrupt line: skip, keep replaying
            }
            let mut parts = body.split(' ');
            let (Some("touch"), Some(dir), Some(key_hex), Some(seq_hex)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            if parts.next().is_some() {
                continue;
            }
            let (Ok(_key), Ok(seq)) = (
                u64::from_str_radix(key_hex, 16),
                u64::from_str_radix(seq_hex, 16),
            ) else {
                continue;
            };
            let name = format!("{dir}/{key_hex}.entry");
            match latest.iter_mut().find(|(n, _)| *n == name) {
                Some((_, s)) => *s = (*s).max(seq),
                None => latest.push((name, seq)),
            }
        }
        latest
    }

    // ---- scrub ---------------------------------------------------------

    /// Verifies every entry (checksum before decode, then header and
    /// key/filename agreement) and quarantines anything corrupt, plus
    /// all stale temp files. Never deletes.
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        let mut report = ScrubReport::default();
        for kind in [EntryKind::Snapshot, EntryKind::Result] {
            let dir = self.objects_dir(kind);
            let names = self
                .fs
                .list(&dir)
                .map_err(|e| ioerr("list objects", &dir, e))?;
            for name in names {
                let rel = format!("objects/{}/{name}", kind.dir_name());
                let path = dir.join(&name);
                let Some(key) = name
                    .strip_suffix(".entry")
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                else {
                    if self.quarantine_file(&path, "unrecognized file name") {
                        report.quarantined.push(Quarantined {
                            rel_path: rel,
                            reason: "unrecognized file name".to_string(),
                        });
                    } else {
                        report.skipped.push(Quarantined {
                            rel_path: rel,
                            reason: "unrecognized file name (quarantine move failed)".to_string(),
                        });
                    }
                    continue;
                };
                // Read twice on decode failure, like `get`, so a
                // transient short read does not quarantine a good entry.
                let mut verdict: Result<(), String> = Err("unreadable".to_string());
                for _attempt in 0..2 {
                    match self.fs.read(&path) {
                        Ok(bytes) => match Self::decode_entry(&bytes, kind, key) {
                            Ok(_) => {
                                verdict = Ok(());
                                break;
                            }
                            Err(reason) => verdict = Err(reason),
                        },
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {
                            verdict = Ok(()); // raced away; nothing to scrub
                            break;
                        }
                        Err(e) => verdict = Err(format!("read failed: {e}")),
                    }
                }
                match verdict {
                    Ok(()) => report.ok += 1,
                    Err(reason) => {
                        if self.quarantine_file(&path, &reason) {
                            report.quarantined.push(Quarantined {
                                rel_path: rel,
                                reason,
                            });
                        } else {
                            report.skipped.push(Quarantined {
                                rel_path: rel,
                                reason: format!("{reason} (quarantine move failed)"),
                            });
                        }
                    }
                }
            }
        }
        // Anything still in tmp/ is an in-flight write that never
        // committed: a crash artifact. Preserve it in quarantine.
        let tmp_dir = self.root.join("tmp");
        let temps = self
            .fs
            .list(&tmp_dir)
            .map_err(|e| ioerr("list tmp", &tmp_dir, e))?;
        for name in temps {
            let rel = format!("tmp/{name}");
            if self.quarantine_file(&tmp_dir.join(&name), "stale temp file") {
                report.quarantined.push(Quarantined {
                    rel_path: rel,
                    reason: "stale temp file".to_string(),
                });
            } else {
                report.skipped.push(Quarantined {
                    rel_path: rel,
                    reason: "stale temp file (quarantine move failed)".to_string(),
                });
            }
        }
        Ok(report)
    }

    // ---- gc ------------------------------------------------------------

    /// Evicts least-recently-used entries until total entry bytes fit
    /// under `cap_bytes`. The most recently touched entry is never
    /// evicted, even when it alone exceeds the cap. This is the store's
    /// only deletion path.
    pub fn gc(&self, cap_bytes: u64) -> Result<GcReport, StoreError> {
        let touches = self.read_touches();
        let seq_of = |name: &str| -> u64 {
            touches
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| *s)
                .unwrap_or(0) // never touched: oldest possible
        };

        // Inventory every entry with its size and last-touch sequence.
        let mut entries: Vec<(u64, String, PathBuf, u64)> = Vec::new(); // (seq, name, path, len)
        for kind in [EntryKind::Snapshot, EntryKind::Result] {
            let dir = self.objects_dir(kind);
            let names = self
                .fs
                .list(&dir)
                .map_err(|e| ioerr("list objects", &dir, e))?;
            for name in names {
                let path = dir.join(&name);
                let len = match self.fs.file_len(&path) {
                    Ok(Some(len)) => len,
                    Ok(None) => continue,
                    Err(e) => return Err(ioerr("stat", &path, e)),
                };
                let logical = format!("{}/{name}", kind.dir_name());
                entries.push((seq_of(&logical), logical, path, len));
            }
        }

        let mut report = GcReport {
            before_bytes: entries.iter().map(|(_, _, _, l)| l).sum(),
            ..GcReport::default()
        };
        report.after_bytes = report.before_bytes;

        // Oldest first; name breaks ties so the order is deterministic.
        entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));

        // The newest entry survives unconditionally.
        let protect = entries.len().saturating_sub(1);
        for (i, (_seq, name, path, len)) in entries.iter().enumerate() {
            if report.after_bytes <= cap_bytes || i >= protect {
                break;
            }
            match self.fs.remove_file(path) {
                Ok(()) => {
                    report.after_bytes -= len;
                    report.evicted.push(name.clone());
                }
                Err(_) => report.failed += 1,
            }
        }
        Ok(report)
    }

    // ---- stats ---------------------------------------------------------

    /// Takes inventory: entry counts and bytes, quarantine and temp
    /// backlog, plus this handle's hit/miss counters.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let mut s = StoreStats::default();
        for kind in [EntryKind::Snapshot, EntryKind::Result] {
            let dir = self.objects_dir(kind);
            let names = self
                .fs
                .list(&dir)
                .map_err(|e| ioerr("list objects", &dir, e))?;
            for name in &names {
                if let Ok(Some(len)) = self.fs.file_len(&dir.join(name)) {
                    s.entry_bytes += len;
                }
            }
            match kind {
                EntryKind::Snapshot => s.snapshots = names.len() as u64,
                EntryKind::Result => s.results = names.len() as u64,
            }
        }
        let qdir = self.root.join("quarantine");
        s.quarantined = self
            .fs
            .list(&qdir)
            .map_err(|e| ioerr("list quarantine", &qdir, e))?
            .len() as u64;
        let tdir = self.root.join("tmp");
        s.stale_temps = self
            .fs
            .list(&tdir)
            .map_err(|e| ioerr("list tmp", &tdir, e))?
            .len() as u64;
        let c = self.counters.lock().expect("store counters");
        s.hits = c.hits;
        s.misses = c.misses;
        Ok(s)
    }
}

/// Writes `bytes` to `path` with the store's crash-safe discipline:
/// write to a sibling temp file, fsync, atomically rename onto `path`,
/// fsync the parent directory. Readers see either the old contents or
/// the complete new contents — never a torn file.
///
/// This is the workspace-wide replacement for bare `fs::write` on
/// reports and benchmark outputs.
pub fn write_file_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let fs = RealFs;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs.create_dir_all(dir)?;
    }
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp-{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    if let Err(e) = fs.write_sync(&tmp, bytes) {
        let _ = fs.remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs.rename(&tmp, path) {
        let _ = fs.remove_file(&tmp);
        return Err(e);
    }
    if let Some(dir) = dir {
        fs.sync_dir(dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsio::scratch_dir;

    fn snap_key(cycle: u64) -> SnapKey {
        SnapKey {
            config_hash: 0x1111_2222_3333_4444,
            kernel_hash: 0xAAAA_BBBB_CCCC_DDDD,
            design: "C.E.MC".to_string(),
            cycle,
        }
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = scratch_dir("rt");
        let store = Store::open(&dir).unwrap();
        let key = snap_key(10_000);
        let payload = vec![0x5A; 4096];
        assert_eq!(store.get_snapshot(&key).unwrap(), None);
        store.put_snapshot(&key, &payload).unwrap();
        assert_eq!(store.get_snapshot(&key).unwrap(), Some(payload));
        assert_eq!(store.hit_count(), 1);
        assert_eq!(store.miss_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_round_trip_and_reopen() {
        let dir = scratch_dir("rt-res");
        {
            let store = Store::open(&dir).unwrap();
            store
                .put_result(42, "cell CONS/Base", b"summary-bytes")
                .unwrap();
        }
        // A fresh handle — the cross-process warm-start path.
        let store = Store::open(&dir).unwrap();
        assert_eq!(
            store.get_result(42).unwrap(),
            Some(b"summary-bytes".to_vec())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let a = snap_key(1).hash();
        let b = snap_key(2).hash();
        let mut c_key = snap_key(1);
        c_key.design = "Base".to_string();
        assert_ne!(a, b);
        assert_ne!(a, c_key.hash());
    }

    #[test]
    fn corrupt_entry_reads_as_miss_and_quarantines() {
        let dir = scratch_dir("corrupt");
        let store = Store::open(&dir).unwrap();
        let key = snap_key(77);
        store.put_snapshot(&key, b"precious machine state").unwrap();

        // Flip one byte in the middle of the entry file.
        let path = dir
            .join("objects")
            .join("sn")
            .join(format!("{:016x}.entry", key.hash()));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        assert_eq!(store.get_snapshot(&key).unwrap(), None, "corrupt = miss");
        assert!(!path.exists(), "corrupt entry moved out of objects/");
        let stats = store.stats().unwrap();
        assert_eq!(stats.quarantined, 1, "bytes preserved in quarantine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_renamed_to_wrong_key_is_caught() {
        let dir = scratch_dir("wrongkey");
        let store = Store::open(&dir).unwrap();
        let key = snap_key(1);
        store.put_snapshot(&key, b"payload").unwrap();
        // A valid entry, filed under a different key's name.
        let src = store.entry_path(EntryKind::Snapshot, key.hash());
        let other = snap_key(2);
        let dst = store.entry_path(EntryKind::Snapshot, other.hash());
        std::fs::rename(&src, &dst).unwrap();
        assert_eq!(store.get_snapshot(&other).unwrap(), None);
        assert_eq!(store.stats().unwrap().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_quarantines_corrupt_and_stale_temps_without_data_loss() {
        let dir = scratch_dir("scrub");
        let store = Store::open(&dir).unwrap();
        let good = snap_key(1);
        let bad = snap_key(2);
        store.put_snapshot(&good, b"good payload").unwrap();
        store.put_snapshot(&bad, b"soon to be torn").unwrap();
        store.put_result(7, "cell", b"result payload").unwrap();

        // Tear the bad entry (truncate) and plant a stale temp.
        let bad_path = store.entry_path(EntryKind::Snapshot, bad.hash());
        let full = std::fs::read(&bad_path).unwrap();
        std::fs::write(&bad_path, &full[..full.len() / 2]).unwrap();
        std::fs::write(dir.join("tmp").join("sn-dead.tmp"), b"partial").unwrap();

        let report = store.scrub().unwrap();
        assert_eq!(report.ok, 2, "good snapshot + result verify");
        assert_eq!(report.quarantined.len(), 2, "torn entry + stale temp");
        assert!(report.skipped.is_empty());
        assert!(!report.is_clean());

        // No data loss: both quarantined files still exist with their bytes.
        let qdir = dir.join("quarantine");
        let qfiles: Vec<_> = std::fs::read_dir(&qdir).unwrap().collect();
        assert_eq!(qfiles.len(), 2);

        // The good entries still serve.
        assert_eq!(
            store.get_snapshot(&good).unwrap(),
            Some(b"good payload".to_vec())
        );
        assert_eq!(
            store.get_result(7).unwrap(),
            Some(b"result payload".to_vec())
        );

        // A second scrub is clean.
        let again = store.scrub().unwrap();
        assert!(again.is_clean());
        assert_eq!(again.ok, 2);

        // JSON report renders.
        let json = report.to_json();
        assert!(json.contains("\"quarantined\""));
        assert!(json.contains("stale temp file"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_lru_first_and_protects_newest() {
        let dir = scratch_dir("gc");
        let store = Store::open(&dir).unwrap();
        let payload = vec![1u8; 1000];
        let keys: Vec<SnapKey> = (0..4).map(snap_key).collect();
        for k in &keys {
            store.put_snapshot(k, &payload).unwrap();
        }
        // Touch key 0 again: it becomes the most recent.
        assert!(store.get_snapshot(&keys[0]).unwrap().is_some());

        let entry_len = std::fs::metadata(store.entry_path(EntryKind::Snapshot, keys[0].hash()))
            .unwrap()
            .len();

        // Cap fits two entries: evict the two oldest (keys 1 and 2).
        let report = store.gc(2 * entry_len).unwrap();
        assert_eq!(report.evicted.len(), 2);
        assert_eq!(report.failed, 0);
        assert!(store.get_snapshot(&keys[1]).unwrap().is_none());
        assert!(store.get_snapshot(&keys[2]).unwrap().is_none());
        assert!(
            store.get_snapshot(&keys[0]).unwrap().is_some(),
            "MRU survives"
        );
        assert!(store.get_snapshot(&keys[3]).unwrap().is_some());

        // Cap of zero still protects the newest entry.
        let report = store.gc(0).unwrap();
        assert!(report.after_bytes > 0, "newest entry never evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_order_survives_reopen() {
        let dir = scratch_dir("gc-reopen");
        let payload = vec![2u8; 500];
        let keys: Vec<SnapKey> = (0..3).map(snap_key).collect();
        {
            let store = Store::open(&dir).unwrap();
            for k in &keys {
                store.put_snapshot(k, &payload).unwrap();
            }
            assert!(store.get_snapshot(&keys[0]).unwrap().is_some());
        }
        // Fresh handle must see the same LRU order from the touch log.
        let store = Store::open(&dir).unwrap();
        let entry_len = std::fs::metadata(store.entry_path(EntryKind::Snapshot, keys[0].hash()))
            .unwrap()
            .len();
        let report = store.gc(2 * entry_len).unwrap();
        assert_eq!(report.evicted.len(), 1);
        assert!(
            store.get_snapshot(&keys[1]).unwrap().is_none(),
            "LRU evicted"
        );
        assert!(store.get_snapshot(&keys[0]).unwrap().is_some());
        assert!(store.get_snapshot(&keys[2]).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lru_log_lines_are_skipped() {
        let dir = scratch_dir("lru-torn");
        let store = Store::open(&dir).unwrap();
        store.put_snapshot(&snap_key(1), b"x").unwrap();
        // Append garbage and a torn prefix of a valid-looking line.
        let log = dir.join(LRU_LOG);
        let mut bytes = std::fs::read(&log).unwrap();
        bytes.extend_from_slice(b"touch sn 00000000000000ff 00000000000000");
        std::fs::write(&log, &bytes).unwrap();
        // Reopen replays the log without error; the valid touch survives.
        let store = Store::open(&dir).unwrap();
        let touches = store.read_touches();
        assert_eq!(touches.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_file_atomic_round_trips_and_replaces() {
        let dir = scratch_dir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_file_atomic(&path, b"{\"v\": 1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\": 1}");
        write_file_atomic(&path, b"{\"v\": 2}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\": 2}");
        // No temp residue.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name() != "report.json")
            .collect();
        assert!(leftovers.is_empty(), "no temp files left: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_under_forced_torn_write_is_typed_and_recoverable() {
        let dir = scratch_dir("torn-put");
        let fs = FaultFs::new(
            11,
            FaultRates {
                torn_write: 1.0,
                ..FaultRates::none()
            },
        );
        let store = Store::open_with_fs(&dir, Box::new(fs)).unwrap();
        let key = snap_key(5);
        let err = store.put_snapshot(&key, &vec![9u8; 2048]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::Io {
                op: "write temp",
                ..
            }
        ));
        // The failed put never becomes visible at the final name.
        let clean = Store::open(&dir).unwrap();
        assert_eq!(clean.get_snapshot(&key).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
