//! The filesystem seam under the store: a small trait over exactly the
//! operations the store performs, a passthrough [`RealFs`], and a seeded
//! deterministic [`FaultFs`] that injects the disk-misbehaviour classes a
//! durable store must survive — torn writes, short reads, `ENOSPC`,
//! failed renames, and failed cleanups that leave stale temp files.
//!
//! The injection model mirrors `caba_sim::fault`: every fault decision is
//! drawn from one [`Rng64`] stream derived from a single seed, so a given
//! seed produces a bit-identical fault schedule on any host. The chaos
//! test matrix sweeps seeds and asserts that **every** schedule either
//! round-trips cleanly or surfaces a typed error — never a panic, never a
//! corrupt entry decoded.
//!
//! Fault semantics (what a real kernel/disk can do to you):
//!
//! * **torn write** — a prefix of the bytes reaches the file, then the
//!   write errors (power cut mid-`write(2)`);
//! * **short read** — `read` *silently* returns a prefix of the file, so
//!   the caller's only defence is the checksum-before-decode contract;
//! * **ENOSPC** — the write fails with `StorageFull`, possibly after a
//!   partial write;
//! * **failed rename** — the atomic commit itself errors, leaving the
//!   temp file behind;
//! * **failed cleanup** — removing a temp file errors, modelling a crash
//!   between write and unlink: the stale temp stays for `scrub` to sweep.

use caba_stats::Rng64;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The filesystem operations the store performs. Durability-relevant
/// calls (`write_sync`, `append_sync`, `sync_dir`) fold the fsync into
/// the operation so an implementation cannot forget it.
pub trait StoreFs: Send + Sync {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates/truncates `path`, writes all bytes, and fsyncs the file.
    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path` (creating it if absent) and fsyncs.
    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` onto `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsyncs a directory, making previously renamed entries durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// The file names (not paths) in `dir`, **sorted** for determinism.
    /// An absent directory lists as empty.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// The file's length in bytes, or `None` when it does not exist.
    fn file_len(&self, path: &Path) -> io::Result<Option<u64>>;
}

/// Straight passthrough to `std::fs` with the fsync discipline applied.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl StoreFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is a Unix concept; elsewhere the rename itself
        // is the best available commit point.
        #[cfg(unix)]
        {
            std::fs::File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let rd = match std::fs::read_dir(dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut names = Vec::new();
        for entry in rd {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        match std::fs::metadata(path) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Per-opportunity fault probabilities in `[0, 1]`, one per fault class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// A `write_sync`/`append_sync` lands only a prefix, then errors.
    pub torn_write: f64,
    /// A `read` silently returns a prefix of the file.
    pub short_read: f64,
    /// A `write_sync`/`append_sync` fails with `StorageFull` (possibly
    /// after a partial write).
    pub enospc: f64,
    /// A `rename` errors, leaving the source file behind.
    pub rename_fail: f64,
    /// A `remove_file` errors, leaving a stale temp file behind.
    pub cleanup_fail: f64,
}

impl FaultRates {
    /// No injection.
    pub fn none() -> Self {
        FaultRates {
            torn_write: 0.0,
            short_read: 0.0,
            enospc: 0.0,
            rename_fail: 0.0,
            cleanup_fail: 0.0,
        }
    }

    /// Every fault class at the same `rate` — the chaos-matrix default.
    pub fn uniform(rate: f64) -> Self {
        FaultRates {
            torn_write: rate,
            short_read: rate,
            enospc: rate,
            rename_fail: rate,
            cleanup_fail: rate,
        }
    }
}

/// How many times each fault class actually fired — the chaos tests use
/// this to prove the schedule exercised every class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Short reads injected.
    pub short_reads: u64,
    /// `StorageFull` failures injected.
    pub enospc: u64,
    /// Failed renames injected.
    pub rename_fails: u64,
    /// Failed cleanups injected.
    pub cleanup_fails: u64,
}

impl FaultCounts {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.torn_writes + self.short_reads + self.enospc + self.rename_fails + self.cleanup_fails
    }
}

struct FaultState {
    rng: Rng64,
}

/// Dedicated RNG stream id for filesystem fault injection (disjoint from
/// the simulator's component streams in `caba_sim::fault::stream`).
const FS_STREAM: u64 = 0xF5;

/// A [`StoreFs`] wrapper injecting deterministic, seeded I/O faults into
/// an inner filesystem (by default [`RealFs`]).
///
/// Decisions are drawn in call order from a single stream, so a
/// single-threaded operation sequence under a given seed is bit-identical
/// across runs and hosts.
pub struct FaultFs {
    inner: Box<dyn StoreFs>,
    rates: FaultRates,
    state: Mutex<FaultState>,
    counts: Arc<Mutex<FaultCounts>>,
}

impl FaultFs {
    /// Injects into the real filesystem.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        Self::over(Box::new(RealFs), seed, rates)
    }

    /// Injects into an arbitrary inner filesystem.
    pub fn over(inner: Box<dyn StoreFs>, seed: u64, rates: FaultRates) -> Self {
        FaultFs {
            inner,
            rates,
            state: Mutex::new(FaultState {
                rng: Rng64::for_stream(seed, FS_STREAM),
            }),
            counts: Arc::new(Mutex::new(FaultCounts::default())),
        }
    }

    /// A live handle onto the injection counters, readable after the
    /// `FaultFs` itself has been boxed into a store.
    pub fn counts_handle(&self) -> Arc<Mutex<FaultCounts>> {
        Arc::clone(&self.counts)
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        *self.counts.lock().expect("fault counts lock")
    }

    fn injected(err: &'static str) -> io::Error {
        io::Error::other(format!("injected fault: {err}"))
    }

    /// Draws the fault decision for a write-shaped op: `Some((prefix_len,
    /// error))` when a fault fires.
    fn write_fault(&self, len: usize) -> Option<(usize, io::Error)> {
        let mut st = self.state.lock().expect("fault state lock");
        if st.rng.chance(self.rates.torn_write) {
            let keep = st.rng.range_u64(len as u64 + 1) as usize;
            drop(st);
            self.count(|c| c.torn_writes += 1);
            return Some((keep, Self::injected("torn write")));
        }
        if st.rng.chance(self.rates.enospc) {
            let keep = st.rng.range_u64(len as u64 + 1) as usize;
            drop(st);
            self.count(|c| c.enospc += 1);
            return Some((
                keep,
                io::Error::new(io::ErrorKind::StorageFull, "injected fault: ENOSPC"),
            ));
        }
        None
    }

    fn count(&self, f: impl FnOnce(&mut FaultCounts)) {
        f(&mut self.counts.lock().expect("fault counts lock"));
    }

    fn chance(&self, p: f64, count: impl FnOnce(&mut FaultCounts)) -> bool {
        let fired = self.state.lock().expect("fault state lock").rng.chance(p);
        if fired {
            self.count(count);
        }
        fired
    }
}

impl StoreFs for FaultFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(path)?;
        // A short read is SILENT: the caller sees a prefix and must catch
        // it via the checksum-before-decode contract.
        if !bytes.is_empty() && self.chance(self.rates.short_read, |c| c.short_reads += 1) {
            let keep = {
                let mut st = self.state.lock().expect("fault state lock");
                st.rng.range_u64(bytes.len() as u64) as usize
            };
            bytes.truncate(keep);
        }
        Ok(bytes)
    }

    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Some((keep, err)) = self.write_fault(bytes.len()) {
            // Land the prefix so the torn file is observable on disk.
            let _ = self.inner.write_sync(path, &bytes[..keep]);
            return Err(err);
        }
        self.inner.write_sync(path, bytes)
    }

    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Some((keep, err)) = self.write_fault(bytes.len()) {
            let _ = self.inner.append_sync(path, &bytes[..keep]);
            return Err(err);
        }
        self.inner.append_sync(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.chance(self.rates.rename_fail, |c| c.rename_fails += 1) {
            return Err(Self::injected("rename failed"));
        }
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.chance(self.rates.cleanup_fail, |c| c.cleanup_fails += 1) {
            return Err(Self::injected("cleanup failed"));
        }
        self.inner.remove_file(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        self.inner.file_len(path)
    }
}

/// A unique scratch directory under the system temp dir (test support).
pub fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    std::env::temp_dir().join(format!("caba-store-{tag}-{pid}-{n}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let dir = scratch_dir("fsio-det");
        RealFs.create_dir_all(&dir).unwrap();
        let run = |seed: u64| -> (Vec<bool>, FaultCounts) {
            let fs = FaultFs::new(seed, FaultRates::uniform(0.3));
            let mut oks = Vec::new();
            let p = dir.join(format!("det-{seed}.bin"));
            for i in 0..100u64 {
                let payload = i.to_le_bytes();
                oks.push(fs.write_sync(&p, &payload).is_ok());
                oks.push(fs.read(&p).is_ok());
                oks.push(fs.rename(&p, &p).is_ok());
            }
            (oks, fs.counts())
        };
        let (a, ca) = run(7);
        let (b, cb) = run(7);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(ca, cb);
        assert!(ca.total() > 0, "30% rates must fire in 300 ops");
        let (c, _) = run(8);
        assert_ne!(a, c, "different seed, different schedule");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_lands_a_prefix() {
        let dir = scratch_dir("fsio-torn");
        RealFs.create_dir_all(&dir).unwrap();
        let fs = FaultFs::new(
            1,
            FaultRates {
                torn_write: 1.0,
                ..FaultRates::none()
            },
        );
        let p = dir.join("torn.bin");
        let payload = vec![0xAB; 256];
        let err = fs.write_sync(&p, &payload).unwrap_err();
        assert!(err.to_string().contains("torn write"));
        let on_disk = RealFs.read(&p).unwrap();
        assert!(on_disk.len() < payload.len(), "a strict prefix landed");
        assert_eq!(&payload[..on_disk.len()], &on_disk[..]);
        assert_eq!(fs.counts().torn_writes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_read_is_silent() {
        let dir = scratch_dir("fsio-short");
        RealFs.create_dir_all(&dir).unwrap();
        let p = dir.join("short.bin");
        RealFs.write_sync(&p, &[7u8; 100]).unwrap();
        let fs = FaultFs::new(
            2,
            FaultRates {
                short_read: 1.0,
                ..FaultRates::none()
            },
        );
        let got = fs.read(&p).expect("short read returns Ok");
        assert!(got.len() < 100, "prefix only");
        assert!(got.iter().all(|&b| b == 7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_rename_leaves_the_source() {
        let dir = scratch_dir("fsio-rename");
        RealFs.create_dir_all(&dir).unwrap();
        let from = dir.join("a.tmp");
        let to = dir.join("a.entry");
        RealFs.write_sync(&from, b"x").unwrap();
        let fs = FaultFs::new(
            3,
            FaultRates {
                rename_fail: 1.0,
                ..FaultRates::none()
            },
        );
        assert!(fs.rename(&from, &to).is_err());
        assert_eq!(RealFs.file_len(&from).unwrap(), Some(1), "source intact");
        assert_eq!(RealFs.file_len(&to).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
