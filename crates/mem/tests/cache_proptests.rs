//! Property tests on the cache: under arbitrary access/fill sequences the
//! set invariants hold — tag budget, byte budget, and no duplicate tags —
//! in both conventional and compressed (tag-multiplied) modes. Driven by
//! the in-repo deterministic property harness (`caba_stats::prop`).

use caba_mem::{Cache, CacheGeometry, Mshr, LINE_SIZE};
use caba_stats::prop;
use caba_stats::Rng64;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Step {
    Access(u64, bool),
    Fill(u64, bool, usize),
    Invalidate(u64),
}

fn random_step(rng: &mut Rng64) -> Step {
    let addr = rng.range_u64(64) * 128;
    match rng.range_u64(3) {
        0 => Step::Access(addr, rng.chance(0.5)),
        1 => Step::Fill(
            addr,
            rng.chance(0.5),
            1 + rng.range_u64(LINE_SIZE as u64) as usize,
        ),
        _ => Step::Invalidate(addr),
    }
}

#[test]
fn cache_invariants_hold() {
    prop::check(0xCACE, 128, |rng| {
        let tag_factor = 1 + rng.range_u64(4) as usize;
        let nsteps = 1 + rng.range_u64(199) as usize;
        let geo = CacheGeometry::new(1024, 2, LINE_SIZE).with_tag_factor(tag_factor);
        let mut c = Cache::new(geo);
        let mut resident: HashSet<u64> = HashSet::new();
        for _ in 0..nsteps {
            match random_step(rng) {
                Step::Access(a, d) => {
                    let hit = c.access(a, d) == caba_mem::AccessOutcome::Hit;
                    assert_eq!(hit, resident.contains(&caba_mem::line_base(a)));
                }
                Step::Fill(a, d, s) => {
                    let evicted = c.fill(a, d, s);
                    resident.insert(caba_mem::line_base(a));
                    for e in evicted {
                        assert!(
                            resident.remove(&e.addr),
                            "evicted non-resident {:#x}",
                            e.addr
                        );
                    }
                }
                Step::Invalidate(a) => {
                    let was = c.invalidate(a).is_some();
                    assert_eq!(was, resident.remove(&caba_mem::line_base(a)));
                }
            }
            // Tag budget: never more lines than tags across the cache.
            assert!(
                c.resident_lines() <= geo.sets() * geo.tags_per_set(),
                "resident {} exceeds tag budget",
                c.resident_lines()
            );
            assert_eq!(c.resident_lines(), resident.len());
        }
    });
}

#[test]
fn mshr_waiters_never_lost() {
    prop::check(0x358A, 128, |rng| {
        let nallocs = 1 + rng.range_u64(99) as usize;
        let mut m: Mshr<u32> = Mshr::new(4);
        let mut expected: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        for _ in 0..nallocs {
            let addr = rng.range_u64(16) * 128;
            let w = rng.range_u64(1000) as u32;
            match m.allocate(addr, w) {
                Ok(_) => expected.entry(addr).or_default().push(w),
                Err(back) => assert_eq!(back, w),
            }
        }
        assert!(m.outstanding() <= 4);
        // The audit iterator sees exactly the outstanding lines.
        let seen: HashSet<u64> = m.iter().map(|(a, _)| a).collect();
        let want: HashSet<u64> = expected.keys().copied().collect();
        assert_eq!(seen, want);
        for (addr, ws) in expected {
            let mut got = m.complete(addr);
            got.sort_unstable();
            let mut want = ws.clone();
            want.sort_unstable();
            assert_eq!(got, want);
        }
        assert_eq!(m.outstanding(), 0);
    });
}
