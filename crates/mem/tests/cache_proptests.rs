//! Property tests on the cache: under arbitrary access/fill sequences the
//! set invariants hold — tag budget, byte budget, and no duplicate tags —
//! in both conventional and compressed (tag-multiplied) modes.

use caba_mem::{Cache, CacheGeometry, Mshr, LINE_SIZE};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Step {
    Access(u64, bool),
    Fill(u64, bool, usize),
    Invalidate(u64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let addr = 0u64..64; // line indices; multiplied to addresses below
    prop_oneof![
        (addr.clone(), any::<bool>()).prop_map(|(a, d)| Step::Access(a * 128, d)),
        (addr.clone(), any::<bool>(), 1usize..=LINE_SIZE)
            .prop_map(|(a, d, s)| Step::Fill(a * 128, d, s)),
        addr.prop_map(|a| Step::Invalidate(a * 128)),
    ]
}

proptest! {
    #[test]
    fn cache_invariants_hold(
        tag_factor in 1usize..=4,
        steps in proptest::collection::vec(step_strategy(), 1..200),
    ) {
        let geo = CacheGeometry::new(1024, 2, LINE_SIZE).with_tag_factor(tag_factor);
        let mut c = Cache::new(geo);
        let mut resident: HashSet<u64> = HashSet::new();
        for step in steps {
            match step {
                Step::Access(a, d) => {
                    let hit = c.access(a, d) == caba_mem::AccessOutcome::Hit;
                    prop_assert_eq!(hit, resident.contains(&caba_mem::line_base(a)));
                }
                Step::Fill(a, d, s) => {
                    let evicted = c.fill(a, d, s);
                    resident.insert(caba_mem::line_base(a));
                    for e in evicted {
                        prop_assert!(resident.remove(&e.addr), "evicted non-resident {:#x}", e.addr);
                    }
                }
                Step::Invalidate(a) => {
                    let was = c.invalidate(a).is_some();
                    prop_assert_eq!(was, resident.remove(&caba_mem::line_base(a)));
                }
            }
            // Tag budget: never more lines than tags across the cache.
            prop_assert!(
                c.resident_lines() <= geo.sets() * geo.tags_per_set(),
                "resident {} exceeds tag budget",
                c.resident_lines()
            );
            prop_assert_eq!(c.resident_lines(), resident.len());
        }
    }

    #[test]
    fn mshr_waiters_never_lost(
        allocs in proptest::collection::vec((0u64..16, 0u32..1000), 1..100),
    ) {
        let mut m: Mshr<u32> = Mshr::new(4);
        let mut expected: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        let mut rejected = 0usize;
        for (line, w) in allocs {
            let addr = line * 128;
            match m.allocate(addr, w) {
                Ok(_) => expected.entry(addr).or_default().push(w),
                Err(back) => {
                    prop_assert_eq!(back, w);
                    rejected += 1;
                }
            }
        }
        prop_assert!(m.outstanding() <= 4);
        let mut drained = 0usize;
        for (addr, ws) in expected {
            let mut got = m.complete(addr);
            got.sort_unstable();
            let mut want = ws.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
            drained += 1;
        }
        prop_assert_eq!(m.outstanding(), 0);
        let _ = (drained, rejected);
    }
}
