//! Deferred-visibility overlays for the barrier-phased parallel engine.
//!
//! When the cycle loop shards SMs across workers, every SM in cycle *t* must
//! observe the same shared state: the start-of-cycle snapshot **plus its own
//! writes** (assist-warp controllers read back lines they stored in the same
//! cycle), and nothing from its neighbours. The overlay types here give each
//! worker that view without copying the multi-megabyte functional memory:
//!
//! * [`MemDelta`] — a per-SM write set over [`FuncMem`]: a line-granular
//!   shadow for read-your-own-writes plus an ordered op log that the
//!   coordinator replays into the real memory at the cycle barrier, in SM
//!   index order. Replaying *ops* (not shadow lines) means two SMs writing
//!   different bytes of the same line both land, in deterministic order.
//! * [`SharedMem`] — the read/write facade the execution engine uses:
//!   `Direct` (serial phases, unit tests), `Frozen` (read-only snapshot for
//!   the partition phase) or `Overlay` (SM phase).
//! * [`CmapDelta`] / [`SharedCmap`] — same idea for the [`CompressionMap`].
//!   The map is pure memoization (entries are recomputed lazily from line
//!   bytes), so the commit rule is simple: replay each SM's invalidate/cache
//!   ops in order, then blanket-invalidate every line written this cycle.
//!
//! The engine uses the overlay view for **every** `intra_jobs` setting,
//! including 1, so `RunStats` are bit-identical across worker counts by
//! construction rather than by a racy argument.

use crate::func::{CompressionMap, FuncMem, LineCompressor};
use crate::{line_base, LINE_SIZE};
use caba_compress::CompressedLine;
use caba_stats::FxHashMap;

/// One logged write against the functional memory.
#[derive(Debug, Clone)]
enum MemOp {
    /// `write_le(addr, n, val)` — covers all scalar widths.
    Le { addr: u64, n: u8, val: u64 },
    /// `load_image(addr, bytes)` — bulk copies (assist-warp payload moves).
    Image { addr: u64, bytes: Vec<u8> },
}

/// A per-SM, per-cycle write set over a frozen [`FuncMem`] snapshot.
#[derive(Debug, Default)]
pub struct MemDelta {
    // Line-granular shadow: snapshot bytes patched with this SM's writes.
    // FxHash: consulted on the load path only while non-empty; never iterated.
    shadow: FxHashMap<u64, [u8; LINE_SIZE]>,
    log: Vec<MemOp>,
}

impl MemDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no write has been logged this cycle.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    fn shadow_line<'a>(
        shadow: &'a mut FxHashMap<u64, [u8; LINE_SIZE]>,
        base: &FuncMem,
        line: u64,
    ) -> &'a mut [u8; LINE_SIZE] {
        shadow.entry(line).or_insert_with(|| {
            let mut buf = [0u8; LINE_SIZE];
            base.read_line_into(line, &mut buf);
            buf
        })
    }

    fn read_u8(&self, base: &FuncMem, addr: u64) -> u8 {
        if self.shadow.is_empty() {
            return base.read_u8(addr);
        }
        match self.shadow.get(&line_base(addr)) {
            Some(l) => l[(addr - line_base(addr)) as usize],
            None => base.read_u8(addr),
        }
    }

    /// Replays the logged writes into `mem` and clears the delta. When
    /// `dirty` is given, the base address of every written line is appended
    /// (the engine blanket-invalidates those in the compression map).
    pub fn commit(&mut self, mem: &mut FuncMem, mut dirty: Option<&mut Vec<u64>>) {
        for op in self.log.drain(..) {
            match op {
                MemOp::Le { addr, n, val } => {
                    mem.write_le(addr, n as usize, val);
                    if let Some(d) = dirty.as_deref_mut() {
                        d.push(line_base(addr));
                        d.push(line_base(addr + n as u64 - 1));
                    }
                }
                MemOp::Image { addr, bytes } => {
                    if let Some(d) = dirty.as_deref_mut() {
                        let mut l = line_base(addr);
                        let end = addr + bytes.len() as u64;
                        while l < end {
                            d.push(l);
                            l += LINE_SIZE as u64;
                        }
                    }
                    mem.load_image(addr, &bytes);
                }
            }
        }
        self.shadow.clear();
    }
}

/// A view of the functional memory, parameterized by execution phase.
#[derive(Debug)]
pub enum SharedMem<'a> {
    /// Exclusive access (serial phases, unit tests): reads and writes go
    /// straight to the underlying memory.
    Direct(&'a mut FuncMem),
    /// Shared read-only snapshot (partition phase). Writes panic.
    Frozen(&'a FuncMem),
    /// Start-of-cycle snapshot plus this SM's own writes (SM phase).
    Overlay {
        /// The frozen start-of-cycle memory.
        base: &'a FuncMem,
        /// This SM's private write set.
        delta: &'a mut MemDelta,
    },
}

impl SharedMem<'_> {
    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self {
            SharedMem::Direct(m) => m.read_u8(addr),
            SharedMem::Frozen(m) => m.read_u8(addr),
            SharedMem::Overlay { base, delta } => delta.read_u8(base, addr),
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.write_le(addr, 1, v as u64);
    }

    /// Reads `n` (≤ 8) bytes little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn read_le(&self, addr: u64, n: usize) -> u64 {
        match self {
            SharedMem::Direct(m) => m.read_le(addr, n),
            SharedMem::Frozen(m) => m.read_le(addr, n),
            SharedMem::Overlay { base, delta } => {
                assert!(n <= 8, "read width {n} exceeds 8 bytes");
                if delta.shadow.is_empty() {
                    return base.read_le(addr, n);
                }
                let mut v = 0u64;
                for i in 0..n {
                    v |= (delta.read_u8(base, addr + i as u64) as u64) << (8 * i);
                }
                v
            }
        }
    }

    /// Writes the low `n` (≤ 8) bytes of `v` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`, or on a [`SharedMem::Frozen`] view.
    pub fn write_le(&mut self, addr: u64, n: usize, v: u64) {
        assert!(n <= 8, "write width {n} exceeds 8 bytes");
        match self {
            SharedMem::Direct(m) => m.write_le(addr, n, v),
            SharedMem::Frozen(_) => panic!("write through a frozen memory view"),
            SharedMem::Overlay { base, delta } => {
                // One shadow-line lookup per touched line (a ≤8-byte write
                // touches at most two), not one per byte.
                let mut i = 0;
                while i < n {
                    let a = addr + i as u64;
                    let lb = line_base(a);
                    let line = MemDelta::shadow_line(&mut delta.shadow, base, lb);
                    let off = (a - lb) as usize;
                    let run = (LINE_SIZE - off).min(n - i);
                    for j in 0..run {
                        line[off + j] = (v >> (8 * (i + j))) as u8;
                    }
                    i += run;
                }
                delta.log.push(MemOp::Le {
                    addr,
                    n: n as u8,
                    val: v,
                });
            }
        }
    }

    /// Reads a 64-bit value.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a 64-bit value.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_le(addr, 8, v)
    }

    /// Reads a 32-bit value.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Writes a 32-bit value.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_le(addr, 4, v as u64)
    }

    /// Copies a byte slice into memory ("cudaMemcpy host→device").
    ///
    /// # Panics
    ///
    /// Panics on a [`SharedMem::Frozen`] view.
    pub fn load_image(&mut self, addr: u64, bytes: &[u8]) {
        match self {
            SharedMem::Direct(m) => m.load_image(addr, bytes),
            SharedMem::Frozen(_) => panic!("write through a frozen memory view"),
            SharedMem::Overlay { base, delta } => {
                // Copy line-sized runs into the shadow, one lookup per line.
                let mut i = 0;
                while i < bytes.len() {
                    let a = addr + i as u64;
                    let lb = line_base(a);
                    let line = MemDelta::shadow_line(&mut delta.shadow, base, lb);
                    let off = (a - lb) as usize;
                    let run = (LINE_SIZE - off).min(bytes.len() - i);
                    line[off..off + run].copy_from_slice(&bytes[i..i + run]);
                    i += run;
                }
                delta.log.push(MemOp::Image {
                    addr,
                    bytes: bytes.to_vec(),
                });
            }
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        match self {
            SharedMem::Direct(m) => m.read_bytes(addr, len),
            SharedMem::Frozen(m) => m.read_bytes(addr, len),
            SharedMem::Overlay { base, delta } => {
                if delta.shadow.is_empty() {
                    return base.read_bytes(addr, len);
                }
                (0..len)
                    .map(|i| delta.read_u8(base, addr + i as u64))
                    .collect()
            }
        }
    }

    /// Reads the full cache line containing `addr`.
    pub fn read_line(&self, addr: u64) -> Vec<u8> {
        match self {
            SharedMem::Direct(m) => m.read_line(addr),
            SharedMem::Frozen(m) => m.read_line(addr),
            SharedMem::Overlay { base, delta } => {
                if delta.shadow.is_empty() {
                    return base.read_line(addr);
                }
                match delta.shadow.get(&line_base(addr)) {
                    Some(l) => l.to_vec(),
                    None => base.read_line(addr),
                }
            }
        }
    }

    /// Reads the full cache line containing `addr` without allocating.
    pub fn read_line_into(&self, addr: u64, out: &mut [u8; LINE_SIZE]) {
        match self {
            SharedMem::Direct(m) => m.read_line_into(addr, out),
            SharedMem::Frozen(m) => m.read_line_into(addr, out),
            SharedMem::Overlay { base, delta } => {
                if delta.shadow.is_empty() {
                    return base.read_line_into(addr, out);
                }
                match delta.shadow.get(&line_base(addr)) {
                    Some(l) => out.copy_from_slice(l),
                    None => base.read_line_into(addr, out),
                }
            }
        }
    }
}

/// One logged operation against the compression map.
#[derive(Debug, Clone)]
enum CmapOp {
    /// A store invalidated the cached form of this line base.
    Invalidate(u64),
    /// A lazy compute cached this form for this line base.
    Cache(u64, Option<CompressedLine>),
}

/// Local (per-view) knowledge about one line's cached form.
#[derive(Debug, Clone)]
enum CmapLocal {
    /// Invalidated this cycle; recompute on next query.
    Invalid,
    /// Computed this cycle from the view's bytes.
    Cached(Option<CompressedLine>),
}

/// A per-worker, per-cycle delta over a frozen [`CompressionMap`].
#[derive(Debug, Default)]
pub struct CmapDelta {
    // FxHash: per-cycle scratch, never iterated.
    local: FxHashMap<u64, CmapLocal>,
    log: Vec<CmapOp>,
}

impl CmapDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays the logged operations into `map` in order and clears the
    /// delta. The compression map is pure memoization, so replaying each
    /// worker's ops in worker-index order (then blanket-invalidating lines
    /// written this cycle) reproduces the serial map exactly.
    pub fn commit(&mut self, map: &mut CompressionMap) {
        for op in self.log.drain(..) {
            match op {
                CmapOp::Invalidate(b) => map.invalidate(b),
                CmapOp::Cache(b, c) => map.insert_cached(b, c),
            }
        }
        self.local.clear();
    }
}

/// A view of the compression map, parameterized by execution phase.
#[derive(Debug)]
pub enum SharedCmap<'a> {
    /// Exclusive access (serial phases, unit tests).
    Direct(&'a mut CompressionMap),
    /// Frozen start-of-cycle map plus this worker's private delta.
    Overlay {
        /// The frozen start-of-cycle map.
        base: &'a CompressionMap,
        /// This worker's private delta.
        delta: &'a mut CmapDelta,
    },
}

impl SharedCmap<'_> {
    /// The configured compressor choice.
    pub fn compressor(&self) -> LineCompressor {
        match self {
            SharedCmap::Direct(m) => m.compressor(),
            SharedCmap::Overlay { base, .. } => base.compressor(),
        }
    }

    /// Applies `f` to the compressed form of the line containing `addr`,
    /// computing and caching it (in the map or the delta) on first use.
    /// Returns `None` when the line is incompressible.
    fn with_compressed<R>(
        &mut self,
        mem: &SharedMem<'_>,
        addr: u64,
        f: impl FnOnce(&CompressedLine) -> R,
    ) -> Option<R> {
        let b = line_base(addr);
        match self {
            SharedCmap::Direct(map) => {
                if map.peek(b).is_none() {
                    let mut bytes = [0u8; LINE_SIZE];
                    mem.read_line_into(b, &mut bytes);
                    let c = map.compressor().compress_line(&bytes);
                    map.insert_cached(b, c);
                }
                map.peek(b).and_then(|o| o.as_ref()).map(f)
            }
            SharedCmap::Overlay { base, delta } => {
                if delta.local.is_empty() {
                    // Fast path: nothing local this cycle, consult the
                    // frozen base directly.
                    if let Some(o) = base.peek(b) {
                        return o.as_ref().map(f);
                    }
                } else {
                    match delta.local.get(&b) {
                        Some(CmapLocal::Cached(o)) => return o.as_ref().map(f),
                        Some(CmapLocal::Invalid) => {}
                        None => {
                            if let Some(o) = base.peek(b) {
                                return o.as_ref().map(f);
                            }
                        }
                    }
                }
                let mut bytes = [0u8; LINE_SIZE];
                mem.read_line_into(b, &mut bytes);
                let c = base.compressor().compress_line(&bytes);
                let r = c.as_ref().map(f);
                delta.log.push(CmapOp::Cache(b, c.clone()));
                delta.local.insert(b, CmapLocal::Cached(c));
                r
            }
        }
    }

    /// Compressed size in bytes of the line containing `addr`, or `None`
    /// when incompressible. Never clones the payload.
    pub fn compressed_size(&mut self, mem: &SharedMem<'_>, addr: u64) -> Option<usize> {
        self.with_compressed(mem, addr, |c| c.size_bytes())
    }

    /// A clone of the compressed form of the line containing `addr`.
    pub fn compressed_clone(&mut self, mem: &SharedMem<'_>, addr: u64) -> Option<CompressedLine> {
        self.with_compressed(mem, addr, |c| c.clone())
    }

    /// DRAM bursts to transfer the line containing `addr` in compressed form.
    pub fn line_bursts(&mut self, mem: &SharedMem<'_>, addr: u64) -> u32 {
        match self.with_compressed(mem, addr, |c| c.bursts() as u32) {
            Some(b) => b,
            None => (LINE_SIZE / caba_compress::BURST_BYTES) as u32,
        }
    }

    /// Invalidates the cached form of the line containing `addr` (call on
    /// every store to the line).
    pub fn invalidate(&mut self, addr: u64) {
        match self {
            SharedCmap::Direct(map) => map.invalidate(addr),
            SharedCmap::Overlay { delta, .. } => {
                let b = line_base(addr);
                delta.log.push(CmapOp::Invalidate(b));
                delta.local.insert(b, CmapLocal::Invalid);
            }
        }
    }

    /// Mutable access to a cached compressed form (fault-injection only).
    ///
    /// # Panics
    ///
    /// Panics on an overlay view: corruption happens in the serial fill
    /// phase, which always runs with direct access.
    pub fn cached_mut(&mut self, addr: u64) -> Option<&mut CompressedLine> {
        match self {
            SharedCmap::Direct(map) => map.cached_mut(addr),
            SharedCmap::Overlay { .. } => {
                panic!("fault injection must not corrupt through an overlay view")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caba_compress::Algorithm;

    fn seeded_mem() -> FuncMem {
        let mut m = FuncMem::new();
        for i in 0..64u64 {
            m.write_u32(i * 4, 0x100 + i as u32);
        }
        m
    }

    #[test]
    fn overlay_reads_own_writes_without_touching_base() {
        let base = seeded_mem();
        let mut delta = MemDelta::new();
        let mut view = SharedMem::Overlay {
            base: &base,
            delta: &mut delta,
        };
        assert_eq!(view.read_u32(0), 0x100);
        view.write_u32(0, 0xDEAD_BEEF);
        view.write_u8(130, 0x7F);
        assert_eq!(view.read_u32(0), 0xDEAD_BEEF, "read-your-own-writes");
        assert_eq!(view.read_u8(130), 0x7F);
        // Unwritten bytes of a shadowed line still show snapshot values.
        assert_eq!(view.read_u32(4), 0x101);
        // The base memory is untouched until commit.
        assert_eq!(base.read_u32(0), 0x100);
        assert_eq!(base.read_u8(130), 0);
    }

    #[test]
    fn commit_replays_ops_and_reports_dirty_lines() {
        let mut mem = seeded_mem();
        let mut delta = MemDelta::new();
        {
            let mut view = SharedMem::Overlay {
                base: &mem,
                delta: &mut delta,
            };
            view.write_u32(8, 42);
            view.load_image(256, &[1, 2, 3, 4]);
            // A write spanning a line boundary dirties both lines.
            view.write_u64(124, u64::MAX);
        }
        let mut dirty = Vec::new();
        delta.commit(&mut mem, Some(&mut dirty));
        assert!(delta.is_empty());
        assert_eq!(mem.read_u32(8), 42);
        assert_eq!(mem.read_bytes(256, 4), vec![1, 2, 3, 4]);
        assert_eq!(mem.read_u64(124), u64::MAX);
        dirty.sort_unstable();
        dirty.dedup();
        assert_eq!(dirty, vec![0, 128, 256]);
    }

    #[test]
    fn interleaved_commits_merge_byte_writes_to_one_line() {
        // Two deltas write different bytes of the same line; op replay must
        // preserve both (a line-copy commit would clobber one).
        let mut mem = FuncMem::new();
        let mut d0 = MemDelta::new();
        let mut d1 = MemDelta::new();
        SharedMem::Overlay {
            base: &mem,
            delta: &mut d0,
        }
        .write_u8(0, 0xAA);
        SharedMem::Overlay {
            base: &mem,
            delta: &mut d1,
        }
        .write_u8(1, 0xBB);
        d0.commit(&mut mem, None);
        d1.commit(&mut mem, None);
        assert_eq!(mem.read_u8(0), 0xAA);
        assert_eq!(mem.read_u8(1), 0xBB);
    }

    #[test]
    fn frozen_view_reads_and_rejects_writes() {
        let mem = seeded_mem();
        let view = SharedMem::Frozen(&mem);
        assert_eq!(view.read_u32(0), 0x100);
        assert_eq!(view.read_line(0).len(), LINE_SIZE);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut v = SharedMem::Frozen(&mem);
            v.write_u8(0, 1);
        }));
        assert!(r.is_err(), "frozen writes must panic");
    }

    #[test]
    fn cmap_overlay_matches_direct_semantics() {
        let mem = seeded_mem();
        let mut map = CompressionMap::new(LineCompressor::Fixed(Algorithm::Bdi));
        let mut direct_map = CompressionMap::new(LineCompressor::Fixed(Algorithm::Bdi));

        let mut delta = CmapDelta::new();
        let frozen = SharedMem::Frozen(&mem);
        let mut view = SharedCmap::Overlay {
            base: &map,
            delta: &mut delta,
        };
        let via_overlay = view.compressed_size(&frozen, 0);
        view.invalidate(0);
        let recomputed = view.compressed_size(&frozen, 0);
        delta.commit(&mut map);

        let mut direct = SharedCmap::Direct(&mut direct_map);
        let via_direct = direct.compressed_size(&frozen, 0);
        assert_eq!(via_overlay, via_direct);
        assert_eq!(recomputed, via_direct);
        // After commit the real map holds the computed entry.
        assert_eq!(
            map.peek(0).and_then(|o| o.as_ref()).map(|c| c.size_bytes()),
            via_direct
        );
    }

    #[test]
    fn cmap_overlay_sees_base_entries_without_logging() {
        let mem = seeded_mem();
        let mut map = CompressionMap::new(LineCompressor::Fixed(Algorithm::Bdi));
        let direct_size = map.compressed(&mem, 0).map(|c| c.size_bytes());
        let mut delta = CmapDelta::new();
        let frozen = SharedMem::Frozen(&mem);
        let mut view = SharedCmap::Overlay {
            base: &map,
            delta: &mut delta,
        };
        assert_eq!(view.compressed_size(&frozen, 0), direct_size);
        assert!(delta.log.is_empty(), "base hits must not be re-logged");
    }
}
