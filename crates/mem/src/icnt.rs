//! The SM↔MC crossbar interconnect (Table 1: one crossbar per direction,
//! 15 SMs × 6 MCs, 32 B flits).
//!
//! Each output port delivers one flit per cycle, so a packet of `f` flits
//! occupies its destination port for `f` cycles. Compressing interconnect
//! traffic (the `HW-BDI` and `CABA-BDI` designs, in contrast to
//! `HW-BDI-Mem`) reduces a line transfer from 4 flits to as little as 1 —
//! this is why those designs win on the interconnect-bound applications the
//! paper calls out (bfs, mst; §6.1).

use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use std::collections::VecDeque;
use std::fmt;

/// Flit size in bytes.
pub const FLIT_BYTES: usize = 32;

/// Number of flits for a payload of `bytes` (at least 1).
pub fn flits_for(bytes: usize) -> u32 {
    bytes.div_ceil(FLIT_BYTES).max(1) as u32
}

/// A packet traversing the crossbar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flit<T> {
    payload: T,
    flits_left: u32,
    min_deliver_at: u64,
}

/// Why a crossbar push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushErrorKind {
    /// The source port does not exist.
    BadSourcePort {
        /// Offending port.
        port: usize,
        /// Number of input ports.
        inputs: usize,
    },
    /// The destination port does not exist.
    BadDestPort {
        /// Offending port.
        port: usize,
        /// Number of output ports.
        outputs: usize,
    },
    /// A packet must carry at least one flit.
    ZeroFlits,
    /// The destination queue is full (back-pressure; retry later).
    QueueFull {
        /// Destination whose queue is full.
        dst: usize,
    },
}

impl fmt::Display for PushErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushErrorKind::BadSourcePort { port, inputs } => {
                write!(
                    f,
                    "source port {port} out of range (crossbar has {inputs} inputs)"
                )
            }
            PushErrorKind::BadDestPort { port, outputs } => {
                write!(
                    f,
                    "destination port {port} out of range (crossbar has {outputs} outputs)"
                )
            }
            PushErrorKind::ZeroFlits => write!(f, "packets need at least one flit"),
            PushErrorKind::QueueFull { dst } => write!(f, "queue for destination {dst} is full"),
        }
    }
}

/// A rejected [`Crossbar::try_push`], returning the payload to the caller so
/// it can be retried or reported. Routing mistakes are surfaced as values the
/// integrity layer can attribute to a component instead of aborting the
/// whole simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushError<T> {
    /// Why the push was rejected.
    pub kind: PushErrorKind,
    /// The packet that was not enqueued.
    pub payload: T,
}

impl<T> PushError<T> {
    /// True when the rejection is ordinary back-pressure (retryable) rather
    /// than a routing bug.
    pub fn is_back_pressure(&self) -> bool {
        matches!(self.kind, PushErrorKind::QueueFull { .. })
    }
}

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

impl<T: fmt::Debug> std::error::Error for PushError<T> {}

/// One direction of the crossbar.
///
/// # Examples
///
/// ```
/// use caba_mem::Crossbar;
/// let mut x: Crossbar<&str> = Crossbar::new(2, 2, 1);
/// x.try_push(0, 1, "hello", 4).unwrap();
/// let mut got = None;
/// for _ in 0..10 {
///     x.cycle();
///     if let Some(p) = x.pop(1) { got = Some(p); break; }
/// }
/// assert_eq!(got, Some("hello"));
/// ```
#[derive(Debug)]
pub struct Crossbar<T> {
    n_in: usize,
    latency: u64,
    now: u64,
    queues: Vec<VecDeque<Flit<T>>>,
    delivered: Vec<VecDeque<T>>,
    queue_capacity: usize,
    total_flits: u64,
    total_packets: u64,
    busy_cycles: u64,
    /// Packets currently in output queues (not yet delivered), maintained
    /// so [`Crossbar::cycle`] can skip the all-ports scan when empty.
    queued_pkts: usize,
    /// Packets delivered but not yet popped, so [`Crossbar::idle`] is O(1).
    delivered_pkts: usize,
}

impl<T> Crossbar<T> {
    /// Creates a crossbar with `n_in` inputs, `n_out` outputs and a fixed
    /// traversal `latency` in cycles.
    pub fn new(n_in: usize, n_out: usize, latency: u64) -> Self {
        Crossbar {
            n_in,
            latency,
            now: 0,
            queues: (0..n_out).map(|_| VecDeque::new()).collect(),
            delivered: (0..n_out).map(|_| VecDeque::new()).collect(),
            queue_capacity: 16,
            total_flits: 0,
            total_packets: 0,
            busy_cycles: 0,
            queued_pkts: 0,
            delivered_pkts: 0,
        }
    }

    /// Number of input ports.
    pub fn inputs(&self) -> usize {
        self.n_in
    }

    /// Number of output ports.
    pub fn outputs(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a packet of `flits` flits from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns a [`PushError`] carrying the payload back when the
    /// destination queue is full (back-pressure), when either port is out of
    /// range, or when `flits` is zero. Routing errors never panic: the
    /// caller (the integrity layer) decides whether to retry, report, or
    /// abort the run with a structured error.
    pub fn try_push(
        &mut self,
        src: usize,
        dst: usize,
        payload: T,
        flits: u32,
    ) -> Result<(), PushError<T>> {
        if src >= self.n_in {
            return Err(PushError {
                kind: PushErrorKind::BadSourcePort {
                    port: src,
                    inputs: self.n_in,
                },
                payload,
            });
        }
        if dst >= self.queues.len() {
            return Err(PushError {
                kind: PushErrorKind::BadDestPort {
                    port: dst,
                    outputs: self.queues.len(),
                },
                payload,
            });
        }
        if flits == 0 {
            return Err(PushError {
                kind: PushErrorKind::ZeroFlits,
                payload,
            });
        }
        if self.queues[dst].len() >= self.queue_capacity {
            return Err(PushError {
                kind: PushErrorKind::QueueFull { dst },
                payload,
            });
        }
        self.queues[dst].push_back(Flit {
            payload,
            flits_left: flits,
            min_deliver_at: self.now + self.latency,
        });
        self.total_flits += flits as u64;
        self.total_packets += 1;
        self.queued_pkts += 1;
        Ok(())
    }

    /// True when a packet to `dst` would currently be accepted. Out-of-range
    /// destinations are simply not acceptable (no panic).
    pub fn can_accept(&self, dst: usize) -> bool {
        self.queues
            .get(dst)
            .is_some_and(|q| q.len() < self.queue_capacity)
    }

    /// Advances one cycle: every output port drains one flit of its head
    /// packet; finished packets become poppable (after the fixed latency).
    pub fn cycle(&mut self) {
        self.now += 1;
        if self.queued_pkts == 0 {
            // Nothing queued at any port: only the clock advances.
            return;
        }
        let now = self.now;
        let mut any_busy = false;
        for (q, d) in self.queues.iter_mut().zip(self.delivered.iter_mut()) {
            if let Some(head) = q.front_mut() {
                if head.flits_left > 0 {
                    head.flits_left -= 1;
                    any_busy = true;
                }
                if head.flits_left == 0 && head.min_deliver_at <= now {
                    if let Some(pkt) = q.pop_front() {
                        d.push_back(pkt.payload);
                        self.queued_pkts -= 1;
                        self.delivered_pkts += 1;
                    }
                }
            }
        }
        if any_busy {
            self.busy_cycles += 1;
        }
    }

    /// Advances the clock `n` cycles without scanning the ports. An idle
    /// crossbar's [`Crossbar::cycle`] only increments `now`, so this is
    /// bit-identical to `n` cycle calls — the next-event clock uses it to
    /// jump over spans in which nothing is queued anywhere.
    ///
    /// Must only be called while [`Crossbar::idle`] is true.
    pub fn skip(&mut self, n: u64) {
        debug_assert!(self.idle(), "skip on a non-idle crossbar");
        self.now += n;
    }

    /// Pops a delivered packet at output `dst`.
    pub fn pop(&mut self, dst: usize) -> Option<T> {
        let p = self.delivered[dst].pop_front();
        if p.is_some() {
            self.delivered_pkts -= 1;
        }
        p
    }

    /// True when nothing is queued or waiting to be popped. O(1): packet
    /// counts are maintained at push/deliver/pop.
    pub fn idle(&self) -> bool {
        debug_assert_eq!(
            self.queued_pkts == 0 && self.delivered_pkts == 0,
            self.queues.iter().all(|q| q.is_empty()) && self.delivered.iter().all(|d| d.is_empty())
        );
        self.queued_pkts == 0 && self.delivered_pkts == 0
    }

    /// Packets delivered and awaiting [`Crossbar::pop`] across all ports.
    pub fn delivered_pending(&self) -> usize {
        self.delivered_pkts
    }

    /// Total flits pushed since construction.
    pub fn total_flits(&self) -> u64 {
        self.total_flits
    }

    /// Total packets pushed since construction.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Cycles during which at least one output port was transferring.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Every payload currently inside the crossbar (queued or delivered but
    /// not yet popped), for conservation audits.
    pub fn in_flight(&self) -> impl Iterator<Item = &T> {
        self.queues
            .iter()
            .flat_map(|q| q.iter().map(|f| &f.payload))
            .chain(self.delivered.iter().flat_map(|d| d.iter()))
    }

    /// Packets queued toward output `dst` (0 for out-of-range ports).
    pub fn queued_len(&self, dst: usize) -> usize {
        self.queues.get(dst).map_or(0, |q| q.len())
    }

    /// Per-output queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

impl<T: SnapshotState> Crossbar<T> {
    /// Serializes the clock, every queued/delivered packet (with remaining
    /// flits and delivery deadlines) and the traffic counters. Port counts
    /// and latency are config-derived and not serialized.
    pub fn snap_save(&self, w: &mut SnapshotWriter) {
        w.u64(self.now);
        w.usize(self.queues.len());
        for q in &self.queues {
            w.usize(q.len());
            for f in q {
                f.payload.save(w);
                w.u32(f.flits_left);
                w.u64(f.min_deliver_at);
            }
        }
        for d in &self.delivered {
            d.save(w);
        }
        w.u64(self.total_flits);
        w.u64(self.total_packets);
        w.u64(self.busy_cycles);
    }

    /// Restores crossbar state in place into a crossbar with the same shape.
    /// The derived `queued_pkts` / `delivered_pkts` counts are recomputed.
    ///
    /// # Errors
    ///
    /// Fails when the serialized output-port count disagrees with this
    /// crossbar or the bytes are malformed.
    pub fn snap_load(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapError> {
        self.now = r.u64()?;
        let n_out = r.usize()?;
        if n_out != self.queues.len() {
            return Err(SnapError::Invariant {
                what: "crossbar output count mismatch",
            });
        }
        for q in &mut self.queues {
            let n = r.seq_len("crossbar queue", 8)?;
            if n > self.queue_capacity {
                return Err(SnapError::Invariant {
                    what: "crossbar queue exceeds capacity",
                });
            }
            q.clear();
            for _ in 0..n {
                q.push_back(Flit {
                    payload: T::load(r)?,
                    flits_left: r.u32()?,
                    min_deliver_at: r.u64()?,
                });
            }
        }
        for d in &mut self.delivered {
            *d = VecDeque::<T>::load(r)?;
        }
        self.total_flits = r.u64()?;
        self.total_packets = r.u64()?;
        self.busy_cycles = r.u64()?;
        self.queued_pkts = self.queues.iter().map(|q| q.len()).sum();
        self.delivered_pkts = self.delivered.iter().map(|d| d.len()).sum();
        Ok(())
    }
}

/// Double-buffered per-source staging lanes in front of a [`Crossbar`].
///
/// The barrier-phased parallel engine lets each worker advance its slice of
/// sources (SMs, or partitions on the response path) concurrently. Workers
/// cannot inject into the crossbar directly: admission shares per-output
/// queue capacity across sources and draws from a global fault-injection RNG
/// stream, both of which are order-sensitive. Instead, every packet a source
/// produces in cycle *t* is staged into that source's private lane — one
/// lane per source, so no two workers ever touch the same lane — and the
/// coordinator merges the lanes **in source-index order** at the cycle
/// barrier, applying exactly the admission logic the serial loop would.
///
/// This staging is timing-equivalent to serial injection: [`Crossbar::try_push`]
/// stamps `min_deliver_at = now + latency` with `latency ≥ 1`, so a packet
/// produced in cycle *t* can never be observed before cycle *t+1* regardless
/// of whether it was injected mid-phase (serial) or at the barrier (staged).
#[derive(Debug)]
pub struct IngressLanes<T> {
    lanes: Vec<VecDeque<T>>,
}

impl<T> IngressLanes<T> {
    /// Creates one empty lane per source.
    pub fn new(n_src: usize) -> Self {
        IngressLanes {
            lanes: (0..n_src).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Number of source lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.is_empty())
    }

    /// The private lane of source `src`. Each worker may only touch the
    /// lanes of the sources it owns.
    pub fn lane_mut(&mut self, src: usize) -> &mut VecDeque<T> {
        &mut self.lanes[src]
    }

    /// Pops the oldest staged packet of source `src` (merge step; called by
    /// the coordinator in ascending `src` order).
    pub fn take(&mut self, src: usize) -> Option<T> {
        self.lanes[src].pop_front()
    }

    /// All lanes as a slice, for engines that pre-capture per-lane pointers
    /// (each worker thread touches only the lanes of sources it owns).
    pub fn as_mut_slice(&mut self) -> &mut [VecDeque<T>] {
        &mut self.lanes
    }
}

impl<T> Default for IngressLanes<T> {
    fn default() -> Self {
        IngressLanes { lanes: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_count_rounds_up() {
        assert_eq!(flits_for(0), 1);
        assert_eq!(flits_for(1), 1);
        assert_eq!(flits_for(32), 1);
        assert_eq!(flits_for(33), 2);
        assert_eq!(flits_for(128), 4);
    }

    #[test]
    fn packet_takes_flits_cycles() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0);
        x.try_push(0, 0, 42, 4).unwrap();
        for _ in 0..3 {
            x.cycle();
            assert_eq!(x.pop(0), None);
        }
        x.cycle();
        assert_eq!(x.pop(0), Some(42));
    }

    #[test]
    fn latency_adds_delay() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 5);
        x.try_push(0, 0, 1, 1).unwrap();
        let mut at = None;
        for c in 1..=10 {
            x.cycle();
            if x.pop(0).is_some() {
                at = Some(c);
                break;
            }
        }
        assert_eq!(at, Some(5));
    }

    #[test]
    fn output_ports_progress_independently() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 0);
        x.try_push(0, 0, 10, 1).unwrap();
        x.try_push(1, 1, 11, 1).unwrap();
        x.cycle();
        assert_eq!(x.pop(0), Some(10));
        assert_eq!(x.pop(1), Some(11));
        assert!(x.idle());
    }

    #[test]
    fn same_port_serializes() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 1, 0);
        x.try_push(0, 0, 1, 2).unwrap();
        x.try_push(1, 0, 2, 2).unwrap();
        let mut order = Vec::new();
        for _ in 0..6 {
            x.cycle();
            if let Some(p) = x.pop(0) {
                order.push(p);
            }
        }
        assert_eq!(order, vec![1, 2]);
        assert_eq!(x.total_flits(), 4);
        assert_eq!(x.total_packets(), 2);
        assert_eq!(x.busy_cycles(), 4);
    }

    #[test]
    fn back_pressure_on_full_queue() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0);
        for i in 0..16 {
            assert!(x.try_push(0, 0, i, 1).is_ok());
        }
        assert!(!x.can_accept(0));
        let err = x.try_push(0, 0, 99, 1).unwrap_err();
        assert_eq!(err.kind, PushErrorKind::QueueFull { dst: 0 });
        assert_eq!(err.payload, 99);
        assert!(err.is_back_pressure());
        assert_eq!(x.queued_len(0), x.queue_capacity());
    }

    #[test]
    fn bad_ports_return_typed_errors() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0);
        let err = x.try_push(5, 0, 7, 1).unwrap_err();
        assert_eq!(
            err.kind,
            PushErrorKind::BadSourcePort { port: 5, inputs: 1 }
        );
        assert_eq!(err.payload, 7);
        assert!(!err.is_back_pressure());
        assert!(err.to_string().contains("source port 5"));

        let err = x.try_push(0, 9, 8, 1).unwrap_err();
        assert_eq!(
            err.kind,
            PushErrorKind::BadDestPort {
                port: 9,
                outputs: 1
            }
        );
        assert!(err.to_string().contains("destination port 9"));
        // Probing a bad port is not a panic either.
        assert!(!x.can_accept(9));
        assert_eq!(x.queued_len(9), 0);
    }

    #[test]
    fn zero_flits_returns_typed_error() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0);
        let err = x.try_push(0, 0, 1, 0).unwrap_err();
        assert_eq!(err.kind, PushErrorKind::ZeroFlits);
        assert!(err.to_string().contains("at least one flit"));
    }

    #[test]
    fn in_flight_sees_queued_and_delivered() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 0);
        x.try_push(0, 0, 10, 1).unwrap();
        x.try_push(1, 1, 11, 2).unwrap();
        assert_eq!(x.in_flight().count(), 2);
        x.cycle(); // 10 delivered, 11 still has a flit left
        let mut seen: Vec<u32> = x.in_flight().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![10, 11]);
        assert_eq!(x.pop(0), Some(10));
        assert_eq!(x.in_flight().count(), 1);
    }
}
