//! The SM↔MC crossbar interconnect (Table 1: one crossbar per direction,
//! 15 SMs × 6 MCs, 32 B flits).
//!
//! Each output port delivers one flit per cycle, so a packet of `f` flits
//! occupies its destination port for `f` cycles. Compressing interconnect
//! traffic (the `HW-BDI` and `CABA-BDI` designs, in contrast to
//! `HW-BDI-Mem`) reduces a line transfer from 4 flits to as little as 1 —
//! this is why those designs win on the interconnect-bound applications the
//! paper calls out (bfs, mst; §6.1).

use std::collections::VecDeque;

/// Flit size in bytes.
pub const FLIT_BYTES: usize = 32;

/// Number of flits for a payload of `bytes` (at least 1).
pub fn flits_for(bytes: usize) -> u32 {
    bytes.div_ceil(FLIT_BYTES).max(1) as u32
}

/// A packet traversing the crossbar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flit<T> {
    payload: T,
    flits_left: u32,
    min_deliver_at: u64,
}

/// One direction of the crossbar.
///
/// # Examples
///
/// ```
/// use caba_mem::Crossbar;
/// let mut x: Crossbar<&str> = Crossbar::new(2, 2, 1);
/// x.try_push(0, 1, "hello", 4).unwrap();
/// let mut got = None;
/// for _ in 0..10 {
///     x.cycle();
///     if let Some(p) = x.pop(1) { got = Some(p); break; }
/// }
/// assert_eq!(got, Some("hello"));
/// ```
#[derive(Debug)]
pub struct Crossbar<T> {
    n_in: usize,
    latency: u64,
    now: u64,
    queues: Vec<VecDeque<Flit<T>>>,
    delivered: Vec<VecDeque<T>>,
    queue_capacity: usize,
    total_flits: u64,
    total_packets: u64,
    busy_cycles: u64,
}

impl<T> Crossbar<T> {
    /// Creates a crossbar with `n_in` inputs, `n_out` outputs and a fixed
    /// traversal `latency` in cycles.
    pub fn new(n_in: usize, n_out: usize, latency: u64) -> Self {
        Crossbar {
            n_in,
            latency,
            now: 0,
            queues: (0..n_out).map(|_| VecDeque::new()).collect(),
            delivered: (0..n_out).map(|_| VecDeque::new()).collect(),
            queue_capacity: 16,
            total_flits: 0,
            total_packets: 0,
            busy_cycles: 0,
        }
    }

    /// Number of input ports.
    pub fn inputs(&self) -> usize {
        self.n_in
    }

    /// Number of output ports.
    pub fn outputs(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a packet of `flits` flits from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns the payload back when the destination queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range or `flits` is zero.
    pub fn try_push(&mut self, src: usize, dst: usize, payload: T, flits: u32) -> Result<(), T> {
        assert!(src < self.n_in, "source port {src} out of range");
        assert!(dst < self.queues.len(), "destination port {dst} out of range");
        assert!(flits > 0, "packets need at least one flit");
        if self.queues[dst].len() >= self.queue_capacity {
            return Err(payload);
        }
        self.queues[dst].push_back(Flit {
            payload,
            flits_left: flits,
            min_deliver_at: self.now + self.latency,
        });
        self.total_flits += flits as u64;
        self.total_packets += 1;
        Ok(())
    }

    /// True when a packet to `dst` would currently be accepted.
    pub fn can_accept(&self, dst: usize) -> bool {
        self.queues[dst].len() < self.queue_capacity
    }

    /// Advances one cycle: every output port drains one flit of its head
    /// packet; finished packets become poppable (after the fixed latency).
    pub fn cycle(&mut self) {
        self.now += 1;
        let now = self.now;
        let mut any_busy = false;
        for (q, d) in self.queues.iter_mut().zip(self.delivered.iter_mut()) {
            if let Some(head) = q.front_mut() {
                if head.flits_left > 0 {
                    head.flits_left -= 1;
                    any_busy = true;
                }
                if head.flits_left == 0 && head.min_deliver_at <= now {
                    let pkt = q.pop_front().expect("head exists");
                    d.push_back(pkt.payload);
                }
            }
        }
        if any_busy {
            self.busy_cycles += 1;
        }
    }

    /// Pops a delivered packet at output `dst`.
    pub fn pop(&mut self, dst: usize) -> Option<T> {
        self.delivered[dst].pop_front()
    }

    /// True when nothing is queued or waiting to be popped.
    pub fn idle(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty()) && self.delivered.iter().all(|d| d.is_empty())
    }

    /// Total flits pushed since construction.
    pub fn total_flits(&self) -> u64 {
        self.total_flits
    }

    /// Total packets pushed since construction.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Cycles during which at least one output port was transferring.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_count_rounds_up() {
        assert_eq!(flits_for(0), 1);
        assert_eq!(flits_for(1), 1);
        assert_eq!(flits_for(32), 1);
        assert_eq!(flits_for(33), 2);
        assert_eq!(flits_for(128), 4);
    }

    #[test]
    fn packet_takes_flits_cycles() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0);
        x.try_push(0, 0, 42, 4).unwrap();
        for _ in 0..3 {
            x.cycle();
            assert_eq!(x.pop(0), None);
        }
        x.cycle();
        assert_eq!(x.pop(0), Some(42));
    }

    #[test]
    fn latency_adds_delay() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 5);
        x.try_push(0, 0, 1, 1).unwrap();
        let mut at = None;
        for c in 1..=10 {
            x.cycle();
            if x.pop(0).is_some() {
                at = Some(c);
                break;
            }
        }
        assert_eq!(at, Some(5));
    }

    #[test]
    fn output_ports_progress_independently() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 2, 0);
        x.try_push(0, 0, 10, 1).unwrap();
        x.try_push(1, 1, 11, 1).unwrap();
        x.cycle();
        assert_eq!(x.pop(0), Some(10));
        assert_eq!(x.pop(1), Some(11));
        assert!(x.idle());
    }

    #[test]
    fn same_port_serializes() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 1, 0);
        x.try_push(0, 0, 1, 2).unwrap();
        x.try_push(1, 0, 2, 2).unwrap();
        let mut order = Vec::new();
        for _ in 0..6 {
            x.cycle();
            if let Some(p) = x.pop(0) {
                order.push(p);
            }
        }
        assert_eq!(order, vec![1, 2]);
        assert_eq!(x.total_flits(), 4);
        assert_eq!(x.total_packets(), 2);
        assert_eq!(x.busy_cycles(), 4);
    }

    #[test]
    fn back_pressure_on_full_queue() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0);
        for i in 0..16 {
            assert!(x.try_push(0, 0, i, 1).is_ok());
        }
        assert!(!x.can_accept(0));
        assert_eq!(x.try_push(0, 0, 99, 1), Err(99));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_port_panics() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0);
        let _ = x.try_push(5, 0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flits_panics() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 1, 0);
        let _ = x.try_push(0, 0, 1, 0);
    }
}
