//! The metadata (MD) cache of §4.3.2.
//!
//! With memory bandwidth compression, the memory controller must know how
//! many DRAM bursts each cache line occupies *before* issuing the access.
//! The paper reserves 8 MB of DRAM for this metadata (~0.2% of capacity) and
//! adds a small 8 KB, 4-way MD cache near the MC so the common case avoids a
//! second DRAM access. The paper reports an 85% average hit rate.
//!
//! Each MD-cache block covers the metadata of a contiguous run of data lines
//! (2 bits per line → a 64 B metadata block covers 256 data lines = 32 KB of
//! data), which is what makes the hit rate high for spatially local access.

use crate::cache::{Cache, CacheGeometry};

/// Bits of burst-count metadata per data line.
const BITS_PER_LINE: usize = 2;
/// MD-cache block size in bytes.
const MD_BLOCK: usize = 64;
/// Data lines covered by one MD-cache block.
const LINES_PER_BLOCK: u64 = (MD_BLOCK * 8 / BITS_PER_LINE) as u64;

/// The 8 KB 4-way metadata cache.
///
/// # Examples
///
/// ```
/// use caba_mem::MdCache;
/// let mut md = MdCache::isca2015();
/// assert!(!md.lookup(0));      // cold miss
/// assert!(md.lookup(128));     // same metadata block
/// assert!(md.hit_rate() > 0.0);
/// ```
#[derive(Debug)]
pub struct MdCache {
    cache: Cache,
}

impl MdCache {
    /// The paper's configuration: 8 KB, 4-way.
    pub fn isca2015() -> Self {
        MdCache {
            cache: Cache::new(CacheGeometry::new(8 * 1024, 4, MD_BLOCK)),
        }
    }

    /// Creates an MD cache with custom geometry (for sensitivity studies).
    pub fn with_geometry(geo: CacheGeometry) -> Self {
        MdCache {
            cache: Cache::new(geo),
        }
    }

    /// Metadata block address covering data line `line_addr`.
    fn md_addr(line_addr: u64) -> u64 {
        (line_addr / crate::LINE_SIZE as u64 / LINES_PER_BLOCK) * MD_BLOCK as u64
    }

    /// Looks up the metadata for the data line containing `line_addr`.
    /// Returns `true` on a hit; on a miss the metadata block is fetched
    /// (the caller charges one extra DRAM access, §4.3.2) and inserted.
    pub fn lookup(&mut self, line_addr: u64) -> bool {
        let md = Self::md_addr(line_addr);
        match self.cache.access(md, false) {
            crate::AccessOutcome::Hit => true,
            crate::AccessOutcome::Miss => {
                self.cache.fill(md, false, MD_BLOCK);
                false
            }
        }
    }

    /// Hit rate so far (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.cache.hits() + self.cache.misses()
    }

    /// Total misses (each cost one extra DRAM access).
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Serializes the underlying tag state and counters.
    pub fn snap_save(&self, w: &mut caba_stats::snap::SnapshotWriter) {
        self.cache.snap_save(w);
    }

    /// Restores tag state in place.
    ///
    /// # Errors
    ///
    /// Propagates the underlying cache decode errors.
    pub fn snap_load(
        &mut self,
        r: &mut caba_stats::snap::SnapshotReader<'_>,
    ) -> Result<(), caba_stats::snap::SnapError> {
        self.cache.snap_load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_block_covers_32kb_of_data() {
        assert_eq!(LINES_PER_BLOCK, 256);
        assert_eq!(MdCache::md_addr(0), 0);
        assert_eq!(MdCache::md_addr(255 * 128), 0);
        assert_eq!(MdCache::md_addr(256 * 128), 64);
    }

    #[test]
    fn sequential_access_has_high_hit_rate() {
        let mut md = MdCache::isca2015();
        // Stream over 1 MB of data: one miss per 32 KB.
        for line in 0..8192u64 {
            md.lookup(line * 128);
        }
        assert_eq!(md.misses(), 32);
        assert!(md.hit_rate() > 0.99, "rate {}", md.hit_rate());
    }

    #[test]
    fn thrashing_access_has_low_hit_rate() {
        let mut md = MdCache::isca2015();
        // Stride of one MD block over a huge footprint, far exceeding 8 KB
        // of MD capacity: every access maps to a new block, evicting before
        // reuse.
        for i in 0..10_000u64 {
            md.lookup(i * 32 * 1024);
        }
        assert!(md.hit_rate() < 0.01, "rate {}", md.hit_rate());
        assert_eq!(md.lookups(), 10_000);
    }

    #[test]
    fn custom_geometry() {
        let mut md = MdCache::with_geometry(CacheGeometry::new(1024, 2, MD_BLOCK));
        assert!(!md.lookup(0));
        assert!(md.lookup(0));
    }
}
