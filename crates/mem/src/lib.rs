//! The GPU memory hierarchy substrate for the CABA simulator.
//!
//! The paper evaluates CABA on a Fermi-like memory system (Table 1): private
//! L1 data caches per SM, a 768 KB shared L2 spread over six memory
//! partitions, a crossbar interconnect between 15 SMs and 6 memory
//! controllers, and GDDR5 DRAM with FR-FCFS scheduling. No such substrate
//! exists in Rust, so this crate builds each piece:
//!
//! * [`FuncMem`] — sparse byte-addressable backing memory holding the
//!   *functional truth* of every global address. Execution correctness never
//!   depends on the timing model.
//! * [`CompressionMap`] — per-line compressed representations, produced by
//!   really running a compressor over current line bytes (and invalidated on
//!   writes). The DRAM burst counts and interconnect flit counts used by the
//!   timing model come from here, so bandwidth savings are earned, not
//!   assumed.
//! * [`Cache`] — set-associative tag array with LRU, dirty bits, and the
//!   tag-doubled *compressed cache* mode of Figure 13.
//! * [`Mshr`] — miss-status holding registers with same-line merging.
//! * [`MdCache`] — the 8 KB metadata cache of §4.3.2 that tells the memory
//!   controller how many bursts each compressed line needs.
//! * [`DramChannel`] — a GDDR5 channel: 16 banks, row-buffer state machine,
//!   FR-FCFS scheduling, burst-granular data-bus occupancy (the paper's
//!   bandwidth-utilization metric is busy-bus-cycles / total-cycles).
//! * [`Crossbar`] — the SM↔MC interconnect with 32 B flits.

pub mod cache;
pub mod dram;
pub mod func;
pub mod icnt;
pub mod mdcache;
pub mod overlay;

pub use cache::{AccessOutcome, Cache, CacheGeometry, Eviction, Mshr};
pub use dram::{DramChannel, DramConfig, DramRequest, DramStats};
pub use func::{CompressionMap, FuncMem, LineCompressor};
pub use icnt::{Crossbar, Flit, IngressLanes, PushError, PushErrorKind};
pub use mdcache::MdCache;
pub use overlay::{CmapDelta, MemDelta, SharedCmap, SharedMem};

/// Cache line size used throughout the hierarchy (bytes).
pub use caba_compress::LINE_SIZE;

/// Returns the line-aligned base address containing `addr`.
pub fn line_base(addr: u64) -> u64 {
    addr & !(LINE_SIZE as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_alignment() {
        assert_eq!(line_base(0), 0);
        assert_eq!(line_base(127), 0);
        assert_eq!(line_base(128), 128);
        assert_eq!(line_base(0x1234), 0x1200);
        assert_eq!(line_base(line_base(999)), line_base(999));
    }
}
