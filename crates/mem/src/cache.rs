//! Set-associative caches with LRU replacement, dirty bits, the tag-doubled
//! compressed-cache mode of §6.5 / Figure 13, and MSHRs.

use crate::{line_base, LINE_SIZE};
use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use caba_stats::FxHashMap;

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total data capacity in bytes.
    pub capacity: usize,
    /// Associativity (data ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: usize,
    /// Tag multiplication factor for compressed caches: a `tag_factor` of 2
    /// doubles the tags per set, letting compressed lines share a set's data
    /// budget ("2x the number of tags of the baseline", Fig. 13). 1 =
    /// conventional cache.
    pub tag_factor: usize,
}

impl CacheGeometry {
    /// Conventional cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless capacity is divisible by `ways * line_size` and the set
    /// count is a power of two.
    pub fn new(capacity: usize, ways: usize, line_size: usize) -> Self {
        let g = CacheGeometry {
            capacity,
            ways,
            line_size,
            tag_factor: 1,
        };
        assert!(g.sets() > 0 && g.sets().is_power_of_two(), "bad geometry");
        g
    }

    /// Compressed-cache geometry with multiplied tags.
    pub fn with_tag_factor(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "tag factor must be at least 1");
        self.tag_factor = factor;
        self
    }

    /// The paper's L1D: 16 KB, 4-way, 128 B lines.
    pub fn l1_isca2015() -> Self {
        CacheGeometry::new(16 * 1024, 4, LINE_SIZE)
    }

    /// One L2 partition slice of the paper's 768 KB 16-way L2 over 6 MCs.
    pub fn l2_slice_isca2015() -> Self {
        CacheGeometry::new(768 * 1024 / 6, 16, LINE_SIZE)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.ways * self.line_size)
    }

    /// Maximum tags per set.
    pub fn tags_per_set(&self) -> usize {
        self.ways * self.tag_factor
    }

    /// Per-set data budget in bytes.
    pub fn set_bytes(&self) -> usize {
        self.ways * self.line_size
    }
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    dirty: bool,
    /// Resident size in bytes (= line_size unless the cache stores the line
    /// compressed).
    size: usize,
    last_use: u64,
}

/// A line evicted to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line base address of the victim.
    pub addr: u64,
    /// Whether the victim was dirty (must be written back).
    pub dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; no fill was performed (probe-only access).
    Miss,
}

/// A set-associative, write-back, LRU cache (tags only — functional data
/// lives in [`crate::FuncMem`]).
///
/// # Examples
///
/// ```
/// use caba_mem::{Cache, CacheGeometry};
/// let mut c = Cache::new(CacheGeometry::l1_isca2015());
/// assert!(!c.probe(0x1000));
/// c.fill(0x1000, false, 128);
/// assert!(c.probe(0x1000));
/// ```
#[derive(Debug)]
pub struct Cache {
    geo: CacheGeometry,
    sets: Vec<Vec<LineState>>,
    use_clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(geo: CacheGeometry) -> Self {
        Cache {
            geo,
            sets: (0..geo.sets()).map(|_| Vec::new()).collect(),
            use_clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.geo.line_size as u64) % self.geo.sets() as u64) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / (self.geo.line_size as u64 * self.geo.sets() as u64)
    }

    /// Looks up `addr`, updating LRU and hit/miss stats. Does not allocate.
    pub fn access(&mut self, addr: u64, mark_dirty: bool) -> AccessOutcome {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        self.use_clock += 1;
        let clock = self.use_clock;
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            line.last_use = clock;
            line.dirty |= mark_dirty;
            self.hits += 1;
            AccessOutcome::Hit
        } else {
            self.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// True if the line containing `addr` is resident (no stat/LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// Inserts the line containing `addr` with resident `size` bytes,
    /// evicting LRU lines until both the tag budget and the set byte budget
    /// are satisfied. Returns the evicted lines (possibly several when a
    /// full-size line displaces compressed ones).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds the line size.
    pub fn fill(&mut self, addr: u64, dirty: bool, size: usize) -> Vec<Eviction> {
        assert!(
            size > 0 && size <= self.geo.line_size,
            "fill size {size} out of range"
        );
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        self.use_clock += 1;
        let clock = self.use_clock;

        // Refill of a resident line just updates state.
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            line.dirty |= dirty;
            line.size = size;
            line.last_use = clock;
            return Vec::new();
        }

        let mut evictions = Vec::new();
        loop {
            let used: usize = self.sets[set].iter().map(|l| l.size).sum();
            let tags_ok = self.sets[set].len() < self.geo.tags_per_set();
            let bytes_ok = used + size <= self.geo.set_bytes();
            if tags_ok && bytes_ok {
                break;
            }
            // Evict LRU.
            let victim_idx = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("set cannot be empty while over budget");
            let victim = self.sets[set].swap_remove(victim_idx);
            let victim_addr = self.reconstruct_addr(victim.tag, set);
            evictions.push(Eviction {
                addr: victim_addr,
                dirty: victim.dirty,
            });
        }
        self.sets[set].push(LineState {
            tag,
            dirty,
            size,
            last_use: clock,
        });
        evictions
    }

    fn reconstruct_addr(&self, tag: u64, set: usize) -> u64 {
        (tag * self.geo.sets() as u64 + set as u64) * self.geo.line_size as u64
    }

    /// Removes the line containing `addr`, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let idx = self.sets[set].iter().position(|l| l.tag == tag)?;
        let line = self.sets[set].swap_remove(idx);
        Some(line.dirty)
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Serializes tag state and counters. Geometry is not serialized: it is
    /// derived from the config, which the snapshot container pins by hash.
    pub fn snap_save(&self, w: &mut SnapshotWriter) {
        w.u64(self.use_clock);
        w.u64(self.hits);
        w.u64(self.misses);
        w.usize(self.sets.len());
        for set in &self.sets {
            w.usize(set.len());
            for l in set {
                w.u64(l.tag);
                w.bool(l.dirty);
                w.usize(l.size);
                w.u64(l.last_use);
            }
        }
    }

    /// Restores tag state in place into a cache built with the same geometry.
    ///
    /// # Errors
    ///
    /// Fails with [`SnapError::Invariant`] when the serialized set count
    /// disagrees with this cache's geometry, or with a decode error for
    /// malformed bytes. On error the cache contents are unspecified but the
    /// call never panics.
    pub fn snap_load(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapError> {
        self.use_clock = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        let n_sets = r.usize()?;
        if n_sets != self.geo.sets() {
            return Err(SnapError::Invariant {
                what: "cache set count mismatch",
            });
        }
        for set in &mut self.sets {
            let n = r.seq_len("cache set", 8)?;
            if n > self.geo.tags_per_set() {
                return Err(SnapError::Invariant {
                    what: "cache set exceeds tag budget",
                });
            }
            set.clear();
            for _ in 0..n {
                set.push(LineState {
                    tag: r.u64()?,
                    dirty: r.bool()?,
                    size: r.usize()?,
                    last_use: r.u64()?,
                });
            }
        }
        Ok(())
    }
}

/// Miss-status holding registers: track outstanding line fills and merge
/// requests to the same line so only one memory request is in flight per
/// line (Table 1's MSHR behaviour; the walkthrough in Fig. 6 buffers load
/// replay information the same way).
#[derive(Debug)]
pub struct Mshr<T> {
    capacity: usize,
    // FxHash: probed on every load; waiter order within an entry is
    // insertion order (a Vec), so response ordering is hasher-independent.
    entries: FxHashMap<u64, Vec<T>>,
    merged: u64,
}

impl<T> Mshr<T> {
    /// Creates an MSHR file with room for `capacity` distinct lines.
    pub fn new(capacity: usize) -> Self {
        Mshr {
            capacity,
            entries: FxHashMap::default(),
            merged: 0,
        }
    }

    /// True when no new line entry can be allocated.
    pub fn full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// True if a fill for `addr`'s line is already outstanding.
    pub fn pending(&self, addr: u64) -> bool {
        self.entries.contains_key(&line_base(addr))
    }

    /// Registers `waiter` for the line containing `addr`.
    ///
    /// Returns `true` if this allocated a *new* entry (the caller must send
    /// a memory request), `false` if it merged into an existing one.
    /// Returns `Err(waiter)` when the file is full and the line is not
    /// already pending.
    pub fn allocate(&mut self, addr: u64, waiter: T) -> Result<bool, T> {
        let base = line_base(addr);
        if let Some(ws) = self.entries.get_mut(&base) {
            ws.push(waiter);
            self.merged += 1;
            return Ok(false);
        }
        if self.entries.len() >= self.capacity {
            return Err(waiter);
        }
        self.entries.insert(base, vec![waiter]);
        Ok(true)
    }

    /// Completes the fill for `addr`'s line, returning all waiters.
    pub fn complete(&mut self, addr: u64) -> Vec<T> {
        self.entries.remove(&line_base(addr)).unwrap_or_default()
    }

    /// Outstanding line count.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Number of merged (secondary) requests since construction.
    pub fn merged(&self) -> u64 {
        self.merged
    }

    /// Configured capacity (distinct outstanding lines).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over every outstanding line and its waiters (for occupancy
    /// and conservation audits).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[T])> {
        self.entries.iter().map(|(addr, ws)| (*addr, ws.as_slice()))
    }
}

impl<T: SnapshotState> Mshr<T> {
    /// Serializes outstanding entries (in sorted line order, so the encoding
    /// is hasher-independent; waiter order within a line is preserved
    /// exactly) plus the merge counter. Capacity is config-derived and not
    /// serialized.
    pub fn snap_save(&self, w: &mut SnapshotWriter) {
        w.u64(self.merged);
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            w.u64(k);
            self.entries[&k].save(w);
        }
    }

    /// Restores outstanding entries in place.
    ///
    /// # Errors
    ///
    /// Fails when the bytes are malformed or the entry count exceeds this
    /// MSHR file's capacity.
    pub fn snap_load(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapError> {
        self.merged = r.u64()?;
        let n = r.seq_len("mshr entries", 8)?;
        if n > self.capacity {
            return Err(SnapError::Invariant {
                what: "mshr entries exceed capacity",
            });
        }
        self.entries.clear();
        for _ in 0..n {
            let k = r.u64()?;
            let ws = Vec::<T>::load(r)?;
            self.entries.insert(k, ws);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 2 sets x 2 ways x 128B lines.
        Cache::new(CacheGeometry::new(512, 2, LINE_SIZE))
    }

    fn addr_for(set: u64, tag: u64) -> u64 {
        (tag * 2 + set) * LINE_SIZE as u64
    }

    #[test]
    fn geometry_of_paper_caches() {
        let l1 = CacheGeometry::l1_isca2015();
        assert_eq!(l1.sets(), 32);
        assert_eq!(l1.tags_per_set(), 4);
        let l2 = CacheGeometry::l2_slice_isca2015();
        assert_eq!(l2.sets(), 64);
        assert_eq!(l2.ways, 16);
    }

    #[test]
    fn hit_after_fill_and_miss_before() {
        let mut c = small_cache();
        assert_eq!(c.access(0, false), AccessOutcome::Miss);
        c.fill(0, false, LINE_SIZE);
        assert_eq!(c.access(0, false), AccessOutcome::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache();
        c.fill(addr_for(0, 1), false, LINE_SIZE);
        c.fill(addr_for(0, 2), false, LINE_SIZE);
        // Touch tag 1 so tag 2 becomes LRU.
        c.access(addr_for(0, 1), false);
        let ev = c.fill(addr_for(0, 3), false, LINE_SIZE);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, addr_for(0, 2));
        assert!(c.probe(addr_for(0, 1)));
        assert!(!c.probe(addr_for(0, 2)));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = small_cache();
        c.fill(addr_for(0, 1), true, LINE_SIZE);
        c.fill(addr_for(0, 2), false, LINE_SIZE);
        let ev = c.fill(addr_for(0, 3), false, LINE_SIZE);
        assert_eq!(
            ev,
            vec![Eviction {
                addr: addr_for(0, 1),
                dirty: true
            }]
        );
    }

    #[test]
    fn access_marks_dirty() {
        let mut c = small_cache();
        c.fill(addr_for(1, 1), false, LINE_SIZE);
        c.access(addr_for(1, 1), true);
        c.fill(addr_for(1, 2), false, LINE_SIZE);
        let ev = c.fill(addr_for(1, 3), false, LINE_SIZE);
        assert!(ev[0].dirty);
    }

    #[test]
    fn compressed_mode_packs_more_lines() {
        // 1 set, 2 ways, tag factor 2: four tags, 256B budget.
        let geo = CacheGeometry::new(256, 2, LINE_SIZE).with_tag_factor(2);
        let mut c = Cache::new(geo);
        // Four half-size lines fit simultaneously.
        for t in 0..4u64 {
            let ev = c.fill(t * LINE_SIZE as u64, false, LINE_SIZE / 2);
            assert!(ev.is_empty(), "tag {t}");
        }
        assert_eq!(c.resident_lines(), 4);
        // A fifth (even compressed) line must evict.
        let ev = c.fill(4 * LINE_SIZE as u64, false, LINE_SIZE / 2);
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn full_size_line_can_displace_multiple_compressed() {
        let geo = CacheGeometry::new(256, 2, LINE_SIZE).with_tag_factor(4);
        let mut c = Cache::new(geo);
        for t in 0..4u64 {
            c.fill(t * LINE_SIZE as u64, false, 64);
        }
        // 256B budget full; a 128B line needs two 64B victims.
        let ev = c.fill(10 * LINE_SIZE as u64, false, LINE_SIZE);
        assert_eq!(ev.len(), 2);
        assert_eq!(c.resident_lines(), 3);
    }

    #[test]
    fn refill_updates_size_without_eviction() {
        let mut c = small_cache();
        c.fill(0, false, 64);
        let ev = c.fill(0, true, LINE_SIZE);
        assert!(ev.is_empty());
        let inv = c.invalidate(0);
        assert_eq!(inv, Some(true));
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_size_fill_panics() {
        small_cache().fill(0, false, 0);
    }

    #[test]
    fn mshr_merge_and_complete() {
        let mut m: Mshr<u32> = Mshr::new(2);
        assert_eq!(m.allocate(0, 1), Ok(true));
        assert_eq!(m.allocate(64, 2), Ok(false)); // same 128B line
        assert!(m.pending(100));
        assert_eq!(m.merged(), 1);
        assert_eq!(m.allocate(128, 3), Ok(true));
        assert!(m.full());
        // Full + new line -> rejected, waiter returned.
        assert_eq!(m.allocate(4096, 9), Err(9));
        // Full + existing line -> still merges.
        assert_eq!(m.allocate(130, 4), Ok(false));
        let mut ws = m.complete(5);
        ws.sort_unstable();
        assert_eq!(ws, vec![1, 2]);
        assert_eq!(m.outstanding(), 1);
        assert!(m.complete(0).is_empty());
    }
}
