//! A GDDR5 DRAM channel: banks with row-buffer state machines, FR-FCFS
//! scheduling, and a burst-granular data bus.
//!
//! Table 1 of the paper gives the timing parameters (Hynix GDDR5 SGRAM):
//! `tCL = 12, tRP = 12, tRC = 40, tRAS = 28, tRCD = 12, tRRD = 6, tWR = 12`.
//! The paper's bandwidth-utilization metric — "the fraction of total DRAM
//! cycles that the DRAM data bus is busy" (§5) — is exactly
//! [`DramStats::bus_busy_cycles`] over elapsed cycles here. Compressed lines
//! transfer in 1–4 bursts instead of always 4, which is where every
//! bandwidth saving in Figures 7–12 comes from.

use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use std::collections::VecDeque;

/// Timing and geometry of one DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Banks per channel.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Activate-to-CAS delay.
    pub t_rcd: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Minimum row-open time before precharge.
    pub t_ras: u64,
    /// CAS (column access) latency.
    pub t_cl: u64,
    /// Write recovery time.
    pub t_wr: u64,
    /// Activate-to-activate (different banks) delay.
    pub t_rrd: u64,
    /// Core cycles the data bus is busy per 32-byte burst. The ½×/2×
    /// bandwidth sweeps of Figures 1 and 12 scale this.
    pub burst_cycles: u64,
    /// Request queue capacity.
    pub queue_capacity: usize,
}

impl DramConfig {
    /// The paper's GDDR5 configuration (Table 1).
    pub fn isca2015() -> Self {
        DramConfig {
            banks: 16,
            row_bytes: 2048,
            t_rcd: 12,
            t_rp: 12,
            t_ras: 28,
            t_cl: 12,
            t_wr: 12,
            t_rrd: 6,
            burst_cycles: 2,
            queue_capacity: 32,
        }
    }

    /// Scales peak bandwidth by `factor` (0.5, 1.0, 2.0 in the paper's
    /// sweeps) by scaling the per-burst bus occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn with_bandwidth_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth factor must be positive");
        let scaled = (self.burst_cycles as f64 / factor).round().max(1.0);
        self.burst_cycles = scaled as u64;
        self
    }
}

/// One line-granularity DRAM request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramRequest {
    /// Caller-assigned identity, returned on completion.
    pub id: u64,
    /// Line base address.
    pub addr: u64,
    /// Bursts to transfer (1–4 for a 128 B line).
    pub bursts: u32,
    /// Write (true) or read (false).
    pub is_write: bool,
}

impl SnapshotState for DramRequest {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.id);
        w.u64(self.addr);
        w.u32(self.bursts);
        w.bool(self.is_write);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(DramRequest {
            id: r.u64()?,
            addr: r.u64()?,
            bursts: r.u32()?,
            is_write: r.bool()?,
        })
    }
}

/// Counters exposed by a channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Cycles the data bus was transferring.
    pub bus_busy_cycles: u64,
    /// Elapsed channel cycles.
    pub total_cycles: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (precharge + activate needed).
    pub row_misses: u64,
    /// Reads serviced.
    pub reads: u64,
    /// Writes serviced.
    pub writes: u64,
    /// Bursts transferred.
    pub bursts: u64,
}

impl DramStats {
    /// Data-bus utilization so far (the Figure 8 metric).
    pub fn bus_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.total_cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
    activated_at: u64,
}

/// A queued request with its bank/row decode cached at enqueue time, so
/// the per-cycle FR-FCFS scan does no address arithmetic (two integer
/// divisions per entry otherwise). Derived fields only — the wire format
/// still carries bare [`DramRequest`]s and recomputes these on load.
#[derive(Debug, Clone)]
struct QueuedReq {
    req: DramRequest,
    bank: usize,
    row: u64,
}

/// One GDDR5 channel.
///
/// # Examples
///
/// ```
/// use caba_mem::{DramChannel, DramConfig, DramRequest};
/// let mut ch = DramChannel::new(DramConfig::isca2015());
/// ch.push(DramRequest { id: 1, addr: 0, bursts: 4, is_write: false }).unwrap();
/// let mut done = None;
/// for _ in 0..200 {
///     ch.cycle();
///     if let Some(r) = ch.pop_completed() { done = Some(r); break; }
/// }
/// assert_eq!(done.unwrap().id, 1);
/// ```
#[derive(Debug)]
pub struct DramChannel {
    cfg: DramConfig,
    now: u64,
    banks: Vec<Bank>,
    queue: VecDeque<QueuedReq>,
    in_flight: Vec<(u64, DramRequest)>,
    completed: VecDeque<DramRequest>,
    bus_free_at: u64,
    last_activate: u64,
    stats: DramStats,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        DramChannel {
            cfg,
            now: 0,
            banks: vec![
                Bank {
                    open_row: None,
                    ready_at: 0,
                    activated_at: 0,
                };
                cfg.banks
            ],
            queue: VecDeque::new(),
            in_flight: Vec::new(),
            completed: VecDeque::new(),
            bus_free_at: 0,
            last_activate: 0,
            stats: DramStats::default(),
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// Returns the request back when the queue is full (back-pressure).
    pub fn push(&mut self, req: DramRequest) -> Result<(), DramRequest> {
        if self.queue.len() >= self.cfg.queue_capacity {
            return Err(req);
        }
        let (bank, row) = self.bank_and_row(req.addr);
        self.queue.push_back(QueuedReq { req, bank, row });
        Ok(())
    }

    /// True when a new request can be accepted.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.cfg.queue_capacity
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let line = addr / crate::LINE_SIZE as u64;
        let bank = (line % self.cfg.banks as u64) as usize;
        let row = addr / self.cfg.row_bytes;
        (bank, row)
    }

    /// Advances the channel by one cycle: FR-FCFS schedules at most one
    /// request, transfers progress, completions become poppable.
    pub fn cycle(&mut self) {
        self.now += 1;
        self.stats.total_cycles += 1;

        // Retire finished transfers.
        let now = self.now;
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                let (_, req) = self.in_flight.swap_remove(i);
                self.completed.push_back(req);
            } else {
                i += 1;
            }
        }

        // FR-FCFS: oldest row-hit first, else oldest ready request. The
        // scan only ever picks a request whose bank is ready, so when no
        // bank is (the common case on a saturated channel) skip it whole.
        if self.queue.is_empty() || !self.banks.iter().any(|b| b.ready_at <= now) {
            return;
        }
        let mut pick: Option<usize> = None;
        for (qi, q) in self.queue.iter().enumerate() {
            let b = &self.banks[q.bank];
            if b.ready_at > now {
                continue;
            }
            let row_hit = b.open_row == Some(q.row);
            if row_hit {
                pick = Some(qi);
                break;
            }
            if pick.is_none() {
                pick = Some(qi);
            }
        }
        let Some(qi) = pick else { return };
        let QueuedReq {
            req,
            bank: bank_idx,
            row,
        } = self.queue.remove(qi).expect("picked index valid");
        let bank = self.banks[bank_idx];

        // Command timing.
        let mut t = now.max(bank.ready_at);
        let row_hit = bank.open_row == Some(row);
        if !row_hit {
            if bank.open_row.is_some() {
                // Respect tRAS before precharging, then precharge.
                t = t.max(bank.activated_at + self.cfg.t_ras) + self.cfg.t_rp;
            }
            // Respect tRRD across banks, then activate.
            t = t.max(self.last_activate + self.cfg.t_rrd);
            self.last_activate = t;
            self.banks[bank_idx].activated_at = t;
            t += self.cfg.t_rcd;
            self.stats.row_misses += 1;
        } else {
            self.stats.row_hits += 1;
        }
        // CAS latency, then the data transfer on the shared bus.
        let cas_done = t + self.cfg.t_cl;
        let data_start = cas_done.max(self.bus_free_at);
        let transfer = req.bursts as u64 * self.cfg.burst_cycles;
        let data_end = data_start + transfer;
        self.bus_free_at = data_end;
        self.stats.bus_busy_cycles += transfer;
        self.stats.bursts += req.bursts as u64;
        let recovery = if req.is_write { self.cfg.t_wr } else { 0 };
        self.banks[bank_idx].ready_at = data_end + recovery;
        self.banks[bank_idx].open_row = Some(row);
        if req.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.in_flight.push((data_end, req));
    }

    /// Advances `n` cycles of pure idleness in one call, so callers can
    /// skip per-cycle [`DramChannel::cycle`] calls on a drained channel and
    /// catch the clock up later. Timing-equivalent to `n` `cycle()` calls:
    /// with nothing queued, in flight, or completed, a cycle only advances
    /// `now` and `total_cycles` (the Figure 8 utilization denominator).
    ///
    /// Must only be called while [`DramChannel::idle`] is true.
    pub fn tick_idle(&mut self, n: u64) {
        debug_assert!(self.idle(), "tick_idle on a non-idle channel");
        self.now += n;
        self.stats.total_cycles += n;
    }

    /// Advances `n` cycles across a span in which the channel provably does
    /// nothing: no in-flight transfer finishes and no queued request becomes
    /// schedulable at or before `now + n`. Unlike [`DramChannel::tick_idle`]
    /// the channel may hold future-dated work — the caller (the next-event
    /// clock) must pick `n` from [`DramChannel::next_event`] so every skipped
    /// cycle would have been a pure clock tick, and so that the event cycle
    /// itself is still executed by a real [`DramChannel::cycle`] call.
    pub fn tick_gap(&mut self, n: u64) {
        debug_assert!(
            self.completed.is_empty(),
            "tick_gap with poppable completions"
        );
        debug_assert!(
            self.next_event().is_none_or(|at| at > self.now + n),
            "tick_gap overshoots the channel's next event"
        );
        self.now += n;
        self.stats.total_cycles += n;
    }

    /// The earliest future channel cycle at which a [`DramChannel::cycle`]
    /// call would do more than advance the clock: the next in-flight
    /// completion, or the first cycle a queued request's bank is ready.
    /// `None` when the channel is drained (any poppable completion counts as
    /// "now", conservatively reported as the current cycle).
    ///
    /// A queued request's bank becoming ready is a safe lower bound on when
    /// scheduling work happens: FR-FCFS only ever schedules a request whose
    /// bank has `ready_at <= now`, so until the minimum such time nothing can
    /// be picked and each cycle is a pure tick.
    pub fn next_event(&self) -> Option<u64> {
        if !self.completed.is_empty() {
            return Some(self.now);
        }
        let mut at: Option<u64> = self.in_flight.iter().map(|&(end, _)| end).min();
        for q in &self.queue {
            // A bank already ready means work next cycle.
            let ready = self.banks[q.bank].ready_at.max(self.now + 1);
            at = Some(at.map_or(ready, |a| a.min(ready)));
        }
        at
    }

    /// Pops a completed request, if any.
    pub fn pop_completed(&mut self) -> Option<DramRequest> {
        self.completed.pop_front()
    }

    /// True when no work is queued, in flight, or waiting to be popped.
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty() && self.completed.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Serializes the full channel state: clock, banks, queues, in-flight
    /// transfers, completions, bus/activate timestamps and counters. The
    /// config is not serialized (pinned by the snapshot container's config
    /// hash).
    pub fn snap_save(&self, w: &mut SnapshotWriter) {
        w.u64(self.now);
        w.usize(self.banks.len());
        for b in &self.banks {
            b.open_row.save(w);
            w.u64(b.ready_at);
            w.u64(b.activated_at);
        }
        w.usize(self.queue.len());
        for q in &self.queue {
            q.req.save(w);
        }
        self.in_flight.save(w);
        self.completed.save(w);
        w.u64(self.bus_free_at);
        w.u64(self.last_activate);
        w.u64(self.stats.bus_busy_cycles);
        w.u64(self.stats.total_cycles);
        w.u64(self.stats.row_hits);
        w.u64(self.stats.row_misses);
        w.u64(self.stats.reads);
        w.u64(self.stats.writes);
        w.u64(self.stats.bursts);
    }

    /// Restores channel state in place into a channel built with the same
    /// config.
    ///
    /// # Errors
    ///
    /// Fails when the serialized bank count disagrees with this channel's
    /// config or the bytes are malformed.
    pub fn snap_load(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapError> {
        self.now = r.u64()?;
        let n_banks = r.usize()?;
        if n_banks != self.banks.len() {
            return Err(SnapError::Invariant {
                what: "dram bank count mismatch",
            });
        }
        for b in &mut self.banks {
            b.open_row = Option::<u64>::load(r)?;
            b.ready_at = r.u64()?;
            b.activated_at = r.u64()?;
        }
        let qlen = r.seq_len("VecDeque", 1)?;
        self.queue.clear();
        for _ in 0..qlen {
            let req = DramRequest::load(r)?;
            let (bank, row) = self.bank_and_row(req.addr);
            self.queue.push_back(QueuedReq { req, bank, row });
        }
        if self.queue.len() > self.cfg.queue_capacity {
            return Err(SnapError::Invariant {
                what: "dram queue exceeds capacity",
            });
        }
        self.in_flight = Vec::<(u64, DramRequest)>::load(r)?;
        self.completed = VecDeque::<DramRequest>::load(r)?;
        self.bus_free_at = r.u64()?;
        self.last_activate = r.u64()?;
        self.stats.bus_busy_cycles = r.u64()?;
        self.stats.total_cycles = r.u64()?;
        self.stats.row_hits = r.u64()?;
        self.stats.row_misses = r.u64()?;
        self.stats.reads = r.u64()?;
        self.stats.writes = r.u64()?;
        self.stats.bursts = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(ch: &mut DramChannel, max_cycles: u64) -> Vec<DramRequest> {
        let mut out = Vec::new();
        for _ in 0..max_cycles {
            ch.cycle();
            while let Some(r) = ch.pop_completed() {
                out.push(r);
            }
            if ch.idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_read_completes_with_activate_latency() {
        let mut ch = DramChannel::new(DramConfig::isca2015());
        ch.push(DramRequest {
            id: 7,
            addr: 4096,
            bursts: 4,
            is_write: false,
        })
        .unwrap();
        let done = drain(&mut ch, 200);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 7);
        let s = ch.stats();
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 0);
        assert_eq!(s.bursts, 4);
        assert_eq!(s.bus_busy_cycles, 8);
    }

    #[test]
    fn row_hits_detected_for_same_row() {
        let mut ch = DramChannel::new(DramConfig::isca2015());
        // Same bank (line % 16): lines 0 and 16 share bank 0 and row 0/1.
        // Use two lines in the same 2KB row: lines 0 and 16 -> addr 0 and
        // 2048 are different rows. Same-row pairs on one bank need addresses
        // 0 and... bank = line % 16, row = addr / 2048; line 0 (addr 0) and
        // line 16 (addr 2048) are bank 0 but rows 0 and 1. With 16 banks and
        // 2KB rows a row only holds one line per bank out of each 32KB span;
        // so pick addr 0 and a repeat of addr 0's line... simplest: issue
        // the same line twice.
        for id in 0..2 {
            ch.push(DramRequest {
                id,
                addr: 0,
                bursts: 4,
                is_write: false,
            })
            .unwrap();
        }
        let done = drain(&mut ch, 400);
        assert_eq!(done.len(), 2);
        let s = ch.stats();
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 1);
    }

    #[test]
    fn compressed_transfer_uses_fewer_bus_cycles() {
        let mut a = DramChannel::new(DramConfig::isca2015());
        let mut b = DramChannel::new(DramConfig::isca2015());
        for i in 0..8u64 {
            a.push(DramRequest {
                id: i,
                addr: i * 128,
                bursts: 4,
                is_write: false,
            })
            .unwrap();
            b.push(DramRequest {
                id: i,
                addr: i * 128,
                bursts: 1,
                is_write: false,
            })
            .unwrap();
        }
        let da = drain(&mut a, 2000);
        let db = drain(&mut b, 2000);
        assert_eq!(da.len(), 8);
        assert_eq!(db.len(), 8);
        assert_eq!(a.stats().bus_busy_cycles, 8 * 4 * 2);
        assert_eq!(b.stats().bus_busy_cycles, 8 * 2);
        assert!(b.stats().bus_utilization() < a.stats().bus_utilization());
    }

    #[test]
    fn bandwidth_scaling_changes_burst_cycles() {
        let base = DramConfig::isca2015();
        assert_eq!(base.with_bandwidth_scale(2.0).burst_cycles, 1);
        assert_eq!(base.with_bandwidth_scale(0.5).burst_cycles, 4);
        assert_eq!(base.with_bandwidth_scale(1.0).burst_cycles, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_scale_panics() {
        let _ = DramConfig::isca2015().with_bandwidth_scale(0.0);
    }

    /// The horizon must be exact: ticking per-cycle up to (but not
    /// including) the reported event finds only pure clock ticks, and the
    /// event cycle itself does real work.
    #[test]
    fn next_event_matches_per_cycle_simulation() {
        let mut ch = DramChannel::new(DramConfig::isca2015());
        assert_eq!(ch.next_event(), None);
        ch.push(DramRequest {
            id: 1,
            addr: 4096,
            bursts: 4,
            is_write: false,
        })
        .unwrap();
        // Queued request on a ready bank: event is the very next cycle.
        assert_eq!(ch.next_event(), Some(1));
        ch.cycle(); // schedules; transfer now in flight
        let horizon = ch.next_event().expect("in-flight completion pending");
        let mut reference = DramChannel::new(DramConfig::isca2015());
        reference
            .push(DramRequest {
                id: 1,
                addr: 4096,
                bursts: 4,
                is_write: false,
            })
            .unwrap();
        reference.cycle();
        // Per-cycle reference: nothing completes before the horizon...
        while reference.stats().total_cycles + 1 < horizon {
            reference.cycle();
            assert!(reference.pop_completed().is_none());
        }
        // ...and the completion pops exactly at it.
        reference.cycle();
        assert!(reference.pop_completed().is_some());
        // Gap-skipping to just before the horizon then cycling once is
        // bit-identical: same completion, same counters.
        ch.tick_gap(horizon - 1 - ch.stats().total_cycles);
        ch.cycle();
        assert!(ch.pop_completed().is_some());
        assert_eq!(ch.stats(), reference.stats());
        assert_eq!(ch.next_event(), None);
    }

    #[test]
    fn next_event_respects_busy_bank_for_queued_request() {
        let mut ch = DramChannel::new(DramConfig::isca2015());
        ch.push(DramRequest {
            id: 0,
            addr: 0,
            bursts: 4,
            is_write: true,
        })
        .unwrap();
        // Complete and pop the write so only bank recovery remains.
        loop {
            ch.cycle();
            if ch.pop_completed().is_some() {
                break;
            }
        }
        // Same bank (same line address): the read cannot be scheduled until
        // the bank's write recovery (tWR) elapses.
        ch.push(DramRequest {
            id: 1,
            addr: 0,
            bursts: 1,
            is_write: false,
        })
        .unwrap();
        let now = ch.stats().total_cycles;
        let horizon = ch.next_event().expect("queued read pending");
        assert!(horizon > now + 1, "bank recovery must push the event out");
        // Skipping the gap then cycling once schedules the read exactly at
        // the horizon.
        ch.tick_gap(horizon - 1 - now);
        assert_eq!(ch.stats().reads, 0);
        ch.cycle();
        assert_eq!(ch.stats().reads, 1);
        assert_eq!(ch.stats().total_cycles, horizon);
    }

    #[test]
    fn queue_back_pressure() {
        let mut cfg = DramConfig::isca2015();
        cfg.queue_capacity = 2;
        let mut ch = DramChannel::new(cfg);
        let req = |id| DramRequest {
            id,
            addr: 0,
            bursts: 1,
            is_write: false,
        };
        assert!(ch.push(req(0)).is_ok());
        assert!(ch.push(req(1)).is_ok());
        assert!(!ch.can_accept());
        assert_eq!(ch.push(req(2)).unwrap_err().id, 2);
    }

    #[test]
    fn writes_counted_and_recover() {
        let mut ch = DramChannel::new(DramConfig::isca2015());
        ch.push(DramRequest {
            id: 0,
            addr: 0,
            bursts: 2,
            is_write: true,
        })
        .unwrap();
        let done = drain(&mut ch, 300);
        assert_eq!(done.len(), 1);
        assert_eq!(ch.stats().writes, 1);
        assert_eq!(ch.stats().reads, 0);
    }

    #[test]
    fn fr_fcfs_prefers_row_hit() {
        let mut ch = DramChannel::new(DramConfig::isca2015());
        // Open row for bank of addr 0 by completing one access first.
        ch.push(DramRequest {
            id: 0,
            addr: 0,
            bursts: 1,
            is_write: false,
        })
        .unwrap();
        let _ = drain(&mut ch, 200);
        // Now queue: a row-miss (same bank 0, different row: addr 2048*16)
        // then a row-hit (addr 64, same line 0 row).
        ch.push(DramRequest {
            id: 1,
            addr: 2048 * 16,
            bursts: 1,
            is_write: false,
        })
        .unwrap();
        ch.push(DramRequest {
            id: 2,
            addr: 0,
            bursts: 1,
            is_write: false,
        })
        .unwrap();
        let done = drain(&mut ch, 500);
        assert_eq!(done.len(), 2);
        // Row-hit id 2 should complete first despite arriving later.
        assert_eq!(done[0].id, 2);
        assert_eq!(done[1].id, 1);
    }
}
