//! Functional backing memory and the per-line compression map.

use crate::{line_base, LINE_SIZE};
use caba_compress::{Algorithm, BestOfAll, CompressedLine};
use caba_stats::FxHashMap;

const PAGE_SIZE: usize = 4096;

/// Sparse byte-addressable memory holding the functional contents of global
/// memory. Unwritten bytes read as zero.
///
/// # Examples
///
/// ```
/// use caba_mem::FuncMem;
/// let mut m = FuncMem::new();
/// m.write_u64(0x1000, 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x1000), 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x2000), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct FuncMem {
    // FxHash: page lookups are on every load/store path of the functional
    // model; iteration order never reaches architectural state.
    pages: FxHashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl FuncMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_of(addr: u64) -> (u64, usize) {
        (addr / PAGE_SIZE as u64, (addr % PAGE_SIZE as u64) as usize)
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (page, off) = Self::page_of(addr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let (page, off) = Self::page_of(addr);
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))[off] = v;
    }

    /// Reads `n` (≤ 8) bytes little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn read_le(&self, addr: u64, n: usize) -> u64 {
        assert!(n <= 8, "read width {n} exceeds 8 bytes");
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n` (≤ 8) bytes of `v` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn write_le(&mut self, addr: u64, n: usize, v: u64) {
        assert!(n <= 8, "write width {n} exceeds 8 bytes");
        for i in 0..n {
            self.write_u8(addr + i as u64, (v >> (8 * i)) as u8);
        }
    }

    /// Reads a 64-bit value.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a 64-bit value.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_le(addr, 8, v)
    }

    /// Reads a 32-bit value.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Writes a 32-bit value.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_le(addr, 4, v as u64)
    }

    /// Copies a byte slice into memory ("cudaMemcpy host→device").
    pub fn load_image(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// Reads the full cache line containing `addr`.
    pub fn read_line(&self, addr: u64) -> Vec<u8> {
        let mut out = vec![0u8; LINE_SIZE];
        self.read_line_into(addr, (&mut out[..]).try_into().expect("LINE_SIZE"));
        out
    }

    /// Reads the full cache line containing `addr` into a caller-provided
    /// buffer (no allocation). Pages are line-aligned, so this is a single
    /// page lookup plus a copy.
    pub fn read_line_into(&self, addr: u64, out: &mut [u8; LINE_SIZE]) {
        const _: () = assert!(
            PAGE_SIZE.is_multiple_of(LINE_SIZE),
            "lines never span pages"
        );
        let base = line_base(addr);
        let (page, off) = Self::page_of(base);
        match self.pages.get(&page) {
            Some(p) => out.copy_from_slice(&p[off..off + LINE_SIZE]),
            None => out.fill(0),
        }
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

impl caba_stats::snap::SnapshotState for FuncMem {
    /// Pages are serialized in ascending page order so the encoding is
    /// hasher-independent.
    fn save(&self, w: &mut caba_stats::snap::SnapshotWriter) {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            w.u64(k);
            w.raw(&self.pages[&k][..]);
        }
    }

    fn load(
        r: &mut caba_stats::snap::SnapshotReader<'_>,
    ) -> Result<Self, caba_stats::snap::SnapError> {
        let n = r.seq_len("func pages", 8 + PAGE_SIZE)?;
        let mut mem = FuncMem::new();
        for _ in 0..n {
            let k = r.u64()?;
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page.copy_from_slice(r.raw(PAGE_SIZE)?);
            mem.pages.insert(k, page);
        }
        Ok(mem)
    }
}

/// Which compressor a [`CompressionMap`] applies per line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineCompressor {
    /// A single fixed algorithm.
    Fixed(Algorithm),
    /// The idealized best-of-all selector (§6.3).
    BestOfAll,
}

impl LineCompressor {
    /// Compresses one line's bytes via static dispatch — no
    /// `Box<dyn Compressor>` on the per-line-access path.
    pub fn compress_line(self, bytes: &[u8]) -> Option<CompressedLine> {
        match self {
            LineCompressor::Fixed(a) => a.compress_line(bytes),
            LineCompressor::BestOfAll => BestOfAll::new().compress(bytes),
        }
    }
}

/// Caches the compressed representation of each line of a [`FuncMem`].
///
/// The timing model asks this map how many DRAM bursts / interconnect flits
/// a line transfer needs; the answer comes from genuinely compressing the
/// line's current bytes. Stores invalidate the affected line so stale sizes
/// are never used.
pub struct CompressionMap {
    compressor: LineCompressor,
    // FxHash: consulted on every size-oracle query; `audit_round_trips`
    // sorts its result, so iteration order stays invisible.
    lines: FxHashMap<u64, Option<CompressedLine>>,
}

impl std::fmt::Debug for CompressionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressionMap")
            .field("compressor", &self.compressor)
            .field("cached_lines", &self.lines.len())
            .finish()
    }
}

impl CompressionMap {
    /// Creates a map using `compressor` for every line.
    pub fn new(compressor: LineCompressor) -> Self {
        CompressionMap {
            compressor,
            lines: FxHashMap::default(),
        }
    }

    /// The configured compressor choice.
    pub fn compressor(&self) -> LineCompressor {
        self.compressor
    }

    /// The compressed form of the line containing `addr` (computed on first
    /// use, then cached). `None` when the line is incompressible.
    pub fn compressed(&mut self, mem: &FuncMem, addr: u64) -> Option<&CompressedLine> {
        let base = line_base(addr);
        if !self.lines.contains_key(&base) {
            let mut bytes = [0u8; LINE_SIZE];
            mem.read_line_into(base, &mut bytes);
            let c = self.compressor.compress_line(&bytes);
            self.lines.insert(base, c);
        }
        self.lines.get(&base).and_then(|o| o.as_ref())
    }

    /// The cached entry for the line containing `addr`, without computing:
    /// `None` = never computed, `Some(None)` = computed and incompressible.
    /// Overlay views use this to layer per-cycle deltas over the shared map.
    pub fn peek(&self, addr: u64) -> Option<&Option<CompressedLine>> {
        self.lines.get(&line_base(addr))
    }

    /// Installs a computed entry for the line containing `addr`, replacing
    /// any cached form. Used when replaying per-cycle overlay deltas.
    pub fn insert_cached(&mut self, addr: u64, c: Option<CompressedLine>) {
        self.lines.insert(line_base(addr), c);
    }

    /// DRAM bursts to transfer the line containing `addr` in compressed form.
    pub fn line_bursts(&mut self, mem: &FuncMem, addr: u64) -> u32 {
        match self.compressed(mem, addr) {
            Some(c) => c.bursts() as u32,
            None => (LINE_SIZE / caba_compress::BURST_BYTES) as u32,
        }
    }

    /// Invalidates the cached form of the line containing `addr` (call on
    /// every store to the line).
    pub fn invalidate(&mut self, addr: u64) {
        self.lines.remove(&line_base(addr));
    }

    /// Base addresses of lines with a cached *compressible* form.
    pub fn cached_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.lines
            .iter()
            .filter_map(|(a, c)| c.is_some().then_some(*a))
    }

    /// Mutable access to a cached compressed form, if present. Exists for
    /// the fault-injection harness, which flips payload bits in place to
    /// model metadata corruption; normal timing code never mutates entries.
    pub fn cached_mut(&mut self, addr: u64) -> Option<&mut CompressedLine> {
        self.lines
            .get_mut(&line_base(addr))
            .and_then(|o| o.as_mut())
    }

    /// Round-trip-verifies up to `limit` cached compressed forms against the
    /// functional memory (0 means all), returning the base addresses whose
    /// cached form no longer decompresses to the line's current bytes —
    /// i.e. stale entries (a store raced past [`CompressionMap::invalidate`])
    /// or corrupted payloads.
    pub fn audit_round_trips(&self, mem: &FuncMem, limit: usize) -> Vec<u64> {
        let mut bad = Vec::new();
        for (i, (base, cached)) in self.lines.iter().enumerate() {
            if limit != 0 && i >= limit {
                break;
            }
            if let Some(c) = cached {
                if !c.round_trips_to(&mem.read_line(*base)) {
                    bad.push(*base);
                }
            }
        }
        bad.sort_unstable();
        bad
    }

    /// Drops every cached form.
    pub fn clear(&mut self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let m = FuncMem::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u64(0xFFFF_0000), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut m = FuncMem::new();
        m.write_le(100, 1, 0xAB);
        m.write_le(101, 2, 0x1234);
        m.write_le(103, 4, 0xDEAD_BEEF);
        assert_eq!(m.read_le(100, 1), 0xAB);
        assert_eq!(m.read_le(101, 2), 0x1234);
        assert_eq!(m.read_le(103, 4), 0xDEAD_BEEF);
    }

    #[test]
    fn cross_page_access() {
        let mut m = FuncMem::new();
        let addr = PAGE_SIZE as u64 - 4;
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn image_and_line_read() {
        let mut m = FuncMem::new();
        let img: Vec<u8> = (0..=255).collect();
        m.load_image(256, &img);
        assert_eq!(m.read_bytes(256, 256), img);
        let line = m.read_line(300);
        assert_eq!(line.len(), LINE_SIZE);
        assert_eq!(line[0], m.read_u8(line_base(300)));
    }

    #[test]
    #[should_panic(expected = "exceeds 8")]
    fn oversized_read_panics() {
        FuncMem::new().read_le(0, 9);
    }

    #[test]
    fn compression_map_caches_and_invalidates() {
        let mut mem = FuncMem::new();
        // Compressible line: small deltas.
        for i in 0..32u32 {
            mem.write_u32(i as u64 * 4, 0x100 + i);
        }
        let mut map = CompressionMap::new(LineCompressor::Fixed(Algorithm::Bdi));
        let b1 = map.line_bursts(&mem, 0);
        assert!(b1 < 4, "compressible line should need < 4 bursts");
        // Mutate the line: without invalidation the stale size persists...
        mem.write_u32(0, 0xDEAD_BEEF);
        assert_eq!(map.line_bursts(&mem, 0), b1);
        // ...after invalidation the size is recomputed.
        map.invalidate(0);
        let b2 = map.line_bursts(&mem, 0);
        assert!(b2 >= b1);
    }

    #[test]
    fn incompressible_line_is_four_bursts() {
        let mut mem = FuncMem::new();
        let mut x = 1u64;
        for i in 0..16 {
            x = x.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(999);
            mem.write_u64(i * 8, x);
        }
        let mut map = CompressionMap::new(LineCompressor::Fixed(Algorithm::Bdi));
        assert_eq!(map.line_bursts(&mem, 0), 4);
    }

    #[test]
    fn round_trip_audit_flags_stale_entries() {
        let mut mem = FuncMem::new();
        for i in 0..32u32 {
            mem.write_u32(i as u64 * 4, 0x100 + i);
        }
        let mut map = CompressionMap::new(LineCompressor::Fixed(Algorithm::Bdi));
        let _ = map.compressed(&mem, 0);
        assert!(map.audit_round_trips(&mem, 0).is_empty());
        assert_eq!(map.cached_lines().collect::<Vec<_>>(), vec![0]);
        // A store that forgets to invalidate leaves a stale cached form the
        // audit must flag...
        mem.write_u32(0, 0xDEAD_BEEF);
        assert_eq!(map.audit_round_trips(&mem, 0), vec![0]);
        // ...and invalidation clears the violation.
        map.invalidate(0);
        assert!(map.audit_round_trips(&mem, 0).is_empty());
    }

    #[test]
    fn best_of_all_map() {
        let mut mem = FuncMem::new();
        // Zero line: 1 burst under best-of-all.
        let mut map = CompressionMap::new(LineCompressor::BestOfAll);
        assert_eq!(map.line_bursts(&mem, 4096), 1);
        assert_eq!(map.compressor(), LineCompressor::BestOfAll);
        mem.write_u8(4096, 1);
        map.clear();
        let _ = map.line_bursts(&mem, 4096);
    }
}
