//! Property-based tests: every compressor must be lossless on every input it
//! accepts, across data profiles from all-zero to full-entropy. Driven by
//! the in-repo deterministic property harness (`caba_stats::prop`).

use caba_compress::{average_best_ratio, average_burst_ratio, Algorithm, BestOfAll, LINE_SIZE};
use caba_stats::prop;
use caba_stats::Rng64;

/// Produces 128-byte lines across four compressibility regimes.
fn random_line(rng: &mut Rng64) -> Vec<u8> {
    match rng.range_u64(4) {
        // Raw bytes (usually incompressible).
        0 => prop::bytes(rng, LINE_SIZE),
        // Low-dynamic-range 32-bit values around a random base.
        1 => {
            let base = rng.next_u64() as u32;
            let mut line = Vec::with_capacity(LINE_SIZE);
            for _ in 0..LINE_SIZE / 4 {
                let off = rng.range_u64(256) as u32;
                line.extend_from_slice(&base.wrapping_add(off).to_le_bytes());
            }
            line
        }
        // Sparse: mostly zeros with a few random words.
        2 => {
            let mut line = Vec::with_capacity(LINE_SIZE);
            for _ in 0..LINE_SIZE / 4 {
                let w = if rng.chance(0.1) {
                    rng.next_u64() as u32
                } else {
                    0u32
                };
                line.extend_from_slice(&w.to_le_bytes());
            }
            line
        }
        // Dictionary-friendly: words drawn from a tiny pool.
        _ => {
            let pool: Vec<u32> = (0..4).map(|_| rng.next_u64() as u32).collect();
            let mut line = Vec::with_capacity(LINE_SIZE);
            for _ in 0..LINE_SIZE / 4 {
                let p = rng.range_u64(4) as usize;
                line.extend_from_slice(&pool[p].to_le_bytes());
            }
            line
        }
    }
}

const CASES: u32 = 256;

#[test]
fn bdi_round_trip() {
    prop::check(0xBD1, CASES, |rng| {
        let line = random_line(rng);
        let c = Algorithm::Bdi.compressor();
        if let Some(z) = c.compress(&line) {
            assert!(z.size_bytes() < line.len());
            assert_eq!(c.decompress(&z).unwrap(), line);
        }
    });
}

#[test]
fn fpc_round_trip() {
    prop::check(0xF9C, CASES, |rng| {
        let line = random_line(rng);
        let c = Algorithm::Fpc.compressor();
        if let Some(z) = c.compress(&line) {
            assert!(z.size_bytes() < line.len());
            assert_eq!(c.decompress(&z).unwrap(), line);
        }
    });
}

#[test]
fn cpack_round_trip() {
    prop::check(0xC9AC4, CASES, |rng| {
        let line = random_line(rng);
        let c = Algorithm::CPack.compressor();
        if let Some(z) = c.compress(&line) {
            assert!(z.size_bytes() < line.len());
            assert_eq!(c.decompress(&z).unwrap(), line);
        }
    });
}

#[test]
fn best_of_all_never_worse_than_any() {
    prop::check(0xBE57, CASES, |rng| {
        let line = random_line(rng);
        let best = BestOfAll::new().compress(&line);
        for a in Algorithm::ALL {
            if let Some(z) = a.compressor().compress(&line) {
                let b = best.as_ref().expect("best must exist if any succeeds");
                assert!(b.size_bytes() <= z.size_bytes());
            }
        }
    });
}

/// The allocation-free scan path must agree exactly with the payload-building
/// compressor — same Some/None verdict, same size — for every algorithm, so
/// `BestOfAll` can pick a winner from scans without changing behavior.
#[test]
fn scan_size_matches_compress() {
    prop::check(0x5CA9, CASES, |rng| {
        let line = random_line(rng);
        for a in Algorithm::ALL {
            assert_eq!(
                a.scan_line_size(&line),
                a.compress_line(&line).map(|z| z.size_bytes()),
                "{a} scan/compress disagree"
            );
        }
        // BestOfAll must match the reference construct-everything selector,
        // including the first-minimal tie-break over Algorithm::ALL order.
        let reference = Algorithm::ALL
            .iter()
            .filter_map(|a| a.compress_line(&line))
            .min_by_key(|c| c.size_bytes());
        assert_eq!(BestOfAll::new().compress(&line), reference);
    });
}

#[test]
fn burst_counts_within_range() {
    prop::check(0xB425, CASES, |rng| {
        let line = random_line(rng);
        for a in Algorithm::ALL {
            if let Some(z) = a.compressor().compress(&line) {
                assert!(z.bursts() >= 1);
                assert!(z.bursts() <= LINE_SIZE / 32);
                assert!(z.burst_ratio() >= 1.0);
            }
        }
    });
}

#[test]
fn average_ratios_at_least_one() {
    prop::check(0xA7EA, 64, |rng| {
        let n = 1 + rng.range_u64(7) as usize;
        let lines: Vec<Vec<u8>> = (0..n).map(|_| random_line(rng)).collect();
        for a in Algorithm::ALL {
            assert!(average_burst_ratio(a, &lines) >= 1.0 - 1e-12);
        }
        let best = average_best_ratio(&lines);
        for a in Algorithm::ALL {
            assert!(best >= average_burst_ratio(a, &lines) - 1e-9);
        }
    });
}

/// Corrupting any compressed line (via the fault-injection bit-flip
/// strategy's core idea: flip a payload bit) must never produce a line that
/// silently round-trips to the original — either decompression fails or the
/// output differs, which is exactly what `round_trips_to` reports.
#[test]
fn flipped_payload_bit_never_round_trips_silently() {
    prop::check(0xF11B, CASES, |rng| {
        let line = random_line(rng);
        for a in Algorithm::ALL {
            if let Some(z) = a.compressor().compress(&line) {
                assert!(z.round_trips_to(&line), "uncorrupted line must verify");
                if z.payload.is_empty() {
                    continue;
                }
                let mut bad = z.clone();
                let bit = rng.range_u64(bad.payload.len() as u64 * 8) as usize;
                bad.payload[bit / 8] ^= 1 << (bit % 8);
                // A flip may hit a dead padding bit; when it does the line
                // must still verify, never crash.
                let _ = bad.round_trips_to(&line);
            }
        }
    });
}
