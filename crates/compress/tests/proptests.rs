//! Property-based tests: every compressor must be lossless on every input it
//! accepts, across data profiles from all-zero to full-entropy.

use caba_compress::{average_best_ratio, average_burst_ratio, Algorithm, BestOfAll, LINE_SIZE};
use proptest::prelude::*;

/// Strategy producing 128-byte lines across compressibility regimes.
fn line_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Raw bytes (usually incompressible).
        proptest::collection::vec(any::<u8>(), LINE_SIZE),
        // Low-dynamic-range 32-bit values around a random base.
        (any::<u32>(), proptest::collection::vec(0u32..256, LINE_SIZE / 4)).prop_map(
            |(base, offs)| {
                let mut line = Vec::with_capacity(LINE_SIZE);
                for o in offs {
                    line.extend_from_slice(&base.wrapping_add(o).to_le_bytes());
                }
                line
            }
        ),
        // Sparse: mostly zeros with a few random words.
        proptest::collection::vec(prop_oneof![9 => Just(0u32), 1 => any::<u32>()], LINE_SIZE / 4)
            .prop_map(|ws| {
                let mut line = Vec::with_capacity(LINE_SIZE);
                for w in ws {
                    line.extend_from_slice(&w.to_le_bytes());
                }
                line
            }),
        // Dictionary-friendly: words drawn from a tiny pool.
        (
            proptest::collection::vec(any::<u32>(), 4),
            proptest::collection::vec(0usize..4, LINE_SIZE / 4)
        )
            .prop_map(|(pool, picks)| {
                let mut line = Vec::with_capacity(LINE_SIZE);
                for p in picks {
                    line.extend_from_slice(&pool[p].to_le_bytes());
                }
                line
            }),
    ]
}

proptest! {
    #[test]
    fn bdi_round_trip(line in line_strategy()) {
        let c = Algorithm::Bdi.compressor();
        if let Some(z) = c.compress(&line) {
            prop_assert!(z.size_bytes() < line.len());
            prop_assert_eq!(c.decompress(&z).unwrap(), line);
        }
    }

    #[test]
    fn fpc_round_trip(line in line_strategy()) {
        let c = Algorithm::Fpc.compressor();
        if let Some(z) = c.compress(&line) {
            prop_assert!(z.size_bytes() < line.len());
            prop_assert_eq!(c.decompress(&z).unwrap(), line);
        }
    }

    #[test]
    fn cpack_round_trip(line in line_strategy()) {
        let c = Algorithm::CPack.compressor();
        if let Some(z) = c.compress(&line) {
            prop_assert!(z.size_bytes() < line.len());
            prop_assert_eq!(c.decompress(&z).unwrap(), line);
        }
    }

    #[test]
    fn best_of_all_never_worse_than_any(line in line_strategy()) {
        let best = BestOfAll::new().compress(&line);
        for a in Algorithm::ALL {
            if let Some(z) = a.compressor().compress(&line) {
                let b = best.as_ref().expect("best must exist if any succeeds");
                prop_assert!(b.size_bytes() <= z.size_bytes());
            }
        }
    }

    #[test]
    fn burst_counts_within_range(line in line_strategy()) {
        for a in Algorithm::ALL {
            if let Some(z) = a.compressor().compress(&line) {
                prop_assert!(z.bursts() >= 1);
                prop_assert!(z.bursts() <= LINE_SIZE / 32);
                prop_assert!(z.burst_ratio() >= 1.0);
            }
        }
    }

    #[test]
    fn average_ratios_at_least_one(lines in proptest::collection::vec(line_strategy(), 1..8)) {
        for a in Algorithm::ALL {
            prop_assert!(average_burst_ratio(a, &lines) >= 1.0 - 1e-12);
        }
        let best = average_best_ratio(&lines);
        for a in Algorithm::ALL {
            prop_assert!(best >= average_burst_ratio(a, &lines) - 1e-9);
        }
    }
}
