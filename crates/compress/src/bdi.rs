//! Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012), the
//! algorithm the paper's main CABA case study maps onto assist warps (§4.1).
//!
//! A cache line is viewed as fixed-size values (8-, 4- or 2-byte). Lines with
//! low dynamic range are stored as one explicit base plus an implicit zero
//! base, a base-select mask, and an array of narrow deltas. Decompression is
//! a masked vector addition — exactly the data-parallel shape a 32-wide GPU
//! pipeline executes in a couple of instructions.
//!
//! # Payload layout (what the assist warps read/write)
//!
//! ```text
//! Zeros   : []                                     (0 bytes in line)
//! Rep8    : [value: 8B LE]
//! Bv/Dd   : [mask: ceil(n/8) B, LSB-first; bit i=1 means value i uses the
//!            implicit zero base]
//!           [base: v bytes LE]
//!           [delta_0 .. delta_{n-1}: d bytes LE each, two's complement]
//! ```
//!
//! For the paper's Figure 5 (64-byte line from PVC, 8-byte values, 1-byte
//! deltas) this layout gives exactly 1 + 8 + 8 = 17 bytes with mask `0x55` —
//! reproduced in the tests below.

use crate::bits::{fits_signed, sign_extend};
use crate::{Algorithm, CompressedLine, Compressor, DecompressError};

/// One BDI encoding: the value size / delta size pair (plus the two special
/// cases), as stored in the out-of-band metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BdiEncoding {
    /// All-zero line.
    Zeros,
    /// Line is one 8-byte value repeated.
    Rep8,
    /// 8-byte values, 1-byte deltas.
    B8D1,
    /// 8-byte values, 2-byte deltas.
    B8D2,
    /// 8-byte values, 4-byte deltas.
    B8D4,
    /// 4-byte values, 1-byte deltas.
    B4D1,
    /// 4-byte values, 2-byte deltas.
    B4D2,
    /// 2-byte values, 1-byte deltas.
    B2D1,
}

impl BdiEncoding {
    /// All encodings in the order compression tests them (§4.1.2 tests
    /// "several possible encodings... to achieve a high compression ratio").
    pub const ALL: [BdiEncoding; 8] = [
        BdiEncoding::Zeros,
        BdiEncoding::Rep8,
        BdiEncoding::B8D1,
        BdiEncoding::B4D1,
        BdiEncoding::B2D1,
        BdiEncoding::B8D2,
        BdiEncoding::B4D2,
        BdiEncoding::B8D4,
    ];

    /// Stable encoding id stored in metadata.
    pub fn id(self) -> u8 {
        match self {
            BdiEncoding::Zeros => 0,
            BdiEncoding::Rep8 => 1,
            BdiEncoding::B8D1 => 2,
            BdiEncoding::B8D2 => 3,
            BdiEncoding::B8D4 => 4,
            BdiEncoding::B4D1 => 5,
            BdiEncoding::B4D2 => 6,
            BdiEncoding::B2D1 => 7,
        }
    }

    /// Decodes an encoding id.
    pub fn from_id(id: u8) -> Option<BdiEncoding> {
        Some(match id {
            0 => BdiEncoding::Zeros,
            1 => BdiEncoding::Rep8,
            2 => BdiEncoding::B8D1,
            3 => BdiEncoding::B8D2,
            4 => BdiEncoding::B8D4,
            5 => BdiEncoding::B4D1,
            6 => BdiEncoding::B4D2,
            7 => BdiEncoding::B2D1,
            _ => return None,
        })
    }

    /// `(value_size, delta_size)` in bytes for base-delta encodings.
    pub fn sizes(self) -> Option<(usize, usize)> {
        Some(match self {
            BdiEncoding::Zeros | BdiEncoding::Rep8 => return None,
            BdiEncoding::B8D1 => (8, 1),
            BdiEncoding::B8D2 => (8, 2),
            BdiEncoding::B8D4 => (8, 4),
            BdiEncoding::B4D1 => (4, 1),
            BdiEncoding::B4D2 => (4, 2),
            BdiEncoding::B2D1 => (2, 1),
        })
    }

    /// Compressed payload size in bytes for a line of `line_len` bytes.
    pub fn compressed_size(self, line_len: usize) -> usize {
        match self {
            BdiEncoding::Zeros => 0,
            BdiEncoding::Rep8 => 8,
            _ => {
                let (vs, ds) = self.sizes().expect("base-delta encoding");
                let n = line_len / vs;
                n.div_ceil(8) + vs + n * ds
            }
        }
    }
}

/// The Base-Delta-Immediate compressor.
#[derive(Debug, Default)]
pub struct Bdi {
    _private: (),
}

impl Bdi {
    /// Creates a BDI compressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decides the winning encoding for `line` without building a payload.
    ///
    /// Candidate encodings are ranked by their data-independent
    /// [`BdiEncoding::compressed_size`] (ties broken by [`BdiEncoding::ALL`]
    /// order), and the first whose chunked fit-scan passes is returned —
    /// exactly the encoding [`Compressor::compress`] would pick, at a
    /// fraction of the cost: the scan reads the line as `u64` lanes and
    /// touches no heap.
    pub fn scan(&self, line: &[u8]) -> Option<BdiEncoding> {
        debug_assert!(line.len() >= 8 && line.len().is_multiple_of(8));
        if all_zero(line) {
            return Some(BdiEncoding::Zeros);
        }
        // (size, ALL-index) pairs for every encoding that could beat the
        // uncompressed line. Rep8 carries no benefit guard, mirroring
        // `compress_with`.
        let mut ranked = [(0usize, 0usize); 7];
        let mut n = 0;
        for (idx, &enc) in BdiEncoding::ALL.iter().enumerate().skip(1) {
            let size = enc.compressed_size(line.len());
            if enc == BdiEncoding::Rep8 || size < line.len() {
                ranked[n] = (size, idx);
                n += 1;
            }
        }
        let ranked = &mut ranked[..n];
        ranked.sort_unstable();
        for &(_, idx) in ranked.iter() {
            let enc = BdiEncoding::ALL[idx];
            let applies = match enc {
                BdiEncoding::Rep8 => rep8_applies(line),
                BdiEncoding::B8D1 => base_delta_fits::<8, 1>(line),
                BdiEncoding::B8D2 => base_delta_fits::<8, 2>(line),
                BdiEncoding::B8D4 => base_delta_fits::<8, 4>(line),
                BdiEncoding::B4D1 => base_delta_fits::<4, 1>(line),
                BdiEncoding::B4D2 => base_delta_fits::<4, 2>(line),
                BdiEncoding::B2D1 => base_delta_fits::<2, 1>(line),
                BdiEncoding::Zeros => unreachable!("handled above"),
            };
            if applies {
                return Some(enc);
            }
        }
        None
    }

    /// Exact compressed size [`Compressor::compress`] would produce for
    /// `line`, or `None` when incompressible. Never allocates.
    pub fn scan_size(&self, line: &[u8]) -> Option<usize> {
        assert!(
            line.len() >= 8 && line.len().is_multiple_of(8),
            "BDI requires a line size that is a multiple of 8 bytes"
        );
        self.scan(line).map(|e| e.compressed_size(line.len()))
    }

    /// Attempts to compress `line` with one specific encoding.
    ///
    /// Used by the CABA compression subroutine tests to cross-check a single
    /// encoding, and by applications with homogeneous data that "use the
    /// same encoding for most of their cache lines" (§4.1.2).
    pub fn compress_with(&self, line: &[u8], enc: BdiEncoding) -> Option<CompressedLine> {
        let payload = match enc {
            BdiEncoding::Zeros => {
                if line.iter().any(|&b| b != 0) {
                    return None;
                }
                Vec::new()
            }
            BdiEncoding::Rep8 => {
                if line.len() < 8 || !line.len().is_multiple_of(8) {
                    return None;
                }
                let first = &line[..8];
                if !line.chunks_exact(8).all(|c| c == first) {
                    return None;
                }
                first.to_vec()
            }
            _ => {
                let (vs, ds) = enc.sizes().expect("base-delta encoding");
                if !line.len().is_multiple_of(vs) {
                    return None;
                }
                compress_base_delta(line, vs, ds)?
            }
        };
        Some(CompressedLine {
            algorithm: Algorithm::Bdi,
            encoding: enc.id(),
            payload,
            original_len: line.len(),
        })
    }
}

/// OR-reduction over `u64` lanes: branch-free, so the compiler vectorizes
/// it; a 128-byte line is 16 lane loads and one compare.
fn all_zero(line: &[u8]) -> bool {
    let chunks = line.chunks_exact(8);
    let rem = chunks.remainder();
    let mut acc = 0u64;
    for c in chunks {
        acc |= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
    }
    acc == 0 && rem.iter().all(|&b| b == 0)
}

/// True when every 8-byte lane equals the first (the Rep8 encoding).
fn rep8_applies(line: &[u8]) -> bool {
    let mut chunks = line.chunks_exact(8);
    let Some(first) = chunks.next() else {
        return false;
    };
    let f = u64::from_le_bytes(first.try_into().expect("8-byte chunk"));
    chunks.all(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")) == f)
}

/// Decision-only mirror of [`compress_base_delta`] for one `(VS, DS)`
/// encoding: walks the line as `u64` lanes (`VS`-byte values extracted by
/// shift, no per-byte loads, no bounds checks past `chunks_exact`) and
/// reports whether every value fits either the implicit zero base or the
/// first non-fitting value's base in a `DS`-byte signed delta.
fn base_delta_fits<const VS: usize, const DS: usize>(line: &[u8]) -> bool {
    let vbits = VS * 8;
    let dbits = DS * 8;
    let vmask = if VS == 8 {
        u64::MAX
    } else {
        (1u64 << vbits) - 1
    };
    let mut base = 0u64;
    let mut have_base = false;
    for word in line.chunks_exact(8) {
        let w = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        for lane in 0..(8 / VS) {
            let v = (w >> (lane * vbits)) & vmask;
            let sv = sign_extend(v, vbits);
            if fits_signed(sv, dbits) {
                continue; // implicit zero base
            }
            if !have_base {
                base = v; // first non-fitting value becomes the base
                have_base = true;
                continue;
            }
            let d = sign_extend(v.wrapping_sub(base) & vmask, vbits);
            if !fits_signed(d, dbits) {
                return false;
            }
        }
    }
    true
}

fn read_value(line: &[u8], idx: usize, vs: usize) -> u64 {
    let mut v = 0u64;
    for b in 0..vs {
        v |= (line[idx * vs + b] as u64) << (8 * b);
    }
    v
}

fn write_value(out: &mut [u8], idx: usize, vs: usize, v: u64) {
    for b in 0..vs {
        out[idx * vs + b] = (v >> (8 * b)) as u8;
    }
}

fn compress_base_delta(line: &[u8], vs: usize, ds: usize) -> Option<Vec<u8>> {
    let n = line.len() / vs;
    let vbits = vs * 8;
    let dbits = ds * 8;
    let vmask = if vs == 8 {
        u64::MAX
    } else {
        (1u64 << vbits) - 1
    };

    // The explicit base is the first value that does not fit the implicit
    // zero base (§4.1.2: "the first few bytes of the cache line are always
    // used as the base").
    let mut base: Option<u64> = None;
    let mut mask = vec![0u8; n.div_ceil(8)];
    let mut deltas = Vec::with_capacity(n * ds);

    for i in 0..n {
        let v = read_value(line, i, vs);
        let sv = sign_extend(v, vbits);
        let (delta, zero_base) = if fits_signed(sv, dbits) {
            (sv, true)
        } else {
            let b = match base {
                Some(b) => b,
                None => {
                    base = Some(v);
                    v
                }
            };
            let d = sign_extend(v.wrapping_sub(b) & vmask, vbits);
            if !fits_signed(d, dbits) {
                return None;
            }
            (d, false)
        };
        if zero_base {
            mask[i / 8] |= 1 << (i % 8);
        }
        for b in 0..ds {
            deltas.push((delta as u64 >> (8 * b)) as u8);
        }
    }

    let base = base.unwrap_or(0);
    let mut payload = mask;
    for b in 0..vs {
        payload.push((base >> (8 * b)) as u8);
    }
    payload.extend_from_slice(&deltas);
    if payload.len() >= line.len() {
        return None; // no benefit
    }
    Some(payload)
}

impl Compressor for Bdi {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Bdi
    }

    fn compress(&self, line: &[u8]) -> Option<CompressedLine> {
        assert!(
            line.len() >= 8 && line.len().is_multiple_of(8),
            "BDI requires a line size that is a multiple of 8 bytes"
        );
        // The size-only scan picks the same winner the exhaustive
        // `filter_map(..).min_by_key(..)` over ALL encodings would (sizes
        // are data-independent, ties break in ALL order), so only the
        // winning payload is ever materialized.
        let enc = self.scan(line)?;
        let c = self.compress_with(line, enc);
        debug_assert!(c.is_some(), "scan accepted {enc:?}");
        c
    }

    fn decompress_into(
        &self,
        line: &CompressedLine,
        out: &mut [u8],
    ) -> Result<usize, DecompressError> {
        if line.algorithm != Algorithm::Bdi {
            return Err(DecompressError::WrongAlgorithm {
                expected: Algorithm::Bdi,
                found: line.algorithm,
            });
        }
        let enc = BdiEncoding::from_id(line.encoding)
            .ok_or(DecompressError::BadEncoding(line.encoding))?;
        let len = line.original_len;
        if out.len() < len {
            return Err(DecompressError::Malformed("output buffer too small"));
        }
        let out = &mut out[..len];
        match enc {
            BdiEncoding::Zeros => {
                out.fill(0);
                Ok(len)
            }
            BdiEncoding::Rep8 => {
                if line.payload.len() != 8 {
                    return Err(DecompressError::Malformed("Rep8 payload must be 8 bytes"));
                }
                for chunk in out.chunks_mut(8) {
                    chunk.copy_from_slice(&line.payload[..chunk.len()]);
                }
                Ok(len)
            }
            _ => {
                let (vs, ds) = enc.sizes().expect("base-delta encoding");
                let n = len / vs;
                let mask_len = n.div_ceil(8);
                let expect = mask_len + vs + n * ds;
                if line.payload.len() != expect {
                    return Err(DecompressError::Malformed("base-delta payload length"));
                }
                let vbits = vs * 8;
                let vmask = if vs == 8 {
                    u64::MAX
                } else {
                    (1u64 << vbits) - 1
                };
                let mask = &line.payload[..mask_len];
                let mut base = 0u64;
                for b in 0..vs {
                    base |= (line.payload[mask_len + b] as u64) << (8 * b);
                }
                let deltas = &line.payload[mask_len + vs..];
                out.fill(0);
                for i in 0..n {
                    let mut d = 0u64;
                    for b in 0..ds {
                        d |= (deltas[i * ds + b] as u64) << (8 * b);
                    }
                    let d = sign_extend(d, ds * 8) as u64;
                    let zero_base = mask[i / 8] >> (i % 8) & 1 == 1;
                    let v = if zero_base { d } else { base.wrapping_add(d) } & vmask;
                    write_value(out, i, vs, v);
                }
                Ok(len)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact 64-byte cache line of Figure 5 (PageViewCount application).
    fn figure5_line() -> Vec<u8> {
        let values: [u64; 8] = [
            0x00,
            0x8_0001_d000,
            0x10,
            0x8_0001_d008,
            0x20,
            0x8_0001_d010,
            0x30,
            0x8_0001_d018,
        ];
        let mut line = Vec::with_capacity(64);
        for v in values {
            line.extend_from_slice(&v.to_le_bytes());
        }
        line
    }

    #[test]
    fn paper_figure5_example_compresses_to_17_bytes() {
        let line = figure5_line();
        let bdi = Bdi::new();
        let c = bdi.compress(&line).expect("figure 5 line is compressible");
        assert_eq!(
            BdiEncoding::from_id(c.encoding),
            Some(BdiEncoding::B8D1),
            "8-byte base with 1-byte deltas"
        );
        // 1-byte base-select mask + 8-byte base + eight 1-byte deltas = 17 B,
        // saving 47 of the original 64 bytes, exactly as Figure 5 reports.
        assert_eq!(c.size_bytes(), 17);
        assert_eq!(line.len() - c.size_bytes(), 47);
        // The figure's metadata byte: 0x55 — every even-indexed value uses
        // the implicit zero base.
        assert_eq!(c.payload[0], 0x55);
        // The explicit base is 0x8_0001_d000.
        let base = u64::from_le_bytes(c.payload[1..9].try_into().unwrap());
        assert_eq!(base, 0x8_0001_d000);
        // Deltas as drawn in the figure.
        assert_eq!(
            &c.payload[9..],
            &[0x00, 0x00, 0x10, 0x08, 0x20, 0x10, 0x30, 0x18]
        );
        assert_eq!(bdi.decompress(&c).unwrap(), line);
    }

    #[test]
    fn zeros_line() {
        let bdi = Bdi::new();
        let line = vec![0u8; 128];
        let c = bdi.compress(&line).unwrap();
        assert_eq!(BdiEncoding::from_id(c.encoding), Some(BdiEncoding::Zeros));
        assert_eq!(c.size_bytes(), 0);
        assert_eq!(c.bursts(), 1);
        assert_eq!(bdi.decompress(&c).unwrap(), line);
    }

    #[test]
    fn repeated_value_line() {
        let bdi = Bdi::new();
        let mut line = Vec::new();
        for _ in 0..16 {
            line.extend_from_slice(&0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes());
        }
        let c = bdi.compress(&line).unwrap();
        assert_eq!(BdiEncoding::from_id(c.encoding), Some(BdiEncoding::Rep8));
        assert_eq!(c.size_bytes(), 8);
        assert_eq!(bdi.decompress(&c).unwrap(), line);
    }

    #[test]
    fn four_byte_values_with_small_range() {
        let bdi = Bdi::new();
        let mut line = Vec::new();
        for i in 0..32u32 {
            line.extend_from_slice(&(0x0BAD_0000u32 + i * 3).to_le_bytes());
        }
        let c = bdi.compress(&line).unwrap();
        assert_eq!(bdi.decompress(&c).unwrap(), line);
        assert!(c.size_bytes() < line.len() / 2);
    }

    #[test]
    fn negative_deltas_round_trip() {
        let bdi = Bdi::new();
        let mut line = Vec::new();
        for i in 0..16u64 {
            let v = 0x7000_0000_0000_0000u64.wrapping_sub(i * 7);
            line.extend_from_slice(&v.to_le_bytes());
        }
        let c = bdi.compress(&line).unwrap();
        assert_eq!(bdi.decompress(&c).unwrap(), line);
    }

    #[test]
    fn incompressible_returns_none() {
        let bdi = Bdi::new();
        let mut line = Vec::with_capacity(128);
        let mut x: u64 = 1;
        while line.len() < 128 {
            x = x
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(0x14057B7EF767814F);
            line.extend_from_slice(&x.to_le_bytes());
        }
        assert!(bdi.compress(&line).is_none());
    }

    #[test]
    fn compressed_size_formula_matches() {
        for enc in BdiEncoding::ALL {
            if let Some((vs, _)) = enc.sizes() {
                // Build a line guaranteed to compress with this encoding:
                // all values equal to a fixed small pattern.
                let mut line = Vec::new();
                for _ in 0..(128 / vs) {
                    let mut v = vec![0u8; vs];
                    v[0] = 5;
                    line.extend_from_slice(&v);
                }
                let c = Bdi::new().compress_with(&line, enc).unwrap();
                assert_eq!(c.size_bytes(), enc.compressed_size(128), "{enc:?}");
            }
        }
    }

    #[test]
    fn encoding_ids_round_trip() {
        for enc in BdiEncoding::ALL {
            assert_eq!(BdiEncoding::from_id(enc.id()), Some(enc));
        }
        assert_eq!(BdiEncoding::from_id(200), None);
    }

    #[test]
    fn wrong_algorithm_rejected() {
        let c = CompressedLine {
            algorithm: Algorithm::Fpc,
            encoding: 0,
            payload: vec![],
            original_len: 128,
        };
        assert!(matches!(
            Bdi::new().decompress(&c),
            Err(DecompressError::WrongAlgorithm { .. })
        ));
    }

    #[test]
    fn malformed_payload_rejected() {
        let c = CompressedLine {
            algorithm: Algorithm::Bdi,
            encoding: BdiEncoding::B8D1.id(),
            payload: vec![0u8; 3],
            original_len: 64,
        };
        assert!(matches!(
            Bdi::new().decompress(&c),
            Err(DecompressError::Malformed(_))
        ));
        let c = CompressedLine {
            algorithm: Algorithm::Bdi,
            encoding: 99,
            payload: vec![],
            original_len: 64,
        };
        assert!(matches!(
            Bdi::new().decompress(&c),
            Err(DecompressError::BadEncoding(99))
        ));
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_line_size_panics() {
        let _ = Bdi::new().compress(&[0u8; 7]);
    }

    #[test]
    fn two_byte_encoding_works_on_128b_line() {
        // 64 two-byte values, small range: B2D1 applies.
        let mut line = Vec::new();
        for i in 0..64u16 {
            line.extend_from_slice(&(0x4000u16 + i).to_le_bytes());
        }
        let bdi = Bdi::new();
        let c = bdi.compress_with(&line, BdiEncoding::B2D1).unwrap();
        assert_eq!(bdi.decompress(&c).unwrap(), line);
        // mask 8B + base 2B + 64 deltas = 74
        assert_eq!(c.size_bytes(), 74);
    }
}
