//! Frequent Pattern Compression (Alameldeen & Wood, UW-Madison TR 2004).
//!
//! Each 32-bit word is encoded with a 3-bit prefix selecting one of eight
//! patterns. Zero words are run-length encoded. The paper adapts FPC for
//! CABA by keeping the metadata decodable from the head of the line; since
//! our stream is strictly sequential LSB-first, the head of the payload is
//! sufficient to drive decompression (§4.1.3).

use crate::bits::{fits_signed, sign_extend, BitReader, BitWriter};
use crate::{Algorithm, CompressedLine, Compressor, DecompressError};

const PREFIX_BITS: usize = 3;

const P_ZERO_RUN: u64 = 0b000;
const P_SE4: u64 = 0b001;
const P_SE8: u64 = 0b010;
const P_SE16: u64 = 0b011;
const P_HALF_PAD: u64 = 0b100; // low halfword zero, store high 16 bits
const P_TWO_SE8: u64 = 0b101; // two halfwords, each sign-extended byte
const P_REP_BYTE: u64 = 0b110; // word of one repeated byte
const P_RAW: u64 = 0b111;

/// Maximum zero-run length representable by the 4-bit run field.
const MAX_RUN: u64 = 16;

/// The Frequent Pattern Compression compressor.
#[derive(Debug, Default)]
pub struct Fpc {
    _private: (),
}

impl Fpc {
    /// Creates an FPC compressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact compressed size [`Compressor::compress`] would produce for
    /// `line`, or `None` when incompressible.
    ///
    /// A pure counting pass: the line is walked as `u64` lanes split into
    /// two words each, every word classified once (no `BitWriter`, no
    /// heap), accumulating the bit budget the emitting pass would write.
    pub fn scan_size(&self, line: &[u8]) -> Option<usize> {
        assert!(
            !line.is_empty() && line.len().is_multiple_of(4),
            "FPC requires a line size that is a multiple of 4 bytes"
        );
        let mut bits = 0usize;
        let mut run = 0u64;
        let run_bits = PREFIX_BITS + 4;
        let flush_run = |run: &mut u64, bits: &mut usize| {
            if *run > 0 {
                *bits += run_bits;
                *run = 0;
            }
        };
        for_each_word(line, |w| {
            if w == 0 {
                run += 1;
                if run == MAX_RUN {
                    flush_run(&mut run, &mut bits);
                }
            } else {
                flush_run(&mut run, &mut bits);
                bits += PREFIX_BITS + payload_bits(w);
            }
        });
        flush_run(&mut run, &mut bits);
        let size = bits.div_ceil(8);
        (size < line.len()).then_some(size)
    }
}

/// Streams the line's 32-bit words out of `u64` lane loads, so the scan
/// loops carry no per-word bounds checks and no intermediate `Vec<u32>`.
#[inline]
fn for_each_word(line: &[u8], mut f: impl FnMut(u32)) {
    let chunks = line.chunks_exact(8);
    let rem = chunks.remainder();
    for c in chunks {
        let pair = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        f(pair as u32);
        f((pair >> 32) as u32);
    }
    if let Ok(c) = <[u8; 4]>::try_from(rem) {
        f(u32::from_le_bytes(c));
    }
}

/// Payload bits [`encode_word`] appends after the 3-bit prefix for a
/// nonzero word — the same cascade, counting instead of writing.
#[inline]
fn payload_bits(w: u32) -> usize {
    let s = w as i32 as i64;
    if fits_signed(s, 4) {
        4
    } else if fits_signed(s, 8) {
        8
    } else if fits_signed(s, 16)
        || w & 0xFFFF == 0
        || (fits_signed((w & 0xFFFF) as i16 as i64, 8) && fits_signed((w >> 16) as i16 as i64, 8))
    {
        // SE16, half-padded, and two-halfword encodings all carry 16 bits.
        16
    } else if w == (w & 0xFF) * 0x0101_0101 {
        8
    } else {
        32
    }
}

fn encode_word(w: u32, out: &mut BitWriter) {
    let s = w as i32 as i64;
    if fits_signed(s, 4) {
        out.write(P_SE4, PREFIX_BITS);
        out.write(w as u64 & 0xF, 4);
    } else if fits_signed(s, 8) {
        out.write(P_SE8, PREFIX_BITS);
        out.write(w as u64 & 0xFF, 8);
    } else if fits_signed(s, 16) {
        out.write(P_SE16, PREFIX_BITS);
        out.write(w as u64 & 0xFFFF, 16);
    } else if w & 0xFFFF == 0 {
        out.write(P_HALF_PAD, PREFIX_BITS);
        out.write((w >> 16) as u64, 16);
    } else if fits_signed((w & 0xFFFF) as i16 as i64, 8) && fits_signed((w >> 16) as i16 as i64, 8)
    {
        out.write(P_TWO_SE8, PREFIX_BITS);
        out.write(w as u64 & 0xFF, 8);
        out.write((w >> 16) as u64 & 0xFF, 8);
    } else {
        let b = w & 0xFF;
        if w == b * 0x0101_0101 {
            out.write(P_REP_BYTE, PREFIX_BITS);
            out.write(b as u64, 8);
        } else {
            out.write(P_RAW, PREFIX_BITS);
            out.write(w as u64, 32);
        }
    }
}

impl Compressor for Fpc {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Fpc
    }

    fn compress(&self, line: &[u8]) -> Option<CompressedLine> {
        assert!(
            !line.is_empty() && line.len().is_multiple_of(4),
            "FPC requires a line size that is a multiple of 4 bytes"
        );
        let mut w = BitWriter::with_capacity(line.len());
        let mut run = 0u64;
        let flush_run = |run: &mut u64, w: &mut BitWriter| {
            if *run > 0 {
                w.write(P_ZERO_RUN, PREFIX_BITS);
                w.write(*run - 1, 4);
                *run = 0;
            }
        };
        for_each_word(line, |word| {
            if word == 0 {
                run += 1;
                if run == MAX_RUN {
                    flush_run(&mut run, &mut w);
                }
            } else {
                flush_run(&mut run, &mut w);
                encode_word(word, &mut w);
            }
        });
        flush_run(&mut run, &mut w);
        let size = w.byte_len();
        if size >= line.len() {
            return None;
        }
        let (payload, _) = w.finish();
        Some(CompressedLine {
            algorithm: Algorithm::Fpc,
            encoding: 0,
            payload,
            original_len: line.len(),
        })
    }

    fn decompress_into(
        &self,
        line: &CompressedLine,
        out: &mut [u8],
    ) -> Result<usize, DecompressError> {
        if line.algorithm != Algorithm::Fpc {
            return Err(DecompressError::WrongAlgorithm {
                expected: Algorithm::Fpc,
                found: line.algorithm,
            });
        }
        if line.encoding != 0 {
            return Err(DecompressError::BadEncoding(line.encoding));
        }
        let n_words = line.original_len / 4;
        if out.len() < n_words * 4 {
            return Err(DecompressError::Malformed("output buffer too small"));
        }
        let mut filled = 0usize;
        let mut words = WordSink {
            out,
            n: &mut filled,
        };
        let mut r = BitReader::new(&line.payload);
        while words.len() < n_words {
            let prefix = r
                .read(PREFIX_BITS)
                .ok_or(DecompressError::Malformed("truncated prefix"))?;
            let trunc = || DecompressError::Malformed("truncated field");
            match prefix {
                P_ZERO_RUN => {
                    let run = r.read(4).ok_or_else(trunc)? + 1;
                    for _ in 0..run {
                        if words.len() < n_words {
                            words.push(0u32);
                        }
                    }
                }
                P_SE4 => {
                    let v = r.read(4).ok_or_else(trunc)?;
                    words.push(sign_extend(v, 4) as u32);
                }
                P_SE8 => {
                    let v = r.read(8).ok_or_else(trunc)?;
                    words.push(sign_extend(v, 8) as u32);
                }
                P_SE16 => {
                    let v = r.read(16).ok_or_else(trunc)?;
                    words.push(sign_extend(v, 16) as u32);
                }
                P_HALF_PAD => {
                    let v = r.read(16).ok_or_else(trunc)?;
                    words.push((v as u32) << 16);
                }
                P_TWO_SE8 => {
                    let lo = r.read(8).ok_or_else(trunc)?;
                    let hi = r.read(8).ok_or_else(trunc)?;
                    let lo = (sign_extend(lo, 8) as u32) & 0xFFFF;
                    let hi = (sign_extend(hi, 8) as u32) & 0xFFFF;
                    words.push(lo | (hi << 16));
                }
                P_REP_BYTE => {
                    let b = r.read(8).ok_or_else(trunc)? as u32;
                    words.push(b * 0x0101_0101);
                }
                P_RAW => {
                    let v = r.read(32).ok_or_else(trunc)?;
                    words.push(v as u32);
                }
                _ => unreachable!("3-bit prefix"),
            }
        }
        Ok(filled * 4)
    }
}

/// Writes decoded 32-bit words directly into the caller's byte buffer, so
/// decompression needs no intermediate `Vec<u32>`.
struct WordSink<'a> {
    out: &'a mut [u8],
    n: &'a mut usize,
}

impl WordSink<'_> {
    fn len(&self) -> usize {
        *self.n
    }

    fn push(&mut self, w: u32) {
        let off = *self.n * 4;
        self.out[off..off + 4].copy_from_slice(&w.to_le_bytes());
        *self.n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(line: &[u8]) -> Option<usize> {
        let fpc = Fpc::new();
        let c = fpc.compress(line)?;
        assert_eq!(fpc.decompress(&c).unwrap(), line, "round trip");
        Some(c.size_bytes())
    }

    #[test]
    fn zero_line_is_tiny() {
        let size = round_trip(&[0u8; 128]).unwrap();
        // 32 zero words -> two runs of 16 -> 2 * 7 bits = 14 bits = 2 bytes.
        assert_eq!(size, 2);
    }

    #[test]
    fn small_integers_compress_well() {
        let mut line = Vec::new();
        for i in 0..32i32 {
            line.extend_from_slice(&(i - 8).to_le_bytes());
        }
        let size = round_trip(&line).unwrap();
        assert!(size < 40, "size {size}");
    }

    #[test]
    fn pattern_coverage_round_trips() {
        // One word per FPC pattern class, repeated to fill a line.
        let samples: [u32; 8] = [
            0,           // zero run
            7,           // 4-bit SE
            0xFFFF_FF80, // 8-bit SE (-128)
            0x7FFF,      // 16-bit SE
            0xABCD_0000, // halfword padded
            0x0012_FFF0, // two SE bytes (0x12, -16)
            0x4545_4545, // repeated bytes
            0xDEAD_BEEF, // raw
        ];
        let mut line = Vec::new();
        for i in 0..32 {
            line.extend_from_slice(&samples[i % 8].to_le_bytes());
        }
        // Raw words make it big, but the round trip must still hold
        // whenever compression succeeds.
        let fpc = Fpc::new();
        if let Some(c) = fpc.compress(&line) {
            assert_eq!(fpc.decompress(&c).unwrap(), line);
        }
    }

    #[test]
    fn each_pattern_individually() {
        let fpc = Fpc::new();
        for w in [
            0u32,
            1,
            0xFFFF_FFFF, // -1: 4-bit SE
            100,         // 8-bit SE
            1000,        // 16-bit SE
            0x1234_0000, // half pad
            0x0070_0009, // two SE bytes
            0x9999_9999, // repeated byte (not SE)
        ] {
            let mut line = Vec::new();
            for _ in 0..32 {
                line.extend_from_slice(&w.to_le_bytes());
            }
            let c = fpc.compress(&line).unwrap_or_else(|| panic!("{w:#x}"));
            assert_eq!(fpc.decompress(&c).unwrap(), line, "{w:#x}");
        }
    }

    #[test]
    fn incompressible_returns_none() {
        let mut line = Vec::with_capacity(128);
        let mut x: u32 = 0x1234_5679;
        while line.len() < 128 {
            x = x.wrapping_mul(0x9E37_79B9).wrapping_add(0x7F4A_7C15);
            // Keep values outside every compressible pattern.
            let v = x | 0x0101_0000 | 0x8000_0080;
            line.extend_from_slice(&v.to_le_bytes());
        }
        // 3 + 32 bits per word * 32 words = 140 bytes > 128.
        assert!(Fpc::new().compress(&line).is_none());
    }

    #[test]
    fn zero_run_capped_at_16() {
        // 17 zero words then a marker: two run tokens needed.
        let mut line = Vec::new();
        for _ in 0..17 {
            line.extend_from_slice(&0u32.to_le_bytes());
        }
        line.extend_from_slice(&5u32.to_le_bytes());
        for _ in 0..14 {
            line.extend_from_slice(&0u32.to_le_bytes());
        }
        let fpc = Fpc::new();
        let c = fpc.compress(&line).unwrap();
        assert_eq!(fpc.decompress(&c).unwrap(), line);
    }

    #[test]
    fn truncated_payload_is_error() {
        let fpc = Fpc::new();
        let mut line = Vec::new();
        for i in 0..32u32 {
            line.extend_from_slice(&(i * 1000).to_le_bytes());
        }
        let mut c = fpc.compress(&line).unwrap();
        c.payload.truncate(1);
        assert!(matches!(
            fpc.decompress(&c),
            Err(DecompressError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_algorithm_and_encoding_rejected() {
        let fpc = Fpc::new();
        let c = CompressedLine {
            algorithm: Algorithm::Bdi,
            encoding: 0,
            payload: vec![],
            original_len: 128,
        };
        assert!(matches!(
            fpc.decompress(&c),
            Err(DecompressError::WrongAlgorithm { .. })
        ));
        let c = CompressedLine {
            algorithm: Algorithm::Fpc,
            encoding: 3,
            payload: vec![],
            original_len: 128,
        };
        assert!(matches!(
            fpc.decompress(&c),
            Err(DecompressError::BadEncoding(3))
        ));
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn bad_line_size_panics() {
        let _ = Fpc::new().compress(&[0u8; 5]);
    }
}
