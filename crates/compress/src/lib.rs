//! Cache-line compression algorithms for the CABA framework.
//!
//! The paper implements three hardware compression algorithms as assist-warp
//! subroutines: **Base-Delta-Immediate** (BDI, Pekhimenko et al., PACT 2012),
//! **Frequent Pattern Compression** (FPC, Alameldeen & Wood, 2004) and
//! **C-Pack** (Chen et al., TVLSI 2010). This crate provides the reference
//! (software) implementations used by the dedicated-hardware design points
//! (`HW-BDI`, `HW-BDI-Mem`) and as the correctness oracle for the
//! assist-warp ISA subroutines in `caba-core`.
//!
//! Layout conventions follow §4.1.3 of the paper: all metadata needed to
//! decompress (the encoding, base-select masks, dictionary entries) is placed
//! at the head of the compressed line so decompression can be set up
//! up-front; the *encoding id itself* travels out-of-band (in the cache tag /
//! MD-cache metadata), which is why [`CompressedLine::encoding`] is a
//! separate field and not part of [`CompressedLine::payload`].
//!
//! # Examples
//!
//! ```
//! use caba_compress::{Bdi, Compressor};
//!
//! // A low-dynamic-range line compresses well with BDI.
//! let mut line = Vec::new();
//! for i in 0..16u32 {
//!     line.extend_from_slice(&(0x1000u32 + i).to_le_bytes());
//! }
//! let bdi = Bdi::new();
//! let c = bdi.compress(&line).expect("compressible");
//! assert!(c.size_bytes() < line.len());
//! assert_eq!(bdi.decompress(&c).unwrap(), line);
//! ```

pub mod bdi;
pub mod bits;
pub mod cpack;
pub mod fpc;

pub use bdi::{Bdi, BdiEncoding};
pub use cpack::CPack;
pub use fpc::Fpc;

use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use std::fmt;

/// Default cache line size (bytes), matching GPGPU-Sim's 128 B lines and
/// the paper's "1–4 bursts in GDDR5".
pub const LINE_SIZE: usize = 128;

/// Size of one GDDR5 DRAM burst in bytes (§4.1.3: benefits of bandwidth
/// compression come at multiples of a 32 B burst).
pub const BURST_BYTES: usize = 32;

/// Identifies a compression algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// Base-Delta-Immediate.
    Bdi,
    /// Frequent Pattern Compression.
    Fpc,
    /// C-Pack (dictionary based).
    CPack,
}

impl Algorithm {
    /// All algorithms, in the order used by Figures 10 and 11.
    pub const ALL: [Algorithm; 3] = [Algorithm::Fpc, Algorithm::Bdi, Algorithm::CPack];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bdi => "BDI",
            Algorithm::Fpc => "FPC",
            Algorithm::CPack => "C-Pack",
        }
    }

    /// Constructs the reference compressor for this algorithm.
    ///
    /// Prefer [`Algorithm::compress_line`] / [`Algorithm::decompress_into`]
    /// in hot paths: they dispatch statically and never allocate a box.
    pub fn compressor(self) -> Box<dyn Compressor> {
        match self {
            Algorithm::Bdi => Box::new(Bdi::new()),
            Algorithm::Fpc => Box::new(Fpc::new()),
            Algorithm::CPack => Box::new(CPack::new()),
        }
    }

    /// Compresses `line` with this algorithm via static dispatch (no
    /// `Box<dyn Compressor>` on the per-line-access path).
    pub fn compress_line(self, line: &[u8]) -> Option<CompressedLine> {
        match self {
            Algorithm::Bdi => Bdi::new().compress(line),
            Algorithm::Fpc => Fpc::new().compress(line),
            Algorithm::CPack => CPack::new().compress(line),
        }
    }

    /// Decompresses `line` into a caller-provided scratch buffer via static
    /// dispatch. Returns the number of bytes written.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError`] when the payload is malformed or was
    /// produced by a different algorithm.
    pub fn decompress_into(
        self,
        line: &CompressedLine,
        out: &mut [u8],
    ) -> Result<usize, DecompressError> {
        match self {
            Algorithm::Bdi => Bdi::new().decompress_into(line, out),
            Algorithm::Fpc => Fpc::new().decompress_into(line, out),
            Algorithm::CPack => CPack::new().decompress_into(line, out),
        }
    }

    /// Exact compressed size [`Algorithm::compress_line`] would produce for
    /// `line`, or `None` when incompressible — without building a payload.
    ///
    /// Selectors like [`BestOfAll`] use this to pick a winner first and run
    /// the (allocating) payload build once, on the winner only.
    pub fn scan_line_size(self, line: &[u8]) -> Option<usize> {
        match self {
            Algorithm::Bdi => Bdi::new().scan_size(line),
            Algorithm::Fpc => Fpc::new().scan_size(line),
            Algorithm::CPack => CPack::new().scan_size(line),
        }
    }

    /// Decompression latency in cycles for a *dedicated hardware*
    /// implementation (the paper models 1 cycle for BDI, §5; FPC and C-Pack
    /// are serial and slower, §6.3).
    pub fn hw_decompress_latency(self) -> u64 {
        match self {
            Algorithm::Bdi => 1,
            Algorithm::Fpc => 5,
            Algorithm::CPack => 8,
        }
    }

    /// Compression latency in cycles for dedicated hardware (5 cycles for
    /// BDI per §5).
    pub fn hw_compress_latency(self) -> u64 {
        match self {
            Algorithm::Bdi => 5,
            Algorithm::Fpc => 8,
            Algorithm::CPack => 16,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl SnapshotState for Algorithm {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(match self {
            Algorithm::Bdi => 0,
            Algorithm::Fpc => 1,
            Algorithm::CPack => 2,
        });
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Algorithm::Bdi),
            1 => Ok(Algorithm::Fpc),
            2 => Ok(Algorithm::CPack),
            t => Err(SnapError::BadTag {
                what: "Algorithm",
                tag: t as u64,
            }),
        }
    }
}

impl SnapshotState for BdiEncoding {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(self.id());
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let id = r.u8()?;
        BdiEncoding::from_id(id).ok_or(SnapError::BadTag {
            what: "BdiEncoding",
            tag: id as u64,
        })
    }
}

/// A compressed cache line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompressedLine {
    /// The algorithm that produced this line.
    pub algorithm: Algorithm,
    /// Algorithm-specific encoding id (kept out-of-band in tag/MD metadata).
    pub encoding: u8,
    /// In-line payload: masks/dictionary metadata at the head, then data.
    pub payload: Vec<u8>,
    /// Uncompressed size in bytes.
    pub original_len: usize,
}

impl CompressedLine {
    /// Compressed size in bytes (in-line payload only; the encoding id lives
    /// in the out-of-band metadata the MD cache serves, §4.3.2).
    pub fn size_bytes(&self) -> usize {
        self.payload.len()
    }

    /// DRAM bursts needed to transfer this line (1..=line/32).
    pub fn bursts(&self) -> usize {
        bursts_for_size(self.size_bytes(), self.original_len)
    }

    /// Compression ratio in burst terms (uncompressed bursts / compressed
    /// bursts), the paper's Figure 11 metric.
    pub fn burst_ratio(&self) -> f64 {
        let uncompressed = self.original_len.div_ceil(BURST_BYTES).max(1);
        uncompressed as f64 / self.bursts() as f64
    }

    /// True when decompressing this line reproduces `expected` exactly.
    ///
    /// A decompression error (malformed payload, bad encoding) counts as a
    /// failed round trip rather than an abort: the integrity layer uses this
    /// to *detect* metadata/payload corruption, so corrupt inputs must be a
    /// `false`, never a panic.
    pub fn round_trips_to(&self, expected: &[u8]) -> bool {
        if self.original_len <= LINE_SIZE {
            let mut buf = [0u8; LINE_SIZE];
            match self.algorithm.decompress_into(self, &mut buf) {
                Ok(n) => &buf[..n] == expected,
                Err(_) => false,
            }
        } else {
            match self.algorithm.compressor().decompress(self) {
                Ok(bytes) => bytes == expected,
                Err(_) => false,
            }
        }
    }
}

impl SnapshotState for CompressedLine {
    fn save(&self, w: &mut SnapshotWriter) {
        self.algorithm.save(w);
        w.u8(self.encoding);
        w.bytes(&self.payload);
        w.usize(self.original_len);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(CompressedLine {
            algorithm: Algorithm::load(r)?,
            encoding: r.u8()?,
            payload: r.bytes()?.to_vec(),
            original_len: r.usize()?,
        })
    }
}

/// DRAM bursts needed for `size` compressed bytes of an `original_len` line.
pub fn bursts_for_size(size: usize, original_len: usize) -> usize {
    let max = original_len.div_ceil(BURST_BYTES).max(1);
    size.div_ceil(BURST_BYTES).clamp(1, max)
}

/// A cache-line compressor.
///
/// Implementations must be lossless: `decompress(compress(x)) == x` whenever
/// `compress` succeeds. `compress` returns `None` when the line does not
/// benefit (compressed size would be at least the original size) — the
/// caller then stores/transfers the line uncompressed.
pub trait Compressor {
    /// The algorithm identity.
    fn algorithm(&self) -> Algorithm;

    /// Attempts to compress `line`. Returns `None` for incompressible data.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `line.len()` is not a multiple of 8.
    fn compress(&self, line: &[u8]) -> Option<CompressedLine>;

    /// Decompresses `line` into a caller-provided scratch buffer (typically
    /// a stack `[u8; LINE_SIZE]`), returning the number of bytes written.
    /// This is the allocation-free primitive; [`Compressor::decompress`] is
    /// a convenience wrapper over it.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError`] when the payload is malformed, was
    /// produced by a different algorithm, or `out` is shorter than the
    /// decompressed line.
    fn decompress_into(
        &self,
        line: &CompressedLine,
        out: &mut [u8],
    ) -> Result<usize, DecompressError>;

    /// Decompresses a line produced by this compressor into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError`] when the payload is malformed or was
    /// produced by a different algorithm.
    fn decompress(&self, line: &CompressedLine) -> Result<Vec<u8>, DecompressError> {
        let mut out = vec![0u8; line.original_len];
        let n = self.decompress_into(line, &mut out)?;
        out.truncate(n);
        Ok(out)
    }
}

/// Error decompressing a [`CompressedLine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The line's algorithm tag does not match this compressor.
    WrongAlgorithm {
        /// Algorithm expected by the decompressor.
        expected: Algorithm,
        /// Algorithm recorded on the line.
        found: Algorithm,
    },
    /// The encoding id is not valid for this algorithm.
    BadEncoding(u8),
    /// The payload is truncated or otherwise malformed.
    Malformed(&'static str),
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::WrongAlgorithm { expected, found } => {
                write!(f, "expected {expected} line, found {found}")
            }
            DecompressError::BadEncoding(e) => write!(f, "invalid encoding id {e}"),
            DecompressError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for DecompressError {}

/// Compresses with every algorithm and keeps the smallest result — the
/// idealized `CABA-BestOfAll` selector of §6.3 (no selection overhead).
#[derive(Debug, Default)]
pub struct BestOfAll {
    _private: (),
}

impl BestOfAll {
    /// Creates the selector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Best compression across all algorithms, or `None` if nothing helps.
    ///
    /// Sizes each candidate with the allocation-free scan path and builds a
    /// payload only for the winner. Strict `<` keeps the historical
    /// `min_by_key` tie-break: the first minimal algorithm in
    /// [`Algorithm::ALL`] order wins.
    pub fn compress(&self, line: &[u8]) -> Option<CompressedLine> {
        let mut best: Option<(Algorithm, usize)> = None;
        for a in Algorithm::ALL {
            if let Some(size) = a.scan_line_size(line) {
                if best.is_none_or(|(_, s)| size < s) {
                    best = Some((a, size));
                }
            }
        }
        let (alg, size) = best?;
        let c = alg.compress_line(line);
        debug_assert_eq!(
            c.as_ref().map(|c| c.size_bytes()),
            Some(size),
            "{alg} scan size disagrees with compress"
        );
        c
    }
}

/// Measures the average burst-level compression ratio of `algorithm` over a
/// sequence of lines (Figure 11's per-application metric). Incompressible
/// lines count with ratio 1.
pub fn average_burst_ratio(algorithm: Algorithm, lines: &[Vec<u8>]) -> f64 {
    if lines.is_empty() {
        return 1.0;
    }
    let mut total_unc = 0usize;
    let mut total_comp = 0usize;
    for line in lines {
        let unc = line.len().div_ceil(BURST_BYTES).max(1);
        total_unc += unc;
        total_comp += algorithm
            .compress_line(line)
            .map(|c| c.bursts())
            .unwrap_or(unc);
    }
    total_unc as f64 / total_comp as f64
}

/// Average burst ratio of the best-of-all selector over `lines`.
pub fn average_best_ratio(lines: &[Vec<u8>]) -> f64 {
    if lines.is_empty() {
        return 1.0;
    }
    let best = BestOfAll::new();
    let mut total_unc = 0usize;
    let mut total_comp = 0usize;
    for line in lines {
        let unc = line.len().div_ceil(BURST_BYTES).max(1);
        total_unc += unc;
        total_comp += best.compress(line).map(|c| c.bursts()).unwrap_or(unc);
    }
    total_unc as f64 / total_comp as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_clamped() {
        assert_eq!(bursts_for_size(0, 128), 1);
        assert_eq!(bursts_for_size(17, 128), 1);
        assert_eq!(bursts_for_size(33, 128), 2);
        assert_eq!(bursts_for_size(128, 128), 4);
        assert_eq!(bursts_for_size(1000, 128), 4); // never worse than raw
        assert_eq!(bursts_for_size(10, 64), 1);
        assert_eq!(bursts_for_size(64, 64), 2);
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::Bdi.name(), "BDI");
        assert_eq!(Algorithm::Bdi.hw_decompress_latency(), 1);
        assert_eq!(Algorithm::Bdi.hw_compress_latency(), 5);
        assert!(Algorithm::CPack.hw_decompress_latency() > Algorithm::Bdi.hw_decompress_latency());
        assert_eq!(format!("{}", Algorithm::CPack), "C-Pack");
    }

    #[test]
    fn best_of_all_picks_minimum() {
        // Zero line: every algorithm nails it; best-of-all must be at least
        // as small as each individual one.
        let line = vec![0u8; LINE_SIZE];
        let best = BestOfAll::new().compress(&line).unwrap();
        for a in Algorithm::ALL {
            if let Some(c) = a.compressor().compress(&line) {
                assert!(best.size_bytes() <= c.size_bytes());
            }
        }
    }

    #[test]
    fn average_ratio_of_incompressible_is_one() {
        // High-entropy line: mix of large primes, unlikely to compress.
        let mut line = Vec::with_capacity(LINE_SIZE);
        let mut x: u64 = 0x9E3779B97F4A7C15;
        while line.len() < LINE_SIZE {
            x = x.wrapping_mul(0xD1342543DE82EF95).wrapping_add(0xF);
            line.extend_from_slice(&x.to_le_bytes());
        }
        let r = average_burst_ratio(Algorithm::Bdi, &[line]);
        assert!((r - 1.0).abs() < 1e-9);
        assert_eq!(average_burst_ratio(Algorithm::Bdi, &[]), 1.0);
        assert_eq!(average_best_ratio(&[]), 1.0);
    }

    #[test]
    fn burst_ratio_metric() {
        let c = CompressedLine {
            algorithm: Algorithm::Bdi,
            encoding: 0,
            payload: vec![0u8; 17],
            original_len: 128,
        };
        assert_eq!(c.bursts(), 1);
        assert!((c.burst_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn decompress_error_display() {
        let e = DecompressError::WrongAlgorithm {
            expected: Algorithm::Bdi,
            found: Algorithm::Fpc,
        };
        assert!(e.to_string().contains("BDI"));
        assert!(DecompressError::BadEncoding(9).to_string().contains('9'));
        assert!(DecompressError::Malformed("short")
            .to_string()
            .contains("short"));
    }
}
