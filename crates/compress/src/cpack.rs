//! C-Pack dictionary compression (Chen et al., IEEE TVLSI 2010), adapted for
//! CABA as described in §4.1.3 of the paper: the number of supported
//! encodings is reduced, and the dictionary entries are placed right after
//! the metadata at the head of the compressed line so the whole line can be
//! decompressed after a single setup step.
//!
//! # Payload layout
//!
//! ```text
//! [n_dict: 1 B] [dict_0 .. dict_{n-1}: 4 B LE each] [bit-packed codes]
//! codes: 00                  -> zero word
//!        01 idx:4            -> full dictionary match
//!        10 idx:4 byte:8     -> partial match (high 3 bytes), low byte raw
//!        11 word:32          -> uncompressed word
//! ```

use crate::bits::{BitReader, BitWriter};
use crate::{Algorithm, CompressedLine, Compressor, DecompressError};

const DICT_SIZE: usize = 16;

const C_ZERO: u64 = 0b00;
const C_FULL: u64 = 0b01;
const C_PARTIAL: u64 = 0b10;
const C_RAW: u64 = 0b11;

/// The C-Pack compressor.
#[derive(Debug, Default)]
pub struct CPack {
    _private: (),
}

impl CPack {
    /// Creates a C-Pack compressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact compressed size [`Compressor::compress`] would produce for
    /// `line`, or `None` when incompressible. Builds the same FIFO
    /// dictionary on the stack and counts code bits without emitting them.
    pub fn scan_size(&self, line: &[u8]) -> Option<usize> {
        assert!(
            !line.is_empty() && line.len().is_multiple_of(4),
            "C-Pack requires a line size that is a multiple of 4 bytes"
        );
        let (dict, nd) = build_dict(line);
        let dict = &dict[..nd];
        let mut bits = 0usize;
        for_each_word(line, |w| {
            bits += if w == 0 {
                2
            } else if dict.contains(&w) {
                2 + 4
            } else if dict.iter().any(|&d| d >> 8 == w >> 8) {
                2 + 4 + 8
            } else {
                2 + 32
            };
        });
        let size = 1 + nd * 4 + bits.div_ceil(8);
        (size < line.len()).then_some(size)
    }
}

/// Streams the line's 32-bit words out of `u64` lane loads (see
/// `fpc::for_each_word`; duplicated here to keep both codecs free of
/// cross-module inlining assumptions).
#[inline]
fn for_each_word(line: &[u8], mut f: impl FnMut(u32)) {
    let chunks = line.chunks_exact(8);
    let rem = chunks.remainder();
    for c in chunks {
        let pair = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        f(pair as u32);
        f((pair >> 32) as u32);
    }
    if let Ok(c) = <[u8; 4]>::try_from(rem) {
        f(u32::from_le_bytes(c));
    }
}

/// First pass: the FIFO dictionary (first `DICT_SIZE` nonzero words that
/// match no earlier entry fully or by high-3-byte prefix), on the stack.
fn build_dict(line: &[u8]) -> ([u32; DICT_SIZE], usize) {
    let mut dict = [0u32; DICT_SIZE];
    let mut nd = 0usize;
    for_each_word(line, |w| {
        if w == 0 || nd == DICT_SIZE {
            return;
        }
        let matched = dict[..nd].iter().any(|&d| d == w || d >> 8 == w >> 8);
        if !matched {
            dict[nd] = w;
            nd += 1;
        }
    });
    (dict, nd)
}

impl Compressor for CPack {
    fn algorithm(&self) -> Algorithm {
        Algorithm::CPack
    }

    fn compress(&self, line: &[u8]) -> Option<CompressedLine> {
        assert!(
            !line.is_empty() && line.len().is_multiple_of(4),
            "C-Pack requires a line size that is a multiple of 4 bytes"
        );
        let (dict, nd) = build_dict(line);
        let dict = &dict[..nd];

        // Second pass: emit codes against the (now frozen) dictionary.
        let mut bw = BitWriter::with_capacity(line.len());
        for_each_word(line, |w| {
            if w == 0 {
                bw.write(C_ZERO, 2);
            } else if let Some(idx) = dict.iter().position(|&d| d == w) {
                bw.write(C_FULL, 2);
                bw.write(idx as u64, 4);
            } else if let Some(idx) = dict.iter().position(|&d| d >> 8 == w >> 8) {
                bw.write(C_PARTIAL, 2);
                bw.write(idx as u64, 4);
                bw.write((w & 0xFF) as u64, 8);
            } else {
                bw.write(C_RAW, 2);
                bw.write(w as u64, 32);
            }
        });

        let size = 1 + dict.len() * 4 + bw.byte_len();
        if size >= line.len() {
            return None;
        }
        let mut payload = Vec::with_capacity(size);
        payload.push(dict.len() as u8);
        for d in dict {
            payload.extend_from_slice(&d.to_le_bytes());
        }
        let (codes, _) = bw.finish();
        payload.extend_from_slice(&codes);
        Some(CompressedLine {
            algorithm: Algorithm::CPack,
            encoding: 0,
            payload,
            original_len: line.len(),
        })
    }

    fn decompress_into(
        &self,
        line: &CompressedLine,
        out: &mut [u8],
    ) -> Result<usize, DecompressError> {
        if line.algorithm != Algorithm::CPack {
            return Err(DecompressError::WrongAlgorithm {
                expected: Algorithm::CPack,
                found: line.algorithm,
            });
        }
        if line.encoding != 0 {
            return Err(DecompressError::BadEncoding(line.encoding));
        }
        let payload = &line.payload;
        if payload.is_empty() {
            return Err(DecompressError::Malformed("empty payload"));
        }
        let n_dict = payload[0] as usize;
        if n_dict > DICT_SIZE {
            return Err(DecompressError::Malformed("dictionary too large"));
        }
        if payload.len() < 1 + n_dict * 4 {
            return Err(DecompressError::Malformed("truncated dictionary"));
        }
        let mut dict = [0u32; DICT_SIZE];
        for (i, d) in dict.iter_mut().enumerate().take(n_dict) {
            let off = 1 + i * 4;
            *d = u32::from_le_bytes(payload[off..off + 4].try_into().expect("4 bytes"));
        }
        let dict = &dict[..n_dict];
        let n_words = line.original_len / 4;
        if out.len() < n_words * 4 {
            return Err(DecompressError::Malformed("output buffer too small"));
        }
        let mut r = BitReader::new(&payload[1 + n_dict * 4..]);
        let trunc = DecompressError::Malformed("truncated code stream");
        for wi in 0..n_words {
            let code = r.read(2).ok_or_else(|| trunc.clone())?;
            let w = match code {
                C_ZERO => 0u32,
                C_FULL => {
                    let idx = r.read(4).ok_or_else(|| trunc.clone())? as usize;
                    *dict
                        .get(idx)
                        .ok_or(DecompressError::Malformed("dictionary index"))?
                }
                C_PARTIAL => {
                    let idx = r.read(4).ok_or_else(|| trunc.clone())? as usize;
                    let b = r.read(8).ok_or_else(|| trunc.clone())? as u32;
                    let d = dict
                        .get(idx)
                        .ok_or(DecompressError::Malformed("dictionary index"))?;
                    (d & 0xFFFF_FF00) | b
                }
                C_RAW => r.read(32).ok_or_else(|| trunc.clone())? as u32,
                _ => unreachable!("2-bit code"),
            };
            out[wi * 4..wi * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        Ok(n_words * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(line: &[u8]) -> Option<usize> {
        let cp = CPack::new();
        let c = cp.compress(line)?;
        assert_eq!(cp.decompress(&c).unwrap(), line, "round trip");
        Some(c.size_bytes())
    }

    #[test]
    fn zero_line() {
        // 32 zero words: 1 B header + 64 code bits = 9 bytes.
        let size = round_trip(&[0u8; 128]).unwrap();
        assert_eq!(size, 9);
    }

    #[test]
    fn dictionary_heavy_line_compresses() {
        // Four distinct pointers repeated — classic C-Pack-friendly data.
        let ptrs = [0x8000_1000u32, 0x8000_2000, 0x8000_3000, 0x8000_4000];
        let mut line = Vec::new();
        for i in 0..32 {
            line.extend_from_slice(&ptrs[i % 4].to_le_bytes());
        }
        let size = round_trip(&line).unwrap();
        // 1 + 16 dict bytes + 32*6 code bits = 41 bytes.
        assert_eq!(size, 41);
    }

    #[test]
    fn partial_matches_keep_low_byte() {
        // Words share the high 3 bytes and vary in the low byte.
        let mut line = Vec::new();
        for i in 0..32u32 {
            line.extend_from_slice(&(0xAABB_CC00 | i).to_le_bytes());
        }
        let cp = CPack::new();
        let c = cp.compress(&line).unwrap();
        assert_eq!(cp.decompress(&c).unwrap(), line);
        // One dict entry; first word full-matches, rest partial.
        assert_eq!(c.payload[0], 1);
    }

    #[test]
    fn incompressible_returns_none() {
        // 32 distinct high-entropy words exhaust the dictionary and emit raw
        // codes: 1 + 64 + 16*(34 bits) + 16*(6ish)... definitively > 128.
        let mut line = Vec::with_capacity(128);
        let mut x: u32 = 3;
        while line.len() < 128 {
            x = x.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            line.extend_from_slice(&x.to_le_bytes());
        }
        assert!(CPack::new().compress(&line).is_none());
    }

    #[test]
    fn mixed_content_round_trips() {
        let mut line = Vec::new();
        let words: [u32; 8] = [
            0,
            0x1234_5678,
            0x1234_5699, // partial match with previous
            0,
            0xFFFF_FFFF,
            0x1234_5678, // full match
            42,
            0xFFFF_FF00, // partial with 0xFFFF_FFFF
        ];
        for i in 0..32 {
            line.extend_from_slice(&words[i % 8].to_le_bytes());
        }
        let cp = CPack::new();
        if let Some(c) = cp.compress(&line) {
            assert_eq!(cp.decompress(&c).unwrap(), line);
        }
    }

    #[test]
    fn malformed_payloads_rejected() {
        let cp = CPack::new();
        for payload in [vec![], vec![17u8], vec![2u8, 0, 0, 0, 0]] {
            let c = CompressedLine {
                algorithm: Algorithm::CPack,
                encoding: 0,
                payload,
                original_len: 128,
            };
            assert!(matches!(
                cp.decompress(&c),
                Err(DecompressError::Malformed(_))
            ));
        }
    }

    #[test]
    fn wrong_algorithm_rejected() {
        let c = CompressedLine {
            algorithm: Algorithm::Fpc,
            encoding: 0,
            payload: vec![0],
            original_len: 128,
        };
        assert!(matches!(
            CPack::new().decompress(&c),
            Err(DecompressError::WrongAlgorithm { .. })
        ));
    }

    #[test]
    fn truncated_code_stream_rejected() {
        let cp = CPack::new();
        let mut line = Vec::new();
        for i in 0..32u32 {
            line.extend_from_slice(&(0xAABB_CC00 | i).to_le_bytes());
        }
        let mut c = cp.compress(&line).unwrap();
        c.payload.truncate(c.payload.len() - 2);
        assert!(matches!(
            cp.decompress(&c),
            Err(DecompressError::Malformed(_))
        ));
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn bad_line_size_panics() {
        let _ = CPack::new().compress(&[0u8; 6]);
    }
}
