//! Bit-granular serialization used by the FPC and C-Pack formats.

/// Writes values LSB-first into a growing byte buffer.
///
/// # Examples
///
/// ```
/// use caba_compress::bits::{BitReader, BitWriter};
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(0xFF, 8);
/// let (bytes, bits) = w.finish();
/// assert_eq!(bits, 11);
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read(3), Some(0b101));
/// assert_eq!(r.read(8), Some(0xFF));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `bytes` output bytes, so hot
    /// emit loops never reallocate mid-line.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bytes),
            bit_len: 0,
        }
    }

    /// Appends the low `nbits` bits of `value` (LSB first).
    ///
    /// The value is merged whole bytes at a time (not bit by bit): the
    /// shifted field spans at most 9 bytes, so a write is a handful of
    /// byte ORs regardless of width.
    ///
    /// # Panics
    ///
    /// Panics if `nbits > 64`.
    pub fn write(&mut self, value: u64, nbits: usize) {
        assert!(nbits <= 64, "cannot write more than 64 bits at once");
        if nbits == 0 {
            return;
        }
        let value = if nbits == 64 {
            value
        } else {
            value & ((1u64 << nbits) - 1)
        };
        let bit_off = self.bit_len % 8;
        let end_byte = (self.bit_len + nbits).div_ceil(8);
        if self.bytes.len() < end_byte {
            self.bytes.resize(end_byte, 0);
        }
        // Up to 71 significant bits after the in-byte shift.
        let mut v = (value as u128) << bit_off;
        for b in &mut self.bytes[self.bit_len / 8..end_byte] {
            *b |= v as u8;
            v >>= 8;
        }
        self.bit_len += nbits;
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Size in whole bytes (rounded up).
    pub fn byte_len(&self) -> usize {
        self.bit_len.div_ceil(8)
    }

    /// Consumes the writer, returning the padded bytes and exact bit count.
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.bytes, self.bit_len)
    }
}

/// Reads values LSB-first from a byte buffer.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `nbits` bits, or `None` if the buffer is exhausted.
    ///
    /// Gathers whole bytes (at most 9) and shifts once, mirroring
    /// [`BitWriter::write`].
    ///
    /// # Panics
    ///
    /// Panics if `nbits > 64`.
    pub fn read(&mut self, nbits: usize) -> Option<u64> {
        assert!(nbits <= 64, "cannot read more than 64 bits at once");
        if self.pos + nbits > self.bytes.len() * 8 {
            return None;
        }
        if nbits == 0 {
            return Some(0);
        }
        let bit_off = self.pos % 8;
        let start = self.pos / 8;
        let end = (self.pos + nbits).div_ceil(8);
        let mut v: u128 = 0;
        for (i, &b) in self.bytes[start..end].iter().enumerate() {
            v |= (b as u128) << (8 * i);
        }
        let v = (v >> bit_off) as u64;
        self.pos += nbits;
        Some(if nbits == 64 {
            v
        } else {
            v & ((1u64 << nbits) - 1)
        })
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

/// Sign-extends the low `nbits` of `v` to 64 bits.
pub fn sign_extend(v: u64, nbits: usize) -> i64 {
    debug_assert!(nbits > 0 && nbits <= 64);
    let shift = 64 - nbits;
    ((v << shift) as i64) >> shift
}

/// True if the signed value `v` is representable in `nbits` bits.
pub fn fits_signed(v: i64, nbits: usize) -> bool {
    debug_assert!(nbits > 0 && nbits < 64);
    let lo = -(1i64 << (nbits - 1));
    let hi = (1i64 << (nbits - 1)) - 1;
    (lo..=hi).contains(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        let fields = [(0b1u64, 1), (0x3FFu64, 10), (0u64, 5), (u64::MAX, 64)];
        for &(v, n) in &fields {
            w.write(v, n);
        }
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 80);
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            assert_eq!(r.read(n), Some(v & mask));
        }
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.write(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert_eq!(w.byte_len(), 0);
    }

    #[test]
    fn reader_eof() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.read(8), Some(0xAB));
        assert_eq!(r.read(1), None);
        assert_eq!(r.position(), 8);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xF, 4), -1);
        assert_eq!(sign_extend(0x7, 4), 7);
        assert_eq!(sign_extend(0x80, 8), -128);
        assert_eq!(sign_extend(0x7F, 8), 127);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
    }

    #[test]
    fn fits_signed_bounds() {
        assert!(fits_signed(7, 4));
        assert!(fits_signed(-8, 4));
        assert!(!fits_signed(8, 4));
        assert!(!fits_signed(-9, 4));
        assert!(fits_signed(127, 8));
        assert!(!fits_signed(128, 8));
    }

    #[test]
    fn byte_len_rounds_up() {
        let mut w = BitWriter::new();
        w.write(1, 9);
        assert_eq!(w.byte_len(), 2);
    }
}
