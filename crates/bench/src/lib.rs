//! The figure-regeneration harness: one function per table/figure of the
//! paper's evaluation, each returning a [`Table`] with the same rows/series
//! the paper reports.
//!
//! Absolute numbers are not expected to match the paper (the substrate is a
//! from-scratch simulator and the workloads are synthetic stand-ins — see
//! `DESIGN.md`); the *shapes* are the reproduction target: who wins, by
//! roughly what factor, and where the crossovers fall. `EXPERIMENTS.md`
//! records paper-vs-measured for every figure.
//!
//! Run everything with `cargo bench -p caba-bench` (the `figures` bench
//! target), or a single figure with e.g.
//! `cargo run --release -p caba-bench --bin fig07_performance`.

use caba_compress::{average_best_ratio, average_burst_ratio, Algorithm};
use caba_energy::{energy, DesignKind};
use caba_sim::occupancy::occupancy;
use caba_sim::{Design, GpuConfig, RunStats};
use caba_stats::table::{pct, speedup};
use caba_stats::{StallKind, Table};
use caba_sweep::{run_cells, SweepCell, SweepConfig};
use caba_workloads::{all_apps, eval_apps, run_app, AppClass, AppSpec};
use std::collections::HashMap;

// The design-point identifier lives in `caba-sweep` (the executor needs it
// to describe cells); re-exported here so existing harness code and the
// figure binaries keep their imports.
pub use caba_sweep::DesignId;

/// Worker-thread count for sweep-backed figures: `CABA_SWEEP_JOBS`, or the
/// machine's available parallelism.
pub fn sweep_jobs() -> usize {
    std::env::var("CABA_SWEEP_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Harness options (tunable via environment for quick runs).
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Workload scale factor (`CABA_BENCH_SCALE`, default 0.5).
    pub scale: f64,
    /// The machine configuration for figure runs.
    pub cfg: GpuConfig,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        let scale = std::env::var("CABA_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.5);
        HarnessConfig {
            scale,
            cfg: GpuConfig::isca2015_scaled(),
        }
    }
}

/// A cache of (application × design) simulation results shared by the
/// figures that report different metrics of the same runs (7, 8, 9 and the
/// MD-cache table).
#[derive(Debug, Default)]
pub struct RunMatrix {
    results: HashMap<(String, DesignId), RunStats>,
}

impl RunMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs (or returns the cached run of) `app` under `design`.
    pub fn get(&mut self, hc: &HarnessConfig, app: &AppSpec, design: DesignId) -> &RunStats {
        let key = (app.name.to_string(), design);
        if !self.results.contains_key(&key) {
            eprintln!("  running {} / {} ...", app.name, design.label());
            let stats = run_app(app, hc.cfg, design.make(), hc.scale)
                .unwrap_or_else(|e| panic!("{} / {}: {e}", app.name, design.label()));
            self.results.insert(key.clone(), stats);
        }
        &self.results[&key]
    }

    /// Pre-populates `eval_apps × designs` through the parallel sweep
    /// executor. Each cell runs `run_app` on a fresh GPU — the same entry
    /// point `get` uses — so a prefilled matrix yields byte-identical
    /// figures, just faster: later `get` calls hit the cache instead of
    /// simulating serially.
    pub fn prefill(&mut self, hc: &HarnessConfig, designs: &[DesignId], jobs: usize) {
        let cells: Vec<SweepCell> = eval_apps()
            .iter()
            .flat_map(|a| {
                designs.iter().map(|&design| SweepCell {
                    app: a.name,
                    design,
                    bw_scale: 1.0,
                })
            })
            .filter(|c| !self.results.contains_key(&(c.app.to_string(), c.design)))
            .collect();
        if cells.is_empty() {
            return;
        }
        eprintln!("  prefilling {} cells over {jobs} worker(s) ...", cells.len());
        let sc = SweepConfig {
            scale: hc.scale,
            cfg: hc.cfg,
        };
        for r in run_cells(&sc, &cells, jobs) {
            self.results
                .insert((r.cell.app.to_string(), r.cell.design), r.stats);
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    caba_stats::arith_mean(xs).unwrap_or(0.0)
}

// ---------------------------------------------------------------------------
// Figure 1: issue-cycle breakdown at ½×/1×/2× bandwidth, all 27 apps.
// ---------------------------------------------------------------------------

/// Regenerates Figure 1, one column per taxonomy bucket in
/// [`StallKind::ALL`] display order.
pub fn fig01_stall_breakdown(hc: &HarnessConfig) -> Table {
    let mut cols = vec!["App", "Class", "BW"];
    cols.extend(StallKind::ALL.iter().map(|k| k.label()));
    let mut t = Table::with_columns(&cols);
    for app in all_apps() {
        for (bw, name) in [(0.5, "1/2x"), (1.0, "1x"), (2.0, "2x")] {
            eprintln!("  fig1: {} @ {}BW", app.name, name);
            let cfg = hc.cfg.with_bandwidth_scale(bw);
            let s = run_app(&app, cfg, Design::Base, hc.scale)
                .unwrap_or_else(|e| panic!("{} {name}: {e}", app.name));
            let b = &s.breakdown;
            let mut row = vec![
                app.name.to_string(),
                match app.class {
                    AppClass::MemoryBound => "Mem".into(),
                    AppClass::ComputeBound => "Comp".into(),
                },
                name.to_string(),
            ];
            row.extend(StallKind::ALL.iter().map(|&k| pct(b.fraction(k))));
            t.row(row);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 2: statically unallocated registers.
// ---------------------------------------------------------------------------

/// Regenerates Figure 2 (paper average: 24% of the register file
/// unallocated).
pub fn fig02_unallocated_registers() -> Table {
    let cfg = GpuConfig::isca2015();
    let mut t = Table::with_columns(&["App", "Blocks/SM", "Limiter", "Unallocated"]);
    let mut fracs = Vec::new();
    for app in all_apps() {
        let k = app.kernel(1.0);
        let o = occupancy(&k, &cfg, 0);
        let f = o.unallocated_fraction(&cfg);
        fracs.push(f);
        t.row(vec![
            app.name.to_string(),
            o.blocks.to_string(),
            format!("{:?}", o.limiter),
            pct(f),
        ]);
    }
    t.row(vec![
        "Average".into(),
        String::new(),
        String::new(),
        pct(mean(&fracs)),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Figure 5: the worked BDI example.
// ---------------------------------------------------------------------------

/// Regenerates Figure 5: the 64-byte PVC line compressing to 17 bytes.
pub fn fig05_bdi_example() -> Table {
    use caba_compress::{Bdi, Compressor};
    let values: [u64; 8] = [
        0x00,
        0x8_0001_d000,
        0x10,
        0x8_0001_d008,
        0x20,
        0x8_0001_d010,
        0x30,
        0x8_0001_d018,
    ];
    let mut line = Vec::new();
    for v in values {
        line.extend_from_slice(&v.to_le_bytes());
    }
    let c = Bdi::new().compress(&line).expect("figure 5 line compresses");
    let mut t = Table::with_columns(&["Field", "Value"]);
    t.row(vec!["Uncompressed".into(), format!("{} bytes", line.len())]);
    t.row(vec!["Compressed".into(), format!("{} bytes", c.size_bytes())]);
    t.row(vec![
        "Saved".into(),
        format!("{} bytes", line.len() - c.size_bytes()),
    ]);
    t.row(vec!["Metadata (mask)".into(), format!("{:#04x}", c.payload[0])]);
    t.row(vec![
        "Base".into(),
        format!(
            "{:#x}",
            u64::from_le_bytes(c.payload[1..9].try_into().expect("8 bytes"))
        ),
    ]);
    t.row(vec![
        "Deltas".into(),
        format!("{:02x?}", &c.payload[9..]),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Figures 7–9 + MD-cache table: the five-design comparison.
// ---------------------------------------------------------------------------

/// Regenerates Figure 7 (normalized performance of the five designs).
///
/// The `eval_apps × FIG7` matrix is prefilled through the parallel sweep
/// executor (`CABA_SWEEP_JOBS` workers); the table itself is assembled
/// from the cached results and is byte-identical to the serial path.
pub fn fig07_performance(hc: &HarnessConfig, m: &mut RunMatrix) -> Table {
    m.prefill(hc, &DesignId::FIG7, sweep_jobs());
    let mut t = Table::with_columns(&[
        "App", "Base", "HW-BDI-Mem", "HW-BDI", "CABA-BDI", "Ideal-BDI",
    ]);
    let mut avgs: HashMap<DesignId, Vec<f64>> = HashMap::new();
    for app in eval_apps() {
        let base = m.get(hc, &app, DesignId::Base).cycles;
        let mut row = vec![app.name.to_string()];
        for d in DesignId::FIG7 {
            let s = m.get(hc, &app, d);
            let sp = base as f64 / s.cycles as f64;
            avgs.entry(d).or_default().push(sp);
            row.push(speedup(sp));
        }
        t.row(row);
    }
    let mut row = vec!["Average".to_string()];
    for d in DesignId::FIG7 {
        row.push(speedup(mean(&avgs[&d])));
    }
    t.row(row);
    t
}

/// Regenerates Figure 8 (memory bandwidth utilization).
pub fn fig08_bw_utilization(hc: &HarnessConfig, m: &mut RunMatrix) -> Table {
    let mut t = Table::with_columns(&[
        "App", "Base", "HW-BDI-Mem", "HW-BDI", "CABA-BDI", "Ideal-BDI",
    ]);
    let mut avgs: HashMap<DesignId, Vec<f64>> = HashMap::new();
    for app in eval_apps() {
        let mut row = vec![app.name.to_string()];
        for d in DesignId::FIG7 {
            let u = m.get(hc, &app, d).bandwidth_utilization();
            avgs.entry(d).or_default().push(u);
            row.push(pct(u));
        }
        t.row(row);
    }
    let mut row = vec!["Average".to_string()];
    for d in DesignId::FIG7 {
        row.push(pct(mean(&avgs[&d])));
    }
    t.row(row);
    t
}

/// Regenerates Figure 9 (normalized energy) plus the §6.2 DRAM-energy and
/// power observations.
pub fn fig09_energy(hc: &HarnessConfig, m: &mut RunMatrix) -> Table {
    let mut t = Table::with_columns(&[
        "App", "Base", "HW-BDI-Mem", "HW-BDI", "CABA-BDI", "Ideal-BDI", "CABA DRAM-E", "CABA Power",
    ]);
    let mut avgs: HashMap<DesignId, Vec<f64>> = HashMap::new();
    let mut dram_red = Vec::new();
    let mut pow_over = Vec::new();
    for app in eval_apps() {
        let base_s = m.get(hc, &app, DesignId::Base).clone();
        let base_e = energy(&base_s, DesignKind::Base);
        let mut row = vec![app.name.to_string()];
        let mut caba_metrics = (0.0f64, 0.0f64);
        for d in DesignId::FIG7 {
            let s = m.get(hc, &app, d).clone();
            let e = energy(&s, d.energy_kind());
            let norm = e.total_nj() / base_e.total_nj();
            avgs.entry(d).or_default().push(norm);
            row.push(format!("{norm:.3}"));
            if d == DesignId::CabaBdi {
                // §6.2: DRAM power reduction and system power overhead.
                let dram_power =
                    e.dram_nj() / s.cycles as f64 / (base_e.dram_nj() / base_s.cycles as f64);
                let power = e.avg_power(s.cycles) / base_e.avg_power(base_s.cycles);
                caba_metrics = (1.0 - dram_power, power - 1.0);
            }
        }
        dram_red.push(caba_metrics.0);
        pow_over.push(caba_metrics.1);
        row.push(pct(caba_metrics.0));
        row.push(format!("{:+.1}%", caba_metrics.1 * 100.0));
        t.row(row);
    }
    let mut row = vec!["Average".to_string()];
    for d in DesignId::FIG7 {
        row.push(format!("{:.3}", mean(&avgs[&d])));
    }
    row.push(pct(mean(&dram_red)));
    row.push(format!("{:+.1}%", mean(&pow_over) * 100.0));
    t.row(row);
    t
}

/// Regenerates the §4.3.2 MD-cache hit-rate result (paper: 85% average).
pub fn tab_md_cache(hc: &HarnessConfig, m: &mut RunMatrix) -> Table {
    let mut t = Table::with_columns(&["App", "MD lookups", "MD hit rate"]);
    let mut rates = Vec::new();
    for app in eval_apps() {
        let s = m.get(hc, &app, DesignId::CabaBdi);
        let r = s.md_hit_rate();
        if s.md_lookups > 0 {
            rates.push(r);
        }
        t.row(vec![
            app.name.to_string(),
            s.md_lookups.to_string(),
            pct(r),
        ]);
    }
    t.row(vec!["Average".into(), String::new(), pct(mean(&rates))]);
    t
}

// ---------------------------------------------------------------------------
// Figures 10 & 11: algorithm flexibility.
// ---------------------------------------------------------------------------

/// Regenerates Figure 10 (speedup with FPC / BDI / C-Pack / BestOfAll).
///
/// Prefilled through the parallel sweep executor, like
/// [`fig07_performance`].
pub fn fig10_algorithms(hc: &HarnessConfig, m: &mut RunMatrix) -> Table {
    let designs = DesignId::FIG10;
    let mut prefill = vec![DesignId::Base];
    prefill.extend(DesignId::FIG10);
    m.prefill(hc, &prefill, sweep_jobs());
    let mut t = Table::with_columns(&["App", "CABA-FPC", "CABA-BDI", "CABA-CPack", "CABA-Best"]);
    let mut avgs: HashMap<DesignId, Vec<f64>> = HashMap::new();
    for app in eval_apps() {
        let base = m.get(hc, &app, DesignId::Base).cycles;
        let mut row = vec![app.name.to_string()];
        for d in designs {
            let s = m.get(hc, &app, d);
            let sp = base as f64 / s.cycles as f64;
            avgs.entry(d).or_default().push(sp);
            row.push(speedup(sp));
        }
        t.row(row);
    }
    let mut row = vec!["Average".to_string()];
    for d in designs {
        row.push(speedup(mean(&avgs[&d])));
    }
    t.row(row);
    t
}

/// Regenerates Figure 11 (compression ratio of each algorithm per app).
pub fn fig11_compression_ratio(hc: &HarnessConfig) -> Table {
    let mut t = Table::with_columns(&["App", "BDI", "FPC", "C-Pack", "BestOfAll"]);
    let mut sums = [0.0f64; 4];
    let apps = eval_apps();
    for app in &apps {
        let lines = app.input_lines(hc.scale);
        let bdi = average_burst_ratio(Algorithm::Bdi, &lines);
        let fpc = average_burst_ratio(Algorithm::Fpc, &lines);
        let cp = average_burst_ratio(Algorithm::CPack, &lines);
        let best = average_best_ratio(&lines);
        for (s, v) in sums.iter_mut().zip([bdi, fpc, cp, best]) {
            *s += v;
        }
        t.row(vec![
            app.name.to_string(),
            format!("{bdi:.2}"),
            format!("{fpc:.2}"),
            format!("{cp:.2}"),
            format!("{best:.2}"),
        ]);
    }
    let n = apps.len() as f64;
    t.row(vec![
        "Average".into(),
        format!("{:.2}", sums[0] / n),
        format!("{:.2}", sums[1] / n),
        format!("{:.2}", sums[2] / n),
        format!("{:.2}", sums[3] / n),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Figure 12: bandwidth sensitivity.
// ---------------------------------------------------------------------------

/// Regenerates Figure 12 (½×/1×/2× bandwidth, Base vs CABA-BDI), averaged
/// over the evaluation set and normalized to 1×-Base.
///
/// The whole `apps × bandwidth × design` matrix runs through the parallel
/// sweep executor; rows normalize against each app's 1×-Base cell from
/// the same sweep, so the table is byte-identical to the serial path.
pub fn fig12_bw_sensitivity(hc: &HarnessConfig) -> Table {
    let mut t = Table::with_columns(&[
        "App", "1/2x-Base", "1/2x-CABA", "1x-Base", "1x-CABA", "2x-Base", "2x-CABA",
    ]);
    let sc = SweepConfig {
        scale: hc.scale,
        cfg: hc.cfg,
    };
    // Per app, in cell order: ½×-Base, ½×-CABA, 1×-Base, 1×-CABA,
    // 2×-Base, 2×-CABA — matching the table columns.
    let cells = caba_sweep::fig12_cells();
    let results = run_cells(&sc, &cells, sweep_jobs());
    let mut sums = [0.0f64; 6];
    let apps = eval_apps();
    for (app, chunk) in apps.iter().zip(results.chunks_exact(6)) {
        debug_assert!(chunk.iter().all(|r| r.cell.app == app.name));
        let base_1x = chunk[2].stats.cycles; // the 1×-Base cell
        let mut row = vec![app.name.to_string()];
        for (s, r) in sums.iter_mut().zip(chunk) {
            let v = base_1x as f64 / r.stats.cycles as f64;
            *s += v;
            row.push(speedup(v));
        }
        t.row(row);
    }
    let n = apps.len() as f64;
    let mut row = vec!["Average".to_string()];
    for s in sums {
        row.push(speedup(s / n));
    }
    t.row(row);
    t
}

// ---------------------------------------------------------------------------
// Figure 13: cache compression.
// ---------------------------------------------------------------------------

/// Regenerates Figure 13 (CABA-BDI vs compressed L1/L2 with 2×/4× tags),
/// normalized to CABA-BDI.
pub fn fig13_cache_compression(hc: &HarnessConfig, m: &mut RunMatrix) -> Table {
    let mut t = Table::with_columns(&[
        "App", "CABA-BDI", "CABA-L1-2x", "CABA-L1-4x", "CABA-L2-2x", "CABA-L2-4x",
    ]);
    type CfgTweak = Box<dyn Fn(GpuConfig) -> GpuConfig>;
    let variants: [(&str, CfgTweak); 4] = [
        ("L1-2x", Box::new(|mut c: GpuConfig| {
            c.l1 = c.l1.with_tag_factor(2);
            c.l1_compressed = true;
            c
        })),
        ("L1-4x", Box::new(|mut c: GpuConfig| {
            c.l1 = c.l1.with_tag_factor(4);
            c.l1_compressed = true;
            c
        })),
        ("L2-2x", Box::new(|mut c: GpuConfig| {
            c.l2 = c.l2.with_tag_factor(2);
            c
        })),
        ("L2-4x", Box::new(|mut c: GpuConfig| {
            c.l2 = c.l2.with_tag_factor(4);
            c
        })),
    ];
    let mut sums = [0.0f64; 4];
    let apps = eval_apps();
    for app in &apps {
        let caba = m.get(hc, app, DesignId::CabaBdi).cycles;
        let mut row = vec![app.name.to_string(), speedup(1.0)];
        for (i, (name, mk)) in variants.iter().enumerate() {
            eprintln!("  fig13: {} / {name}", app.name);
            let cfg = mk(hc.cfg);
            let s = run_app(app, cfg, DesignId::CabaBdi.make(), hc.scale)
                .unwrap_or_else(|e| panic!("{} {name}: {e}", app.name));
            let sp = caba as f64 / s.cycles as f64;
            sums[i] += sp;
            row.push(speedup(sp));
        }
        t.row(row);
    }
    let n = apps.len() as f64;
    let mut row = vec!["Average".to_string(), speedup(1.0)];
    for s in sums {
        row.push(speedup(s / n));
    }
    t.row(row);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_ids_round_trip() {
        for d in [
            DesignId::Base,
            DesignId::HwBdiMem,
            DesignId::HwBdi,
            DesignId::CabaBdi,
            DesignId::IdealBdi,
            DesignId::CabaFpc,
            DesignId::CabaCPack,
            DesignId::CabaBest,
        ] {
            let design = d.make();
            assert!(!d.label().is_empty());
            // Labels of the Design object align with the ids.
            if d == DesignId::CabaBest {
                assert_eq!(design.label(), "CABA-None");
            }
            let _ = d.energy_kind();
        }
    }

    #[test]
    fn fig02_computes_average_in_paper_ballpark() {
        let t = fig02_unallocated_registers();
        // One row per app plus the average row.
        assert_eq!(t.len(), all_apps().len() + 1);
        let rendered = t.to_string();
        assert!(rendered.contains("Average"));
    }

    #[test]
    fn fig05_matches_paper_numbers() {
        let t = fig05_bdi_example();
        let s = t.to_string();
        assert!(s.contains("17 bytes"), "{s}");
        assert!(s.contains("47 bytes"), "{s}");
        assert!(s.contains("0x55"), "{s}");
        assert!(s.contains("0x80001d000"), "{s}");
    }

    #[test]
    fn fig11_shows_per_algorithm_diversity() {
        let hc = HarnessConfig {
            scale: 0.1,
            cfg: GpuConfig::isca2015_scaled(),
        };
        let t = fig11_compression_ratio(&hc);
        assert!(t.len() > 10);
    }
}
