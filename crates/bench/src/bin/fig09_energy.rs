//! Regenerates Figure 9: normalized energy (plus §6.2 power analysis).
fn main() {
    let hc = caba_bench::HarnessConfig::default();
    let mut m = caba_bench::RunMatrix::new();
    print!("{}", caba_bench::fig09_energy(&hc, &mut m));
}
