//! Regenerates Figure 1: issue-cycle breakdown at ½×/1×/2× bandwidth.
fn main() {
    let hc = caba_bench::HarnessConfig::default();
    print!("{}", caba_bench::fig01_stall_breakdown(&hc));
}
