//! Regenerates Figure 12: sensitivity to peak memory bandwidth.
fn main() {
    let hc = caba_bench::HarnessConfig::default();
    print!("{}", caba_bench::fig12_bw_sensitivity(&hc));
}
