//! Regenerates Figure 2: statically unallocated registers per application.
fn main() {
    print!("{}", caba_bench::fig02_unallocated_registers());
}
