//! Regenerates Figure 13: selective cache compression (L1/L2, 2×/4× tags).
fn main() {
    let hc = caba_bench::HarnessConfig::default();
    let mut m = caba_bench::RunMatrix::new();
    print!("{}", caba_bench::fig13_cache_compression(&hc, &mut m));
}
