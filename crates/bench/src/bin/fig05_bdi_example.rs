//! Regenerates Figure 5: the worked BDI example (64 B PVC line → 17 B).
fn main() {
    print!("{}", caba_bench::fig05_bdi_example());
}
