//! Regenerates Figure 7: normalized performance of the five designs.
fn main() {
    let hc = caba_bench::HarnessConfig::default();
    let mut m = caba_bench::RunMatrix::new();
    print!("{}", caba_bench::fig07_performance(&hc, &mut m));
}
