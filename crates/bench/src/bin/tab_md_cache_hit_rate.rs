//! Regenerates the §4.3.2 metadata-cache hit-rate table (paper: 85% avg).
fn main() {
    let hc = caba_bench::HarnessConfig::default();
    let mut m = caba_bench::RunMatrix::new();
    print!("{}", caba_bench::tab_md_cache(&hc, &mut m));
}
