//! Regenerates Figure 11: compression ratio of each algorithm per app.
fn main() {
    let hc = caba_bench::HarnessConfig::default();
    print!("{}", caba_bench::fig11_compression_ratio(&hc));
}
