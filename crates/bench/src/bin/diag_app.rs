//! Inspect one application under Base / CABA-BDI / HW-BDI side by side.
//!
//! ```sh
//! cargo run --release -p caba-bench --bin diag_app -- PVC 0.5
//! ```
//!
//! Arguments: application name (see `caba_workloads::all_apps`) and an
//! optional scale factor (default 0.5).

use caba_bench::DesignId;
use caba_sim::GpuConfig;
use caba_stats::StallKind;
use caba_workloads::{all_apps, app, run_app};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "PVC".into());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let Some(a) = app(&name) else {
        eprintln!("unknown application {name:?}; known:");
        for a in all_apps() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(1);
    };
    println!("{name} @ scale {scale} on the scaled Table 1 machine\n");
    for d in [DesignId::Base, DesignId::CabaBdi, DesignId::HwBdi] {
        let s = run_app(&a, GpuConfig::isca2015_scaled(), d.make(), scale)
            .unwrap_or_else(|e| panic!("{}: {e}", d.label()));
        let stalls = StallKind::ALL
            .iter()
            .map(|&k| format!("{}={:.2}", k.slug(), s.breakdown.fraction(k)))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<10} cyc={:<8} app_i={:<9} asst_i={:<9} launches={:<6} l1hr={:.2} l2hr={:.2} \
             bursts={:<8} flits={:<8} bw={:.2} ovf={:<5} dec={:<6} cmp={:<6}\n           {stalls}",
            d.label(),
            s.cycles,
            s.app_instructions,
            s.assist_instructions,
            s.assist_launches,
            s.l1_hit_rate(),
            s.l2_hit_rate(),
            s.dram_bursts,
            s.icnt_flits,
            s.bandwidth_utilization(),
            s.store_buffer_overflows,
            s.lines_decompressed,
            s.lines_compressed,
        );
    }
}
