//! Record a Chrome-trace (Perfetto) activity trace of one application run.
//!
//! ```sh
//! cargo run --release -p caba-bench --bin trace_app -- PVC 0.25 caba trace.json
//! ```
//!
//! Open the JSON in `chrome://tracing` or https://ui.perfetto.dev to see
//! per-SM issue activity (app vs. assist instructions) and DRAM bandwidth
//! utilization over time.

use caba_core::CabaController;
use caba_sim::{Design, Gpu, GpuConfig, TraceConfig};
use caba_workloads::app;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "PVC".into());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let design = match args.next().as_deref() {
        Some("base") => Design::Base,
        _ => Design::Caba(Box::new(CabaController::bdi())),
    };
    let path = args.next().unwrap_or_else(|| "trace.json".into());

    let a = app(&name).expect("known application");
    let cfg = GpuConfig::isca2015_scaled().with_trace(TraceConfig::full(64));
    let mut gpu = Gpu::new(cfg, design);
    a.load_inputs(&mut gpu, scale);
    let stats = gpu
        .run(&a.kernel(scale), 200_000_000)
        .expect("kernel completes");
    let trace = gpu.take_trace().expect("tracing was enabled");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create trace file"));
    trace.write_chrome_json(&mut file).expect("write trace file");
    eprintln!(
        "{name}: {} cycles, {} samples, avg BW {:.1}% -> {path}",
        stats.cycles,
        trace.samples.len(),
        trace.avg_bw_utilization() * 100.0
    );
}
