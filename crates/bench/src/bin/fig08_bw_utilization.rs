//! Regenerates Figure 8: memory bandwidth utilization.
fn main() {
    let hc = caba_bench::HarnessConfig::default();
    let mut m = caba_bench::RunMatrix::new();
    print!("{}", caba_bench::fig08_bw_utilization(&hc, &mut m));
}
