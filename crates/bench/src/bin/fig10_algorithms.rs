//! Regenerates Figure 10: speedup with FPC / BDI / C-Pack / BestOfAll.
fn main() {
    let hc = caba_bench::HarnessConfig::default();
    let mut m = caba_bench::RunMatrix::new();
    print!("{}", caba_bench::fig10_algorithms(&hc, &mut m));
}
