//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. Decompression priority (high, per §3.2.3, vs. low) — quantifies why
//!    correctness-critical assist warps must take precedence.
//! 2. AWB low-priority partition size (the paper provisions 2 entries).
//! 3. Store-buffer capacity (§4.2.2 Î) and its overflow behaviour.
//! 4. The metadata cache (§4.3.2) vs. paying a metadata access per DRAM
//!    access.
//! 5. Warp scheduler policy (Table 1 uses GTO).
//!
//! Run with `cargo bench -p caba-bench --bench ablations`. The apps used
//! are a small representative trio (streaming / gather / stencil).

use caba_core::CabaController;
use caba_sim::{Design, GpuConfig, SchedulerPolicy};
use caba_stats::Table;
use caba_workloads::{app, run_app};

const APPS: [&str; 3] = ["CONS", "PVC", "LPS"];

fn scale() -> f64 {
    std::env::var("CABA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

fn caba() -> Design {
    Design::Caba(Box::new(CabaController::bdi()))
}

fn cycles(cfg: GpuConfig, design: Design, name: &str) -> u64 {
    let a = app(name).expect("known app");
    run_app(&a, cfg, design, scale())
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .cycles
}

fn section(title: &str, t: Table) {
    println!("\n================================================================");
    println!("Ablation: {title}");
    println!("================================================================");
    print!("{t}");
}

fn ablate_decompression_priority() {
    let mut t = Table::with_columns(&["App", "High (paper)", "Low (ablated)"]);
    for name in APPS {
        let hi = cycles(GpuConfig::isca2015_scaled(), caba(), name);
        let lo = cycles(
            GpuConfig::isca2015_scaled(),
            Design::Caba(Box::new(
                CabaController::bdi().with_low_priority_decompression(),
            )),
            name,
        );
        t.row(vec![
            name.into(),
            format!("{hi} cy (1.00x)"),
            format!("{lo} cy ({:.2}x)", hi as f64 / lo as f64),
        ]);
    }
    section(
        "decompression priority (§3.2.3: blocking warps must run first)",
        t,
    );
}

fn ablate_awb_entries() {
    let mut t = Table::with_columns(&["App", "AWB=1", "AWB=2 (paper)", "AWB=4", "AWB=8"]);
    for name in APPS {
        let base = cycles(GpuConfig::isca2015_scaled(), caba(), name);
        let mut row = vec![name.to_string()];
        for entries in [1usize, 2, 4, 8] {
            let mut cfg = GpuConfig::isca2015_scaled();
            cfg.awb_low_priority_entries = entries;
            let c = cycles(cfg, caba(), name);
            row.push(format!("{:.2}x", base as f64 / c as f64));
        }
        // Column 2 (AWB=2) is the default, so it reads 1.00x by construction.
        t.row(row);
    }
    section("AWB low-priority partition entries (§3.3 provisions 2)", t);
}

fn ablate_store_buffer() {
    let mut t = Table::with_columns(&["App", "SB=2", "SB=16 (paper-ish)", "SB=64", "overflows@2"]);
    for name in APPS {
        let a = app(name).expect("known app");
        let mut row = vec![name.to_string()];
        let mut ovf2 = 0;
        let base = cycles(GpuConfig::isca2015_scaled(), caba(), name);
        for sb in [2usize, 16, 64] {
            let mut cfg = GpuConfig::isca2015_scaled();
            cfg.store_buffer = sb;
            let s = run_app(&a, cfg, caba(), scale()).expect("completes");
            if sb == 2 {
                ovf2 = s.store_buffer_overflows;
            }
            row.push(format!("{:.2}x", base as f64 / s.cycles as f64));
        }
        row.push(ovf2.to_string());
        t.row(row);
    }
    section("store-buffer capacity (§4.2.2: overflow releases uncompressed)", t);
}

fn ablate_md_cache() {
    let mut t = Table::with_columns(&["App", "MD cache on (paper)", "MD cache off"]);
    for name in APPS {
        let on = cycles(GpuConfig::isca2015_scaled(), caba(), name);
        let mut cfg = GpuConfig::isca2015_scaled();
        cfg.md_cache_enabled = false;
        let off = cycles(cfg, caba(), name);
        t.row(vec![
            name.into(),
            format!("{on} cy (1.00x)"),
            format!("{off} cy ({:.2}x)", on as f64 / off as f64),
        ]);
    }
    section(
        "metadata cache (§4.3.2: avoids doubling DRAM accesses)",
        t,
    );
}

fn ablate_scheduler() {
    let mut t = Table::with_columns(&["App", "GTO (paper)", "RoundRobin", "OldestFirst"]);
    for name in APPS {
        let mut row = vec![name.to_string()];
        let base = cycles(GpuConfig::isca2015_scaled(), Design::Base, name);
        for pol in [
            SchedulerPolicy::Gto,
            SchedulerPolicy::RoundRobin,
            SchedulerPolicy::OldestFirst,
        ] {
            let mut cfg = GpuConfig::isca2015_scaled();
            cfg.scheduler = pol;
            let c = cycles(cfg, Design::Base, name);
            row.push(format!("{:.2}x", base as f64 / c as f64));
        }
        t.row(row);
    }
    section("warp scheduler policy (Table 1: GTO [68])", t);
}

fn main() {
    eprintln!("ablation harness: scale={} ", scale());
    ablate_decompression_priority();
    ablate_awb_entries();
    ablate_store_buffer();
    ablate_md_cache();
    ablate_scheduler();
    eprintln!("ablation harness complete");
}
