//! Criterion microbenchmarks: compression codec throughput (the latency
//! asymmetry that motivates the paper's per-algorithm latency modelling,
//! §6.3) and raw simulator cycle rate.
//!
//! Codec benchmarks cover **every algorithm × every line class ×
//! compress/decompress**, through the same static-dispatch entry points the
//! simulator's hot path uses ([`Algorithm::compress_line`] and the
//! allocation-free [`Algorithm::decompress_into`]) — so a regression here
//! is a regression in the per-access simulation cost, not just in a codec
//! taken in isolation.

use caba_compress::{Algorithm, Bdi, Fpc, LINE_SIZE};
use caba_isa::{AluOp, Kernel, LaunchDims, ProgramBuilder, Reg, Space, Special, Src, Width};
use caba_sim::{Design, Gpu, GpuConfig};
use caba_stats::Rng64;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

/// The data-profile classes the workloads generate (see
/// `caba_workloads::data`), each stressing a different codec strength.
fn line_classes() -> Vec<(&'static str, Vec<u8>)> {
    let mut rng = Rng64::new(7);
    // All-zero line: best case for every algorithm.
    let zeros = vec![0u8; LINE_SIZE];
    // Narrow values off a large common base: BDI's target case.
    let mut narrow = Vec::with_capacity(LINE_SIZE);
    for _ in 0..LINE_SIZE / 4 {
        narrow.extend_from_slice(&(0x1000_0000u32 + rng.range_u64(200) as u32).to_le_bytes());
    }
    // Sparse small integers: compressible by all three algorithms.
    let mut sparse = Vec::with_capacity(LINE_SIZE);
    for _ in 0..LINE_SIZE / 4 {
        let w = if rng.chance(0.6) {
            0u32
        } else {
            rng.range_u64(100) as u32
        };
        sparse.extend_from_slice(&w.to_le_bytes());
    }
    // Uniform random bytes: incompressible (compress returns None; still
    // benchmarked — the simulator pays this path on every incompressible
    // store).
    let random: Vec<u8> = (0..LINE_SIZE).map(|_| rng.range_u64(256) as u8).collect();
    vec![
        ("zeros", zeros),
        ("narrow", narrow),
        ("sparse", sparse),
        ("random", random),
    ]
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for (class, line) in line_classes() {
        for alg in Algorithm::ALL {
            g.bench_function(format!("{}/{class}/compress", alg.name()), |b| {
                b.iter(|| black_box(alg.compress_line(black_box(&line))))
            });
            // Decompression only exists for lines the codec can encode.
            if let Some(z) = alg.compress_line(&line) {
                let mut out = [0u8; LINE_SIZE];
                g.bench_function(format!("{}/{class}/decompress", alg.name()), |b| {
                    b.iter(|| {
                        let n = alg
                            .decompress_into(black_box(&z), black_box(&mut out))
                            .expect("round trip");
                        black_box(n)
                    })
                });
            }
        }
    }
    g.finish();
}

/// The size-only scan paths the simulator runs far more often than full
/// encodes: every store-side trigger and every metadata lookup asks only
/// "would this line compress, and to how many bytes?". These walk the
/// line as `u64` lanes (autovectorizable chunked loops, no `BitWriter`,
/// no heap), so they are benchmarked separately from the emitting codecs
/// above — a regression here hits every compression-design cell even when
/// the line never gets encoded.
fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    let bdi = Bdi::new();
    let fpc = Fpc::new();
    for (class, line) in line_classes() {
        g.bench_function(format!("bdi/{class}/scan_size"), |b| {
            b.iter(|| black_box(bdi.scan_size(black_box(&line))))
        });
        g.bench_function(format!("fpc/{class}/scan_size"), |b| {
            b.iter(|| black_box(fpc.scan_size(black_box(&line))))
        });
        // The dispatch wrapper the simulator's oracle actually calls.
        for alg in Algorithm::ALL {
            g.bench_function(format!("{}/{class}/scan_line_size", alg.name()), |b| {
                b.iter(|| black_box(alg.scan_line_size(black_box(&line))))
            });
        }
    }
    g.finish();
}

fn sim_kernel(n: u32) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
    b.alu(AluOp::Add, v, Src::Reg(v), Src::Imm(1));
    b.st(Space::Global, Width::B4, Src::Reg(v), Src::Reg(addr), 0);
    b.exit();
    Kernel::new("bench", b.build(), LaunchDims::new(n.div_ceil(128), 128))
        .with_params(vec![0x1_0000])
}

fn seeded_gpu(cfg: GpuConfig, threads: u64) -> Gpu {
    let mut gpu = Gpu::new(cfg, Design::Base);
    for i in 0..threads {
        gpu.mem_mut().write_u32(0x1_0000 + i * 4, i as u32);
    }
    gpu
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let kernel = sim_kernel(4096);
    g.bench_function("base_4096_threads", |b| {
        b.iter_batched(
            || seeded_gpu(GpuConfig::small(), 4096),
            |mut gpu| black_box(gpu.run(&kernel, 10_000_000).expect("completes")),
            BatchSize::LargeInput,
        )
    });
    // Single-SM cycle loop: isolates the per-cycle engine cost (dispatch,
    // SM phase, delta commit, crossbar merge) from multi-SM effects —
    // the inner-loop number the intra-run sharding work optimizes.
    let single_kernel = sim_kernel(1024);
    g.bench_function("single_sm_1024_threads", |b| {
        b.iter_batched(
            || {
                let mut cfg = GpuConfig::small();
                cfg.num_sms = 1;
                cfg.num_channels = 1;
                seeded_gpu(cfg, 1024)
            },
            |mut gpu| black_box(gpu.run(&single_kernel, 10_000_000).expect("completes")),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_codecs, bench_compress, bench_simulator);
criterion_main!(benches);
