//! Criterion microbenchmarks: compression codec throughput (the latency
//! asymmetry that motivates the paper's per-algorithm latency modelling,
//! §6.3) and raw simulator cycle rate.

use caba_compress::{Algorithm, LINE_SIZE};
use caba_isa::{AluOp, Kernel, LaunchDims, ProgramBuilder, Reg, Space, Special, Src, Width};
use caba_sim::{Design, Gpu, GpuConfig};
use caba_stats::Rng64;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

/// Sparse small integers: compressible by all three algorithms, so every
/// codec's decompression path can be benchmarked on the same line.
fn compressible_line(seed: u64) -> Vec<u8> {
    let mut rng = Rng64::new(seed);
    let mut line = Vec::with_capacity(LINE_SIZE);
    for _ in 0..LINE_SIZE / 4 {
        let w = if rng.chance(0.6) {
            0u32
        } else {
            rng.range_u64(100) as u32
        };
        line.extend_from_slice(&w.to_le_bytes());
    }
    line
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for alg in Algorithm::ALL {
        let comp = alg.compressor();
        let line = compressible_line(7);
        g.bench_function(format!("{}/compress", alg.name()), |b| {
            b.iter(|| black_box(comp.compress(black_box(&line))))
        });
        let z = comp.compress(&line).expect("compressible");
        g.bench_function(format!("{}/decompress", alg.name()), |b| {
            b.iter(|| black_box(comp.decompress(black_box(&z)).expect("round trip")))
        });
    }
    g.finish();
}

fn sim_kernel(n: u32) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
    b.alu(AluOp::Add, v, Src::Reg(v), Src::Imm(1));
    b.st(Space::Global, Width::B4, Src::Reg(v), Src::Reg(addr), 0);
    b.exit();
    Kernel::new("bench", b.build(), LaunchDims::new(n.div_ceil(128), 128))
        .with_params(vec![0x1_0000])
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let kernel = sim_kernel(4096);
    g.bench_function("base_4096_threads", |b| {
        b.iter_batched(
            || {
                let mut gpu = Gpu::new(GpuConfig::small(), Design::Base);
                for i in 0..4096u64 {
                    gpu.mem_mut().write_u32(0x1_0000 + i * 4, i as u32);
                }
                gpu
            },
            |mut gpu| black_box(gpu.run(&kernel, 10_000_000).expect("completes")),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_codecs, bench_simulator);
criterion_main!(benches);
