//! Regenerates every table and figure of the paper's evaluation in one run.
//!
//! Invoked by `cargo bench -p caba-bench --bench figures`. Set
//! `CABA_BENCH_SCALE` (default 0.5) to trade time for fidelity.

use caba_bench::{
    fig01_stall_breakdown, fig02_unallocated_registers, fig05_bdi_example, fig07_performance,
    fig08_bw_utilization, fig09_energy, fig10_algorithms, fig11_compression_ratio,
    fig12_bw_sensitivity, fig13_cache_compression, tab_md_cache, HarnessConfig, RunMatrix,
};
use std::time::Instant;

fn section(title: &str, body: impl FnOnce() -> caba_stats::Table) {
    let t0 = Instant::now();
    eprintln!("== {title} ==");
    let table = body();
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
    print!("{table}");
    eprintln!("   ({:.1?})", t0.elapsed());
}

fn main() {
    // `cargo bench -- --bench` style filter args are accepted and ignored
    // except for an optional figure filter like `fig07`.
    let filter: Option<String> = std::env::args()
        .skip(1)
        .find(|a| a.starts_with("fig") || a.starts_with("tab"));
    let want = |name: &str| filter.as_deref().is_none_or(|f| name.starts_with(f));

    let hc = HarnessConfig::default();
    eprintln!(
        "figure harness: scale={} (override with CABA_BENCH_SCALE)",
        hc.scale
    );
    let mut m = RunMatrix::new();

    if want("fig05") {
        section("Figure 5: BDI compression of the PVC example line", fig05_bdi_example);
    }
    if want("fig02") {
        section(
            "Figure 2: fraction of statically unallocated registers",
            fig02_unallocated_registers,
        );
    }
    if want("fig11") {
        section("Figure 11: compression ratio per algorithm", || {
            fig11_compression_ratio(&hc)
        });
    }
    if want("fig01") {
        section("Figure 1: issue-cycle breakdown at 1/2x, 1x, 2x bandwidth", || {
            fig01_stall_breakdown(&hc)
        });
    }
    if want("fig07") {
        section("Figure 7: normalized performance (5 designs)", || {
            fig07_performance(&hc, &mut m)
        });
    }
    if want("fig08") {
        section("Figure 8: memory bandwidth utilization", || {
            fig08_bw_utilization(&hc, &mut m)
        });
    }
    if want("fig09") {
        section("Figure 9: normalized energy (+ §6.2 DRAM energy & power)", || {
            fig09_energy(&hc, &mut m)
        });
    }
    if want("tab_md") {
        section("§4.3.2: metadata-cache hit rate", || tab_md_cache(&hc, &mut m));
    }
    if want("fig10") {
        section("Figure 10: speedup with different algorithms", || {
            fig10_algorithms(&hc, &mut m)
        });
    }
    if want("fig12") {
        section("Figure 12: sensitivity to peak memory bandwidth", || {
            fig12_bw_sensitivity(&hc)
        });
    }
    if want("fig13") {
        section("Figure 13: selective cache compression", || {
            fig13_cache_compression(&hc, &mut m)
        });
    }
    eprintln!("figure harness complete");
}
