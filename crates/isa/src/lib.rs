//! The SIMT instruction set executed by the CABA GPU model.
//!
//! The paper's assist warps are "a set of instructions issued into the core
//! pipelines … executed in lock-step across all the SIMT lanes, just like any
//! regular instruction, with an active mask to disable lanes as necessary"
//! (§3.2.1). To reproduce that faithfully we define a small PTX-like ISA that
//! both the synthetic application kernels (`caba-workloads`) and the CABA
//! compression/decompression subroutines (`caba-core`) are written in, and
//! that the simulator (`caba-sim`) executes functionally and times.
//!
//! Highlights relevant to the paper:
//!
//! * [`Op::VoteAll`] — the warp-wide AND of per-lane predicates ("global
//!   predicate register", §4.1.2) used by the BDI compression subroutine to
//!   check that *every* word in a cache line fits an encoding.
//! * [`Op::LdPacked`] / [`Op::StPacked`] — variable-size per-lane accesses
//!   `base + lane·k`, modelling the reuse of the coalescing/address-generation
//!   logic for variable-length compressed words (§4.1.3).
//! * Explicit reconvergence PCs on branches, so the simulator's SIMT stack
//!   mirrors a real post-dominator-based reconvergence mechanism.
//!
//! # Examples
//!
//! Build a one-instruction kernel that stores each thread's global id:
//!
//! ```
//! use caba_isa::{ProgramBuilder, Reg, Src, Special, Width, Space};
//!
//! let mut b = ProgramBuilder::new();
//! let tid = Reg(0);
//! let addr = Reg(1);
//! b.global_thread_id(tid);
//! b.alu(caba_isa::AluOp::Shl, addr, Src::Reg(tid), Src::Imm(2));
//! b.alu(caba_isa::AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
//! b.st(Space::Global, Width::B4, Src::Reg(tid), Src::Reg(addr), 0);
//! b.exit();
//! let program = b.build();
//! assert!(program.len() > 0);
//! ```

pub mod builder;
pub mod disasm;
pub mod exec;
pub mod kernel;

pub use builder::{Label, ProgramBuilder};
pub use kernel::{Kernel, LaunchDims};

use std::fmt;

/// Number of threads (lanes) per warp, fixed at 32 as in Table 1.
pub const WARP_SIZE: usize = 32;

/// A per-lane general-purpose register index.
///
/// Registers are 64 bits wide in the model; 32-bit operations use the low
/// half. Kernels declare how many registers each thread needs — the same
/// number the compiler would report for occupancy calculations (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A per-lane 1-bit predicate register index (four per thread, like PTX's
/// `%p0..%p3` subset we need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub u8);

/// Number of predicate registers per thread.
pub const NUM_PREGS: usize = 4;

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Read-only per-thread special values (PTX special registers + kernel
/// parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// Thread index within its block.
    Tid,
    /// Block index within the grid.
    Ctaid,
    /// Threads per block.
    Ntid,
    /// Blocks in the grid.
    Nctaid,
    /// Lane index within the warp (0..32).
    Lane,
    /// Warp index within the block.
    WarpInBlock,
    /// Kernel launch parameter `n` (64-bit, e.g. an array base address).
    Param(u8),
}

/// An instruction source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// A general-purpose register.
    Reg(Reg),
    /// A 64-bit immediate.
    Imm(u64),
    /// A special value.
    Sp(Special),
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Src {
        Src::Reg(r)
    }
}

/// Memory space of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Off-chip global memory, cached in L1/L2.
    Global,
    /// On-chip per-block shared memory (scratchpad).
    Shared,
}

/// Access width of a load or store, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// The width that holds exactly `n` bytes, if any.
    pub fn from_bytes(n: u64) -> Option<Width> {
        match n {
            1 => Some(Width::B1),
            2 => Some(Width::B2),
            4 => Some(Width::B4),
            8 => Some(Width::B8),
            _ => None,
        }
    }
}

/// Integer/logical ALU operations (64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 64 bits).
    Mul,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Move `a` (ignores `b`).
    Mov,
    /// Unsigned remainder; `x % 0 == x` (so workloads can never fault).
    Rem,
    /// Unsigned division; `x / 0 == 0`.
    Div,
}

/// Single-precision float operations (on the low 32 bits of registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FAluOp {
    /// `a + b`.
    FAdd,
    /// `a - b`.
    FSub,
    /// `a * b`.
    FMul,
    /// Float-to-signed-int conversion (ignores `b`).
    F2I,
    /// Signed-int-to-float conversion (ignores `b`).
    I2F,
}

/// Special Function Unit operations — long-latency transcendental ops that
/// contribute to the data-dependence stalls the paper notes for `dmr` (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuOp {
    /// Approximate reciprocal.
    Rcp,
    /// Approximate reciprocal square root.
    Rsqrt,
    /// Sine.
    Sin,
    /// Base-2 exponential.
    Ex2,
    /// Base-2 logarithm.
    Lg2,
}

/// Comparison operator for [`Op::SetP`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    LtS,
    /// Signed less-or-equal.
    LeS,
    /// Signed greater-than.
    GtS,
    /// Signed greater-or-equal.
    GeS,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
}

/// Boolean combination for predicate registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PBoolOp {
    /// `a & b`.
    And,
    /// `a | b`.
    Or,
    /// `a & !b`.
    AndNot,
    /// `!a` (ignores `b`).
    Not,
    /// Copy `a` (ignores `b`).
    Mov,
}

/// The operation performed by an [`Instr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer ALU operation `dst = op(a, b)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Src,
        /// Second operand.
        b: Src,
    },
    /// Float operation `dst = op(a, b)` on 32-bit lanes.
    FAlu {
        /// Operation.
        op: FAluOp,
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Src,
        /// Second operand.
        b: Src,
    },
    /// Special-function-unit operation `dst = op(a)`.
    Sfu {
        /// Operation.
        op: SfuOp,
        /// Destination register.
        dst: Reg,
        /// Operand.
        a: Src,
    },
    /// Predicate set `pred = a <cmp> b` per lane.
    SetP {
        /// Destination predicate.
        pred: Pred,
        /// Comparison.
        cmp: CmpOp,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// Predicate boolean combine `dst = op(a, b)` per lane.
    PBool {
        /// Destination predicate.
        dst: Pred,
        /// Operation.
        op: PBoolOp,
        /// First source predicate.
        a: Pred,
        /// Second source predicate (ignored by `Not`/`Mov`).
        b: Pred,
    },
    /// Warp-wide AND of `src` over *active* lanes, broadcast into `dst` of
    /// every active lane — the "global predicate register" of §4.1.2.
    VoteAll {
        /// Destination predicate (broadcast).
        dst: Pred,
        /// Source predicate.
        src: Pred,
    },
    /// Warp-wide OR of `src` over active lanes, broadcast into `dst`.
    VoteAny {
        /// Destination predicate (broadcast).
        dst: Pred,
        /// Source predicate.
        src: Pred,
    },
    /// Warp ballot (Fermi `__ballot()`): `dst` in every executing lane
    /// receives the 32-bit mask of executing lanes whose `src` predicate is
    /// true. The BDI compression subroutine uses this to materialize the
    /// base-select mask bytes of the payload (§4.1.2).
    Ballot {
        /// Destination register (broadcast mask).
        dst: Reg,
        /// Source predicate.
        src: Pred,
    },
    /// Priority-encoded vote: `dst` is true only in the lowest-indexed
    /// executing lane where `src` is true (derivable from the ballot
    /// network). Used to elect the explicit-base lane during compression.
    FindFirst {
        /// Destination predicate.
        dst: Pred,
        /// Source predicate.
        src: Pred,
    },
    /// Select `dst = pred ? a : b` per lane.
    Selp {
        /// Destination register.
        dst: Reg,
        /// Value when predicate is true.
        a: Src,
        /// Value when predicate is false.
        b: Src,
        /// Selector predicate.
        pred: Pred,
    },
    /// Load `dst = mem[addr + offset]`, zero-extended.
    Ld {
        /// Memory space.
        space: Space,
        /// Access width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Address operand (per-lane).
        addr: Src,
        /// Constant byte offset.
        offset: i64,
    },
    /// Store `mem[addr + offset] = src` (low `width` bytes).
    St {
        /// Memory space.
        space: Space,
        /// Access width.
        width: Width,
        /// Value to store.
        src: Src,
        /// Address operand (per-lane).
        addr: Src,
        /// Constant byte offset.
        offset: i64,
    },
    /// Packed load: lane `i` loads `k` bytes at `base + i·k` (zero-extended).
    /// `k` may be 1, 2, 4 or 8. Models coalescer-assisted variable-width
    /// gathers used by compression subroutines (§4.1.3).
    LdPacked {
        /// Bytes per lane (1, 2, 4 or 8).
        k: u8,
        /// Destination register.
        dst: Reg,
        /// Warp-uniform base address (lane 0's value is used).
        base: Src,
    },
    /// Packed store: lane `i` stores the low `k` bytes at `base + i·k`.
    StPacked {
        /// Bytes per lane (1, 2, 4 or 8).
        k: u8,
        /// Value to store.
        src: Src,
        /// Warp-uniform base address (lane 0's value is used).
        base: Src,
    },
    /// Branch to `target`. If the instruction is guarded, lanes whose guard
    /// fails fall through, possibly diverging; `reconv` is the immediate
    /// post-dominator where the warp re-converges.
    Bra {
        /// Branch target PC.
        target: usize,
        /// Reconvergence PC.
        reconv: usize,
    },
    /// Block-wide barrier.
    Bar,
    /// Thread exit.
    Exit,
    /// No operation.
    Nop,
}

/// Functional-unit class an instruction issues to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// The 32-wide SP/ALU pipeline.
    Sp,
    /// The special function unit.
    Sfu,
    /// The load/store (memory) pipeline.
    Mem,
}

/// A guarded machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The operation.
    pub op: Op,
    /// Optional guard: the instruction executes in a lane only when
    /// `pred == polarity` there. A guarded [`Op::Bra`] is a conditional
    /// branch.
    pub guard: Option<(Pred, bool)>,
}

impl Instr {
    /// An unguarded instruction.
    pub fn new(op: Op) -> Self {
        Instr { op, guard: None }
    }

    /// A guarded instruction (executes where `pred == polarity`).
    pub fn guarded(op: Op, pred: Pred, polarity: bool) -> Self {
        Instr {
            op,
            guard: Some((pred, polarity)),
        }
    }

    /// Which pipeline this instruction issues to.
    pub fn fu_class(&self) -> FuClass {
        match self.op {
            Op::Sfu { .. } => FuClass::Sfu,
            Op::Ld { .. } | Op::St { .. } | Op::LdPacked { .. } | Op::StPacked { .. } => {
                FuClass::Mem
            }
            _ => FuClass::Sp,
        }
    }

    /// True when this instruction steers control flow or computes the
    /// predicate/reconvergence state that does: branches, barriers, exits,
    /// and the predicate-producing machinery (`SetP`, `PBool`, votes,
    /// ballots, priority encode). The simulator's Fig. 1 accounting uses
    /// this to attribute scoreboard stalls on such instructions to the
    /// control-reconvergence bucket rather than the generic pipeline one.
    pub fn steers_control(&self) -> bool {
        matches!(
            self.op,
            Op::Bra { .. }
                | Op::Bar
                | Op::Exit
                | Op::SetP { .. }
                | Op::PBool { .. }
                | Op::VoteAll { .. }
                | Op::VoteAny { .. }
                | Op::Ballot { .. }
                | Op::FindFirst { .. }
        )
    }

    /// Destination register written by this instruction, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        match self.op {
            Op::Alu { dst, .. }
            | Op::FAlu { dst, .. }
            | Op::Sfu { dst, .. }
            | Op::Selp { dst, .. }
            | Op::Ld { dst, .. }
            | Op::Ballot { dst, .. }
            | Op::LdPacked { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Source registers read by this instruction, as a fixed-size array
    /// (`None` in unused positions). This is the allocation-free form used
    /// by the per-cycle scoreboard hazard check; [`Instr::src_regs`] is the
    /// collecting convenience wrapper.
    pub fn src_regs_fixed(&self) -> [Option<Reg>; 3] {
        fn reg(s: Src) -> Option<Reg> {
            match s {
                Src::Reg(r) => Some(r),
                _ => None,
            }
        }
        match self.op {
            Op::Alu { a, b, .. } | Op::FAlu { a, b, .. } | Op::SetP { a, b, .. } => {
                [reg(a), reg(b), None]
            }
            Op::Sfu { a, .. } => [reg(a), None, None],
            Op::Selp { a, b, .. } => [reg(a), reg(b), None],
            Op::Ld { addr, .. } => [reg(addr), None, None],
            Op::St { src, addr, .. } => [reg(src), reg(addr), None],
            Op::LdPacked { base, .. } => [reg(base), None, None],
            Op::StPacked { src, base, .. } => [reg(src), reg(base), None],
            Op::PBool { .. }
            | Op::VoteAll { .. }
            | Op::VoteAny { .. }
            | Op::Ballot { .. }
            | Op::FindFirst { .. }
            | Op::Bra { .. }
            | Op::Bar
            | Op::Exit
            | Op::Nop => [None; 3],
        }
    }

    /// Source registers read by this instruction (up to 3).
    pub fn src_regs(&self) -> Vec<Reg> {
        self.src_regs_fixed().into_iter().flatten().collect()
    }

    /// True for loads (global or shared, plain or packed).
    pub fn is_load(&self) -> bool {
        matches!(self.op, Op::Ld { .. } | Op::LdPacked { .. })
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self.op, Op::St { .. } | Op::StPacked { .. })
    }

    /// True for accesses to global memory.
    pub fn is_global_access(&self) -> bool {
        match self.op {
            Op::Ld { space, .. } | Op::St { space, .. } => space == Space::Global,
            Op::LdPacked { .. } | Op::StPacked { .. } => true,
            _ => false,
        }
    }
}

/// A straight-line-addressable sequence of instructions (one kernel body or
/// one assist-warp subroutine).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program from raw instructions.
    ///
    /// # Panics
    ///
    /// Panics if any branch target or reconvergence PC is out of range.
    pub fn new(instrs: Vec<Instr>) -> Self {
        for (pc, i) in instrs.iter().enumerate() {
            if let Op::Bra { target, reconv } = i.op {
                assert!(
                    target <= instrs.len() && reconv <= instrs.len(),
                    "instruction {pc}: branch target {target}/reconv {reconv} out of range"
                );
            }
        }
        Program { instrs }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// All instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Highest register index used, plus one (a lower bound on the register
    /// footprint a compiler would allocate).
    pub fn max_reg(&self) -> u16 {
        let mut m = 0u16;
        for i in &self.instrs {
            if let Some(Reg(d)) = i.dst_reg() {
                m = m.max(d + 1);
            }
            for Reg(s) in i.src_regs() {
                m = m.max(s + 1);
            }
        }
        m
    }

    /// Deterministic content hash over the instruction sequence.
    ///
    /// Snapshots identify in-flight programs by this hash instead of
    /// serializing instruction encodings: subroutine programs are enumerable
    /// from the controller at restore time, so a hash lookup reconstructs
    /// the exact `Arc<Program>`. Uses the repo's seed-free `FxHasher`, so the
    /// value is stable across runs and platforms.
    pub fn content_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = caba_stats::fxhash::FxHasher::default();
        self.instrs.len().hash(&mut h);
        for i in &self.instrs {
            i.hash(&mut h);
        }
        h.finish()
    }
}

impl caba_stats::snap::SnapshotState for Reg {
    fn save(&self, w: &mut caba_stats::snap::SnapshotWriter) {
        w.u16(self.0);
    }
    fn load(
        r: &mut caba_stats::snap::SnapshotReader<'_>,
    ) -> Result<Self, caba_stats::snap::SnapError> {
        Ok(Reg(r.u16()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_classification() {
        let ld = Instr::new(Op::Ld {
            space: Space::Global,
            width: Width::B4,
            dst: Reg(0),
            addr: Src::Reg(Reg(1)),
            offset: 0,
        });
        assert_eq!(ld.fu_class(), FuClass::Mem);
        assert!(ld.is_load());
        assert!(!ld.is_store());
        assert!(ld.is_global_access());

        let sfu = Instr::new(Op::Sfu {
            op: SfuOp::Rcp,
            dst: Reg(2),
            a: Src::Reg(Reg(0)),
        });
        assert_eq!(sfu.fu_class(), FuClass::Sfu);

        let add = Instr::new(Op::Alu {
            op: AluOp::Add,
            dst: Reg(0),
            a: Src::Reg(Reg(1)),
            b: Src::Imm(1),
        });
        assert_eq!(add.fu_class(), FuClass::Sp);
    }

    #[test]
    fn src_and_dst_registers() {
        let i = Instr::new(Op::St {
            space: Space::Global,
            width: Width::B4,
            src: Src::Reg(Reg(3)),
            addr: Src::Reg(Reg(4)),
            offset: 8,
        });
        assert_eq!(i.dst_reg(), None);
        assert_eq!(i.src_regs(), vec![Reg(3), Reg(4)]);
        assert!(i.is_store());
    }

    #[test]
    fn max_reg_counts_sources_and_dests() {
        let p = Program::new(vec![
            Instr::new(Op::Alu {
                op: AluOp::Add,
                dst: Reg(7),
                a: Src::Reg(Reg(2)),
                b: Src::Imm(0),
            }),
            Instr::new(Op::Exit),
        ]);
        assert_eq!(p.max_reg(), 8);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn branch_out_of_range_panics() {
        Program::new(vec![Instr::new(Op::Bra {
            target: 99,
            reconv: 0,
        })]);
    }

    #[test]
    fn width_round_trip() {
        for w in [Width::B1, Width::B2, Width::B4, Width::B8] {
            assert_eq!(Width::from_bytes(w.bytes()), Some(w));
        }
        assert_eq!(Width::from_bytes(3), None);
    }

    #[test]
    fn control_steering_classification() {
        let control = [
            Op::Bra {
                target: 0,
                reconv: 0,
            },
            Op::Bar,
            Op::Exit,
            Op::SetP {
                pred: Pred(0),
                cmp: CmpOp::Eq,
                a: Src::Reg(Reg(0)),
                b: Src::Imm(0),
            },
            Op::PBool {
                dst: Pred(0),
                op: PBoolOp::And,
                a: Pred(0),
                b: Pred(1),
            },
            Op::VoteAll {
                dst: Pred(0),
                src: Pred(1),
            },
            Op::VoteAny {
                dst: Pred(0),
                src: Pred(1),
            },
            Op::Ballot {
                dst: Reg(0),
                src: Pred(0),
            },
            Op::FindFirst {
                dst: Pred(0),
                src: Pred(1),
            },
        ];
        for op in control {
            assert!(Instr::new(op).steers_control(), "{op:?}");
        }
        let data = [
            Op::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Src::Reg(Reg(1)),
                b: Src::Imm(1),
            },
            Op::Ld {
                space: Space::Global,
                width: Width::B4,
                dst: Reg(0),
                addr: Src::Reg(Reg(1)),
                offset: 0,
            },
            Op::Nop,
        ];
        for op in data {
            assert!(!Instr::new(op).steers_control(), "{op:?}");
        }
    }

    #[test]
    fn packed_ops_classify_as_global_mem() {
        let i = Instr::new(Op::LdPacked {
            k: 2,
            dst: Reg(0),
            base: Src::Reg(Reg(1)),
        });
        assert_eq!(i.fu_class(), FuClass::Mem);
        assert!(i.is_global_access());
        assert!(i.is_load());
    }
}
