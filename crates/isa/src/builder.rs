//! Ergonomic construction of [`Program`]s with labels and structured
//! control flow.

use crate::{
    AluOp, CmpOp, FAluOp, Instr, Op, PBoolOp, Pred, Program, Reg, SfuOp, Space, Special, Src, Width,
};

/// A forward-reference label handle produced by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum Fixup {
    Target,
    Reconv,
}

/// Builds a [`Program`] instruction by instruction.
///
/// Branch targets can be bound after the branch is emitted via [`Label`]s;
/// the structured helpers [`ProgramBuilder::if_then`] and
/// [`ProgramBuilder::do_while`] emit branches with correct reconvergence PCs
/// so the simulator's SIMT stack behaves like a post-dominator mechanism.
///
/// # Examples
///
/// ```
/// use caba_isa::{ProgramBuilder, Reg, Pred, Src, CmpOp, AluOp};
/// let mut b = ProgramBuilder::new();
/// let r = Reg(0);
/// b.movi(r, 0);
/// // r += 1 while r < 10
/// b.do_while(|b| {
///     b.alu(AluOp::Add, r, Src::Reg(r), Src::Imm(1));
///     b.setp(Pred(0), CmpOp::LtU, Src::Reg(r), Src::Imm(10));
///     Pred(0)
/// });
/// b.exit();
/// let p = b.build();
/// assert!(p.len() >= 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label, Fixup)>,
    guard: Option<(Pred, bool)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current program counter (index of the next emitted instruction).
    pub fn pc(&self) -> usize {
        self.instrs.len()
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current PC.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.pc());
    }

    /// Sets a guard applied to every subsequently emitted instruction until
    /// [`ProgramBuilder::clear_guard`].
    pub fn set_guard(&mut self, pred: Pred, polarity: bool) {
        self.guard = Some((pred, polarity));
    }

    /// Clears the ambient guard.
    pub fn clear_guard(&mut self) {
        self.guard = None;
    }

    /// Emits a raw instruction (applying the ambient guard if the instruction
    /// itself is unguarded).
    pub fn push(&mut self, mut instr: Instr) -> usize {
        if instr.guard.is_none() {
            instr.guard = self.guard;
        }
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    // ----- straight-line instruction helpers ------------------------------

    /// Emits an integer ALU op.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Src, b: Src) -> usize {
        self.push(Instr::new(Op::Alu { op, dst, a, b }))
    }

    /// Emits `dst = imm`.
    pub fn movi(&mut self, dst: Reg, imm: u64) -> usize {
        self.alu(AluOp::Mov, dst, Src::Imm(imm), Src::Imm(0))
    }

    /// Emits `dst = src` (register or special move).
    pub fn mov(&mut self, dst: Reg, src: Src) -> usize {
        self.alu(AluOp::Mov, dst, src, Src::Imm(0))
    }

    /// Emits a float op.
    pub fn falu(&mut self, op: FAluOp, dst: Reg, a: Src, b: Src) -> usize {
        self.push(Instr::new(Op::FAlu { op, dst, a, b }))
    }

    /// Emits an SFU op.
    pub fn sfu(&mut self, op: SfuOp, dst: Reg, a: Src) -> usize {
        self.push(Instr::new(Op::Sfu { op, dst, a }))
    }

    /// Emits a predicate-setting comparison.
    pub fn setp(&mut self, pred: Pred, cmp: CmpOp, a: Src, b: Src) -> usize {
        self.push(Instr::new(Op::SetP { pred, cmp, a, b }))
    }

    /// Emits a predicate boolean combine.
    pub fn pbool(&mut self, dst: Pred, op: PBoolOp, a: Pred, b: Pred) -> usize {
        self.push(Instr::new(Op::PBool { dst, op, a, b }))
    }

    /// Emits a warp-wide all-lanes vote (the global predicate of §4.1.2).
    pub fn vote_all(&mut self, dst: Pred, src: Pred) -> usize {
        self.push(Instr::new(Op::VoteAll { dst, src }))
    }

    /// Emits a warp-wide any-lane vote.
    pub fn vote_any(&mut self, dst: Pred, src: Pred) -> usize {
        self.push(Instr::new(Op::VoteAny { dst, src }))
    }

    /// Emits a warp ballot into a register.
    pub fn ballot(&mut self, dst: Reg, src: Pred) -> usize {
        self.push(Instr::new(Op::Ballot { dst, src }))
    }

    /// Emits a find-first-set-lane vote.
    pub fn find_first(&mut self, dst: Pred, src: Pred) -> usize {
        self.push(Instr::new(Op::FindFirst { dst, src }))
    }

    /// Emits a select.
    pub fn selp(&mut self, dst: Reg, a: Src, b: Src, pred: Pred) -> usize {
        self.push(Instr::new(Op::Selp { dst, a, b, pred }))
    }

    /// Emits a load.
    pub fn ld(&mut self, space: Space, width: Width, dst: Reg, addr: Src, offset: i64) -> usize {
        self.push(Instr::new(Op::Ld {
            space,
            width,
            dst,
            addr,
            offset,
        }))
    }

    /// Emits a store.
    pub fn st(&mut self, space: Space, width: Width, src: Src, addr: Src, offset: i64) -> usize {
        self.push(Instr::new(Op::St {
            space,
            width,
            src,
            addr,
            offset,
        }))
    }

    /// Emits a packed per-lane load (`k` bytes per lane from `base + lane·k`).
    pub fn ld_packed(&mut self, k: u8, dst: Reg, base: Src) -> usize {
        assert!(matches!(k, 1 | 2 | 4 | 8), "packed width must be 1/2/4/8");
        self.push(Instr::new(Op::LdPacked { k, dst, base }))
    }

    /// Emits a packed per-lane store.
    pub fn st_packed(&mut self, k: u8, src: Src, base: Src) -> usize {
        assert!(matches!(k, 1 | 2 | 4 | 8), "packed width must be 1/2/4/8");
        self.push(Instr::new(Op::StPacked { k, src, base }))
    }

    /// Emits a block barrier.
    pub fn bar(&mut self) -> usize {
        self.push(Instr::new(Op::Bar))
    }

    /// Emits a thread exit.
    pub fn exit(&mut self) -> usize {
        self.push(Instr::new(Op::Exit))
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> usize {
        self.push(Instr::new(Op::Nop))
    }

    /// Computes the global thread id `ctaid * ntid + tid` into `dst`.
    pub fn global_thread_id(&mut self, dst: Reg) -> usize {
        let first = self.alu(
            AluOp::Mul,
            dst,
            Src::Sp(Special::Ctaid),
            Src::Sp(Special::Ntid),
        );
        self.alu(AluOp::Add, dst, Src::Reg(dst), Src::Sp(Special::Tid));
        first
    }

    // ----- control flow ----------------------------------------------------

    /// Emits an unconditional branch to `label` (reconvergence at the
    /// target, which is correct for uniform jumps).
    pub fn jump(&mut self, label: Label) -> usize {
        let pc = self.push(Instr::new(Op::Bra {
            target: usize::MAX,
            reconv: usize::MAX,
        }));
        self.fixups.push((pc, label, Fixup::Target));
        self.fixups.push((pc, label, Fixup::Reconv));
        pc
    }

    /// Emits a conditional branch: lanes where `pred == polarity` jump to
    /// `target`; the warp reconverges at `reconv`.
    pub fn branch_if(&mut self, pred: Pred, polarity: bool, target: Label, reconv: Label) -> usize {
        let pc = self.push(Instr::guarded(
            Op::Bra {
                target: usize::MAX,
                reconv: usize::MAX,
            },
            pred,
            polarity,
        ));
        self.fixups.push((pc, target, Fixup::Target));
        self.fixups.push((pc, reconv, Fixup::Reconv));
        pc
    }

    /// Structured `if (pred == polarity) { body }`. The body executes in
    /// lanes where the condition holds; the warp reconverges after it.
    pub fn if_then<F: FnOnce(&mut Self)>(&mut self, pred: Pred, polarity: bool, body: F) {
        let end = self.label();
        // Lanes where the condition FAILS jump over the body.
        self.branch_if(pred, !polarity, end, end);
        body(self);
        self.bind(end);
    }

    /// Structured `do { body } while (pred)`, where `body` returns the loop
    /// predicate. Lanes exit as the predicate goes false and reconverge after
    /// the loop.
    pub fn do_while<F: FnOnce(&mut Self) -> Pred>(&mut self, body: F) {
        let top = self.label();
        let after = self.label();
        self.bind(top);
        let pred = body(self);
        self.branch_if(pred, true, top, after);
        self.bind(after);
    }

    /// Finalizes the program, resolving all labels.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> Program {
        for &(pc, label, fixup) in &self.fixups {
            let bound = self.labels[label.0]
                .unwrap_or_else(|| panic!("label {label:?} used at pc {pc} but never bound"));
            if let Op::Bra { target, reconv } = &mut self.instrs[pc].op {
                match fixup {
                    Fixup::Target => *target = bound,
                    Fixup::Reconv => *reconv = bound,
                }
            } else {
                unreachable!("fixup on non-branch");
            }
        }
        Program::new(self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.nop();
        let done = b.label();
        b.branch_if(Pred(0), true, top, done);
        b.bind(done);
        b.exit();
        let p = b.build();
        match p.fetch(1).unwrap().op {
            Op::Bra { target, reconv } => {
                assert_eq!(target, 0);
                assert_eq!(reconv, 2);
            }
            _ => panic!("expected branch"),
        }
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn if_then_emits_inverted_guarded_branch() {
        let mut b = ProgramBuilder::new();
        b.if_then(Pred(1), true, |b| {
            b.nop();
        });
        b.exit();
        let p = b.build();
        let br = p.fetch(0).unwrap();
        assert_eq!(br.guard, Some((Pred(1), false)));
        match br.op {
            Op::Bra { target, reconv } => {
                assert_eq!(target, 2);
                assert_eq!(reconv, 2);
            }
            _ => panic!("expected branch"),
        }
    }

    #[test]
    fn ambient_guard_applies() {
        let mut b = ProgramBuilder::new();
        b.set_guard(Pred(2), false);
        b.nop();
        b.clear_guard();
        b.nop();
        let p = b.build();
        assert_eq!(p.fetch(0).unwrap().guard, Some((Pred(2), false)));
        assert_eq!(p.fetch(1).unwrap().guard, None);
    }

    #[test]
    fn global_thread_id_uses_two_instructions() {
        let mut b = ProgramBuilder::new();
        b.global_thread_id(Reg(5));
        let p = b.build();
        assert_eq!(p.len(), 2);
        assert_eq!(p.max_reg(), 6);
    }

    #[test]
    #[should_panic(expected = "packed width")]
    fn bad_packed_width_panics() {
        let mut b = ProgramBuilder::new();
        b.ld_packed(3, Reg(0), Src::Imm(0));
    }
}
