//! Kernels: a program plus its launch geometry and static resource needs.

use crate::{Program, WARP_SIZE};

/// Grid/block launch dimensions (1-D, which is all the synthetic workloads
/// need; multi-dimensional indices are linearized by the generators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchDims {
    /// Threads per block (CTA).
    pub block_dim: u32,
    /// Blocks in the grid.
    pub grid_dim: u32,
}

impl LaunchDims {
    /// Creates launch dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `block_dim > 1024`.
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        assert!(grid_dim > 0 && block_dim > 0, "dimensions must be nonzero");
        assert!(block_dim <= 1024, "block_dim {block_dim} exceeds 1024");
        LaunchDims {
            block_dim,
            grid_dim,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.block_dim as u64 * self.grid_dim as u64
    }

    /// Warps per block (rounded up).
    pub fn warps_per_block(&self) -> u32 {
        self.block_dim.div_ceil(WARP_SIZE as u32)
    }
}

/// A compiled kernel: body, launch geometry, parameters, and the static
/// per-thread/per-block resource requirements the occupancy calculator
/// (Fig. 2) and the CABA register-allocation rule (§3.2.2) consume.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    program: Program,
    dims: LaunchDims,
    params: Vec<u64>,
    regs_per_thread: u32,
    shared_bytes_per_block: u32,
}

impl Kernel {
    /// Creates a kernel. `regs_per_thread` defaults to the program's register
    /// footprint but may be raised (never lowered) with
    /// [`Kernel::with_regs_per_thread`] to model register-heavier codes.
    pub fn new(name: impl Into<String>, program: Program, dims: LaunchDims) -> Self {
        let regs = program.max_reg() as u32;
        Kernel {
            name: name.into(),
            program,
            dims,
            params: Vec::new(),
            regs_per_thread: regs.max(1),
            shared_bytes_per_block: 0,
        }
    }

    /// Sets launch parameters (readable via `Special::Param(i)`).
    pub fn with_params(mut self, params: Vec<u64>) -> Self {
        self.params = params;
        self
    }

    /// Overrides the per-thread register requirement.
    ///
    /// # Panics
    ///
    /// Panics if `regs` is smaller than the program's actual footprint.
    pub fn with_regs_per_thread(mut self, regs: u32) -> Self {
        assert!(
            regs >= self.program.max_reg() as u32,
            "declared registers {} below program footprint {}",
            regs,
            self.program.max_reg()
        );
        self.regs_per_thread = regs;
        self
    }

    /// Sets the per-block shared memory requirement in bytes.
    pub fn with_shared_bytes(mut self, bytes: u32) -> Self {
        self.shared_bytes_per_block = bytes;
        self
    }

    /// Kernel name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel body.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Launch dimensions.
    pub fn dims(&self) -> LaunchDims {
        self.dims
    }

    /// Launch parameters.
    pub fn params(&self) -> &[u64] {
        &self.params
    }

    /// Parameter `i`, or 0 when absent (missing parameters read as zero, as
    /// uninitialized constant memory would).
    pub fn param(&self, i: u8) -> u64 {
        self.params.get(i as usize).copied().unwrap_or(0)
    }

    /// Registers required per thread.
    pub fn regs_per_thread(&self) -> u32 {
        self.regs_per_thread
    }

    /// Shared memory required per block, in bytes.
    pub fn shared_bytes_per_block(&self) -> u32 {
        self.shared_bytes_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instr, Op, ProgramBuilder, Reg, Src};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.movi(Reg(3), 7);
        b.exit();
        b.build()
    }

    #[test]
    fn dims_math() {
        let d = LaunchDims::new(10, 96);
        assert_eq!(d.total_threads(), 960);
        assert_eq!(d.warps_per_block(), 3);
        let d2 = LaunchDims::new(1, 33);
        assert_eq!(d2.warps_per_block(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        LaunchDims::new(0, 32);
    }

    #[test]
    #[should_panic(expected = "exceeds 1024")]
    fn oversized_block_panics() {
        LaunchDims::new(1, 2048);
    }

    #[test]
    fn kernel_defaults_and_overrides() {
        let k = Kernel::new("t", tiny_program(), LaunchDims::new(1, 32));
        assert_eq!(k.regs_per_thread(), 4);
        assert_eq!(k.param(0), 0);
        let k = k
            .with_params(vec![0x1000])
            .with_regs_per_thread(20)
            .with_shared_bytes(256);
        assert_eq!(k.param(0), 0x1000);
        assert_eq!(k.regs_per_thread(), 20);
        assert_eq!(k.shared_bytes_per_block(), 256);
        assert_eq!(k.name(), "t");
    }

    #[test]
    #[should_panic(expected = "below program footprint")]
    fn cannot_underdeclare_registers() {
        let k = Kernel::new("t", tiny_program(), LaunchDims::new(1, 32));
        let _ = k.with_regs_per_thread(1);
    }

    #[test]
    fn empty_program_kernel_needs_one_reg() {
        let p = Program::new(vec![Instr::new(Op::Exit)]);
        let k = Kernel::new("e", p, LaunchDims::new(1, 32));
        assert_eq!(k.regs_per_thread(), 1);
    }

    #[test]
    fn program_accessor_round_trips() {
        let p = tiny_program();
        let k = Kernel::new("t", p.clone(), LaunchDims::new(2, 64));
        assert_eq!(k.program(), &p);
        assert_eq!(k.dims().grid_dim, 2);
        // Src import used in signature checks elsewhere.
        let _ = Src::Imm(0);
    }
}
