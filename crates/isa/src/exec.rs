//! Functional (value) semantics of the ISA, evaluated per lane.
//!
//! The timing simulator in `caba-sim` decides *when* an instruction executes;
//! the functions here decide *what* it computes. Keeping the two separate
//! lets the compression subroutines be unit-tested functionally without a
//! pipeline model.

use crate::{AluOp, CmpOp, FAluOp, SfuOp};

/// Evaluates an integer ALU operation on 64-bit values.
pub fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Min => (a as i64).min(b as i64) as u64,
        AluOp::Max => (a as i64).max(b as i64) as u64,
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a << (b & 63),
        AluOp::Shr => a >> (b & 63),
        AluOp::Sar => ((a as i64) >> (b & 63)) as u64,
        AluOp::Mov => a,
        AluOp::Rem => a.checked_rem(b).unwrap_or(a),
        AluOp::Div => a.checked_div(b).unwrap_or(0),
    }
}

/// Evaluates a comparison, returning the predicate value.
pub fn eval_cmp(op: CmpOp, a: u64, b: u64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::LtS => (a as i64) < (b as i64),
        CmpOp::LeS => (a as i64) <= (b as i64),
        CmpOp::GtS => (a as i64) > (b as i64),
        CmpOp::GeS => (a as i64) >= (b as i64),
        CmpOp::LtU => a < b,
        CmpOp::GeU => a >= b,
    }
}

/// Evaluates a float operation. Operands are the low 32 bits of the
/// registers, interpreted as `f32`; the result is zero-extended bits.
pub fn eval_falu(op: FAluOp, a: u64, b: u64) -> u64 {
    let fa = f32::from_bits(a as u32);
    let fb = f32::from_bits(b as u32);
    match op {
        FAluOp::FAdd => (fa + fb).to_bits() as u64,
        FAluOp::FSub => (fa - fb).to_bits() as u64,
        FAluOp::FMul => (fa * fb).to_bits() as u64,
        FAluOp::F2I => {
            // Saturating conversion, NaN -> 0, like PTX cvt.rzi.
            let v = if fa.is_nan() {
                0i64
            } else {
                fa.clamp(i32::MIN as f32, i32::MAX as f32) as i64
            };
            v as u64
        }
        FAluOp::I2F => ((a as i64) as f32).to_bits() as u64,
    }
}

/// Evaluates an SFU operation on the low 32 bits as `f32`.
pub fn eval_sfu(op: SfuOp, a: u64) -> u64 {
    let fa = f32::from_bits(a as u32);
    let r = match op {
        SfuOp::Rcp => 1.0 / fa,
        SfuOp::Rsqrt => 1.0 / fa.sqrt(),
        SfuOp::Sin => fa.sin(),
        SfuOp::Ex2 => fa.exp2(),
        SfuOp::Lg2 => fa.log2(),
    };
    r.to_bits() as u64
}

/// Zero-extends the low `width` bytes of `v` (identity for width 8).
pub fn truncate(v: u64, width_bytes: u64) -> u64 {
    debug_assert!(matches!(width_bytes, 1 | 2 | 4 | 8));
    if width_bytes >= 8 {
        v
    } else {
        v & ((1u64 << (width_bytes * 8)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_wrapping_and_logic() {
        assert_eq!(eval_alu(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(eval_alu(AluOp::Sub, 0, 1), u64::MAX);
        assert_eq!(eval_alu(AluOp::Mul, 3, 5), 15);
        assert_eq!(eval_alu(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(eval_alu(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(eval_alu(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(eval_alu(AluOp::Mov, 42, 99), 42);
    }

    #[test]
    fn alu_shifts_mask_amount() {
        assert_eq!(eval_alu(AluOp::Shl, 1, 64), 1); // 64 & 63 == 0
        assert_eq!(eval_alu(AluOp::Shr, 0x8000_0000_0000_0000, 63), 1);
        assert_eq!(eval_alu(AluOp::Sar, (-8i64) as u64, 2), (-2i64) as u64);
    }

    #[test]
    fn alu_min_max_signed() {
        assert_eq!(eval_alu(AluOp::Min, (-1i64) as u64, 1), (-1i64) as u64);
        assert_eq!(eval_alu(AluOp::Max, (-1i64) as u64, 1), 1);
    }

    #[test]
    fn alu_div_rem_by_zero_are_defined() {
        assert_eq!(eval_alu(AluOp::Div, 7, 0), 0);
        assert_eq!(eval_alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(eval_alu(AluOp::Div, 7, 2), 3);
        assert_eq!(eval_alu(AluOp::Rem, 7, 2), 1);
    }

    #[test]
    fn comparisons_signedness() {
        let neg1 = (-1i64) as u64;
        assert!(eval_cmp(CmpOp::LtS, neg1, 0));
        assert!(!eval_cmp(CmpOp::LtU, neg1, 0));
        assert!(eval_cmp(CmpOp::GeU, neg1, 0));
        assert!(eval_cmp(CmpOp::Eq, 5, 5));
        assert!(eval_cmp(CmpOp::Ne, 5, 6));
        assert!(eval_cmp(CmpOp::LeS, 5, 5));
        assert!(eval_cmp(CmpOp::GtS, 6, 5));
        assert!(eval_cmp(CmpOp::GeS, 5, 5));
    }

    #[test]
    fn float_ops() {
        let a = 2.5f32.to_bits() as u64;
        let b = 0.5f32.to_bits() as u64;
        assert_eq!(f32::from_bits(eval_falu(FAluOp::FAdd, a, b) as u32), 3.0);
        assert_eq!(f32::from_bits(eval_falu(FAluOp::FSub, a, b) as u32), 2.0);
        assert_eq!(f32::from_bits(eval_falu(FAluOp::FMul, a, b) as u32), 1.25);
        assert_eq!(eval_falu(FAluOp::F2I, a, 0), 2);
        let nan = f32::NAN.to_bits() as u64;
        assert_eq!(eval_falu(FAluOp::F2I, nan, 0), 0);
        let i2f = eval_falu(FAluOp::I2F, (-3i64) as u64, 0);
        assert_eq!(f32::from_bits(i2f as u32), -3.0);
    }

    #[test]
    fn sfu_ops() {
        let four = 4.0f32.to_bits() as u64;
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Rcp, four) as u32), 0.25);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Rsqrt, four) as u32), 0.5);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Ex2, four) as u32), 16.0);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Lg2, four) as u32), 2.0);
        let s = f32::from_bits(eval_sfu(SfuOp::Sin, 0) as u32);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn truncate_widths() {
        assert_eq!(truncate(0x1122_3344_5566_7788, 1), 0x88);
        assert_eq!(truncate(0x1122_3344_5566_7788, 2), 0x7788);
        assert_eq!(truncate(0x1122_3344_5566_7788, 4), 0x5566_7788);
        assert_eq!(truncate(0x1122_3344_5566_7788, 8), 0x1122_3344_5566_7788);
    }
}
