//! A small disassembler: renders instructions and programs in a PTX-like
//! textual form, used when debugging kernels and assist-warp subroutines.

use crate::{AluOp, CmpOp, FAluOp, Instr, Op, PBoolOp, Program, SfuOp, Space, Special, Src, Width};
use std::fmt;

fn src(s: Src) -> String {
    match s {
        Src::Reg(r) => r.to_string(),
        Src::Imm(v) => {
            if v > 9 {
                format!("{v:#x}")
            } else {
                v.to_string()
            }
        }
        Src::Sp(sp) => match sp {
            Special::Tid => "%tid".into(),
            Special::Ctaid => "%ctaid".into(),
            Special::Ntid => "%ntid".into(),
            Special::Nctaid => "%nctaid".into(),
            Special::Lane => "%lane".into(),
            Special::WarpInBlock => "%warpid".into(),
            Special::Param(i) => format!("%param{i}"),
        },
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Min => "min",
        AluOp::Max => "max",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Sar => "sar",
        AluOp::Mov => "mov",
        AluOp::Rem => "rem",
        AluOp::Div => "div",
    }
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::LtS => "lt.s",
        CmpOp::LeS => "le.s",
        CmpOp::GtS => "gt.s",
        CmpOp::GeS => "ge.s",
        CmpOp::LtU => "lt.u",
        CmpOp::GeU => "ge.u",
    }
}

fn space_name(s: Space) -> &'static str {
    match s {
        Space::Global => "global",
        Space::Shared => "shared",
    }
}

fn width_suffix(w: Width) -> &'static str {
    match w {
        Width::B1 => "b8",
        Width::B2 => "b16",
        Width::B4 => "b32",
        Width::B8 => "b64",
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((p, pol)) = self.guard {
            write!(f, "@{}{} ", if pol { "" } else { "!" }, p)?;
        }
        match self.op {
            Op::Alu { op, dst, a, b } => {
                if op == AluOp::Mov {
                    write!(f, "mov {dst}, {}", src(a))
                } else {
                    write!(f, "{} {dst}, {}, {}", alu_name(op), src(a), src(b))
                }
            }
            Op::FAlu { op, dst, a, b } => match op {
                FAluOp::FAdd => write!(f, "fadd {dst}, {}, {}", src(a), src(b)),
                FAluOp::FSub => write!(f, "fsub {dst}, {}, {}", src(a), src(b)),
                FAluOp::FMul => write!(f, "fmul {dst}, {}, {}", src(a), src(b)),
                FAluOp::F2I => write!(f, "cvt.i.f {dst}, {}", src(a)),
                FAluOp::I2F => write!(f, "cvt.f.i {dst}, {}", src(a)),
            },
            Op::Sfu { op, dst, a } => {
                let n = match op {
                    SfuOp::Rcp => "rcp",
                    SfuOp::Rsqrt => "rsqrt",
                    SfuOp::Sin => "sin",
                    SfuOp::Ex2 => "ex2",
                    SfuOp::Lg2 => "lg2",
                };
                write!(f, "{n}.approx {dst}, {}", src(a))
            }
            Op::SetP { pred, cmp, a, b } => {
                write!(f, "setp.{} {pred}, {}, {}", cmp_name(cmp), src(a), src(b))
            }
            Op::PBool { dst, op, a, b } => match op {
                PBoolOp::And => write!(f, "and.pred {dst}, {a}, {b}"),
                PBoolOp::Or => write!(f, "or.pred {dst}, {a}, {b}"),
                PBoolOp::AndNot => write!(f, "andn.pred {dst}, {a}, {b}"),
                PBoolOp::Not => write!(f, "not.pred {dst}, {a}"),
                PBoolOp::Mov => write!(f, "mov.pred {dst}, {a}"),
            },
            Op::VoteAll { dst, src } => write!(f, "vote.all {dst}, {src}"),
            Op::VoteAny { dst, src } => write!(f, "vote.any {dst}, {src}"),
            Op::Ballot { dst, src } => write!(f, "vote.ballot {dst}, {src}"),
            Op::FindFirst { dst, src } => write!(f, "vote.ffs {dst}, {src}"),
            Op::Selp { dst, a, b, pred } => {
                write!(f, "selp {dst}, {}, {}, {pred}", src(a), src(b))
            }
            Op::Ld {
                space,
                width,
                dst,
                addr,
                offset,
            } => write!(
                f,
                "ld.{}.{} {dst}, [{}{offset:+}]",
                space_name(space),
                width_suffix(width),
                src(addr)
            ),
            Op::St {
                space,
                width,
                src: val,
                addr,
                offset,
            } => write!(
                f,
                "st.{}.{} [{}{offset:+}], {}",
                space_name(space),
                width_suffix(width),
                src(addr),
                src(val)
            ),
            Op::LdPacked { k, dst, base } => {
                write!(f, "ld.packed.k{k} {dst}, [{} + %lane*{k}]", src(base))
            }
            Op::StPacked { k, src: val, base } => {
                write!(
                    f,
                    "st.packed.k{k} [{} + %lane*{k}], {}",
                    src(base),
                    src(val)
                )
            }
            Op::Bra { target, reconv } => write!(f, "bra {target} (reconv {reconv})"),
            Op::Bar => write!(f, "bar.sync"),
            Op::Exit => write!(f, "exit"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

/// Renders a whole program with PC labels.
///
/// # Examples
///
/// ```
/// use caba_isa::{disasm, ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// b.movi(Reg(0), 5);
/// b.exit();
/// let text = disasm::disassemble(&b.build());
/// assert!(text.contains("mov r0, 5"));
/// assert!(text.contains("exit"));
/// ```
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    for (pc, instr) in p.instrs().iter().enumerate() {
        out.push_str(&format!("{pc:>4}:  {instr}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pred, ProgramBuilder, Reg};

    #[test]
    fn renders_core_instructions() {
        let mut b = ProgramBuilder::new();
        b.alu(AluOp::Add, Reg(1), Src::Reg(Reg(2)), Src::Imm(16));
        b.setp(
            Pred(0),
            CmpOp::LtU,
            Src::Reg(Reg(1)),
            Src::Sp(Special::Ntid),
        );
        b.ld(Space::Global, Width::B4, Reg(3), Src::Reg(Reg(1)), 8);
        b.st(
            Space::Shared,
            Width::B8,
            Src::Reg(Reg(3)),
            Src::Reg(Reg(1)),
            -4,
        );
        b.ld_packed(2, Reg(4), Src::Reg(Reg(0)));
        b.vote_all(Pred(1), Pred(0));
        b.ballot(Reg(5), Pred(0));
        b.exit();
        let text = disassemble(&b.build());
        assert!(text.contains("add r1, r2, 0x10"), "{text}");
        assert!(text.contains("setp.lt.u p0, r1, %ntid"), "{text}");
        assert!(text.contains("ld.global.b32 r3, [r1+8]"), "{text}");
        assert!(text.contains("st.shared.b64 [r1-4], r3"), "{text}");
        assert!(text.contains("ld.packed.k2 r4, [r0 + %lane*2]"), "{text}");
        assert!(text.contains("vote.all p1, p0"), "{text}");
        assert!(text.contains("vote.ballot r5, p0"), "{text}");
        assert!(text.contains("exit"), "{text}");
    }

    #[test]
    fn guards_render_with_polarity() {
        let i = Instr::guarded(Op::Nop, Pred(2), false);
        assert_eq!(i.to_string(), "@!p2 nop");
        let i = Instr::guarded(Op::Nop, Pred(1), true);
        assert_eq!(i.to_string(), "@p1 nop");
    }

    #[test]
    fn branch_shows_reconvergence() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump(l);
        b.bind(l);
        b.exit();
        let text = disassemble(&b.build());
        assert!(text.contains("bra 1 (reconv 1)"), "{text}");
    }

    #[test]
    fn assist_subroutines_disassemble_cleanly() {
        // Useful smoke test: every generated instruction has a rendering.
        let mut bld = ProgramBuilder::new();
        bld.global_thread_id(Reg(0));
        bld.exit();
        let text = disassemble(&bld.build());
        assert_eq!(text.lines().count(), 3);
    }
}
