//! The synthetic application suite — one entry per benchmark the paper
//! evaluates (Figure 1's 27 CUDA/Rodinia/Mars/Lonestar applications plus
//! the TRA/nw/KM applications that appear in the Figure 7–13 evaluation
//! set).
//!
//! Each application pairs a [`KernelTemplate`] (its computational
//! signature) with a [`DataProfile`] (its compressibility signature) and the
//! static resources (registers/thread, block size) that drive the Figure 2
//! occupancy analysis. The pairings are chosen so the *shape* of the
//! paper's per-application results holds: which apps are memory-bound,
//! which are compressible, and which algorithm compresses each best
//! (Fig. 11).

use crate::data::DataProfile;
use crate::kernels::{params, KernelTemplate};
use caba_sim::Gpu;
use caba_stats::Rng64;

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// NVIDIA CUDA SDK.
    Cuda,
    /// Rodinia.
    Rodinia,
    /// Mars (MapReduce on GPUs).
    Mars,
    /// Lonestar GPU.
    Lonestar,
}

/// Primary bottleneck classification (Figure 1's grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppClass {
    /// Bottlenecked by off-chip bandwidth / memory system.
    MemoryBound,
    /// Bottlenecked by the compute pipelines.
    ComputeBound,
}

/// One synthetic application.
#[derive(Debug, Clone, Copy)]
pub struct AppSpec {
    /// Application name as it appears in the paper's figures.
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Memory- or compute-bound (Figure 1 grouping).
    pub class: AppClass,
    /// Computational skeleton.
    pub template: KernelTemplate,
    /// Input-data compressibility profile.
    pub data: DataProfile,
    /// Registers per thread (drives Figure 2).
    pub regs_per_thread: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// Elements in the working set (at scale 1.0); the grid is derived so
    /// the launch covers every element exactly once.
    pub elements: u32,
    /// Appears in the Figure 7–13 evaluation set (bandwidth-sensitive with
    /// ≥10% compressible traffic, §5).
    pub in_eval_set: bool,
}

/// Input array base address.
pub const IN_BASE: u64 = 0x0010_0000;
/// Output array base address.
pub const OUT_BASE: u64 = 0x0800_0000;
/// Index (auxiliary) array base address.
pub const AUX_BASE: u64 = 0x0400_0000;

impl AppSpec {
    /// Builds the kernel, scaled by `scale` (working set and grid).
    pub fn kernel(&self, scale: f64) -> caba_sim::Kernel {
        let elements = self.scaled_elements(scale);
        self.template
            .build(self.name, elements, self.block_dim)
            .with_params(vec![IN_BASE, OUT_BASE, AUX_BASE, elements as u64])
            .with_regs_per_thread(self.regs_per_thread.max(8))
    }

    /// Working-set elements at `scale`.
    pub fn scaled_elements(&self, scale: f64) -> u32 {
        ((self.elements as f64 * scale).round() as u32).max(self.block_dim * 2)
    }

    /// Loads this application's input image (and index array, if used) into
    /// `gpu` memory. Deterministic per application name.
    pub fn load_inputs(&self, gpu: &mut Gpu, scale: f64) {
        let elements = self.scaled_elements(scale);
        let seed = self.name.bytes().fold(0xFEED_F00Du64, |h, b| {
            h.wrapping_mul(31).wrapping_add(b as u64)
        });
        let words = elements as usize * self.template.element_bytes() as usize / 4;
        let bytes = self.data.generate_bytes(words, seed);
        gpu.load_image(IN_BASE, &bytes);
        // Index array for gather-style kernels: a permutation-ish random
        // index stream with some locality.
        if matches!(self.template, KernelTemplate::Gather { .. }) {
            let mut rng = Rng64::new(seed ^ 0x1D);
            let mut idx = Vec::with_capacity(elements as usize * 4);
            for i in 0..elements {
                let j = if rng.chance(0.5) {
                    // local neighbourhood
                    (i + rng.range_u64(64) as u32) % elements
                } else {
                    rng.range_u64(elements as u64) as u32
                };
                idx.extend_from_slice(&j.to_le_bytes());
            }
            gpu.load_image(AUX_BASE, &idx);
        }
        // Pointer-chase links: random cycle.
        if matches!(self.template, KernelTemplate::PointerChase { .. }) {
            let mut rng = Rng64::new(seed ^ 0xC4A1);
            let mut links = Vec::with_capacity(elements as usize * 4);
            for _ in 0..elements {
                links.extend_from_slice(&(rng.range_u64(elements as u64) as u32).to_le_bytes());
            }
            gpu.load_image(IN_BASE, &links);
        }
        let _ = params::N;
    }

    /// Verifies the kernel's output against a CPU reference computation.
    /// Supported for the templates whose outputs are deterministic functions
    /// of the input image (streaming, gather, stencil, pointer chase);
    /// returns `None` for templates without a simple reference (tile/compute
    /// kernels whose outputs the integration tests check differently).
    ///
    /// # Panics
    ///
    /// Panics (with the first mismatching element) when the GPU output
    /// disagrees with the reference.
    pub fn verify_output(&self, gpu: &Gpu, scale: f64) -> Option<u32> {
        use crate::kernels::KernelTemplate as T;
        let elements = self.scaled_elements(scale);
        let mem = gpu.mem();
        let checked = match self.template {
            T::Streaming {
                loads,
                alu_per_load,
            } => {
                let threads = self.template.threads(elements);
                for gid in 0..threads.min(2048) {
                    let mut acc: u64 = 0;
                    let mut addr = IN_BASE + gid as u64 * 8;
                    for r in 0..loads.max(1) {
                        let v = mem.read_u64(addr);
                        acc ^= v;
                        acc = acc.wrapping_add(0x9E37 * alu_per_load as u64);
                        if r + 1 < loads {
                            addr += threads as u64 * 8;
                        }
                    }
                    acc &= 0x7F;
                    let got = mem.read_u32(OUT_BASE + gid as u64 * 4);
                    assert_eq!(got as u64, acc, "{}: thread {gid}", self.name);
                }
                threads.min(2048)
            }
            T::Gather { alu_per_load } => {
                let threads = elements;
                for gid in 0..threads.min(2048) {
                    let i = gid % elements;
                    let idx = mem.read_u32(AUX_BASE + i as u64 * 4) % elements;
                    let v = mem
                        .read_u32(IN_BASE + idx as u64 * 4)
                        .wrapping_add(alu_per_load);
                    let got = mem.read_u32(OUT_BASE + i as u64 * 4);
                    assert_eq!(got, v, "{}: thread {gid}", self.name);
                }
                threads.min(2048)
            }
            T::Stencil => {
                for gid in 0..elements.min(2048) {
                    let e = 1 + gid % (elements.saturating_sub(2).max(1));
                    let l = mem.read_u64(IN_BASE + (e as u64 - 1) * 8);
                    let c = mem.read_u64(IN_BASE + e as u64 * 8);
                    let r = mem.read_u64(IN_BASE + (e as u64 + 1) * 8);
                    let want = l.wrapping_add(c).wrapping_add(r) / 3;
                    let got = mem.read_u64(OUT_BASE + e as u64 * 8);
                    assert_eq!(got, want, "{}: element {e}", self.name);
                }
                elements.min(2048)
            }
            T::PointerChase { hops } => {
                let threads = self.template.threads(elements);
                for gid in 0..threads.min(1024) {
                    let mut idx = gid % elements;
                    for _ in 0..hops.max(1) {
                        idx = mem.read_u32(IN_BASE + idx as u64 * 4) % elements;
                    }
                    let got = mem.read_u32(OUT_BASE + (gid % elements) as u64 * 4);
                    assert_eq!(got, idx, "{}: thread {gid}", self.name);
                }
                threads.min(1024)
            }
            _ => return None,
        };
        Some(checked)
    }

    /// Cache lines of this app's input image (the Fig. 11 compression-ratio
    /// harness input).
    pub fn input_lines(&self, scale: f64) -> Vec<Vec<u8>> {
        let elements = self.scaled_elements(scale);
        let seed = self.name.bytes().fold(0xFEED_F00Du64, |h, b| {
            h.wrapping_mul(31).wrapping_add(b as u64)
        });
        let words = elements as usize * self.template.element_bytes() as usize / 4;
        self.data.generate_lines(words, seed)
    }
}

/// All 27 Figure 1 applications plus the evaluation-set extras.
pub fn all_apps() -> Vec<AppSpec> {
    use AppClass::*;
    use Suite::*;
    let mut v = Vec::new();
    let mut push = |spec: AppSpec| v.push(spec);

    // ---- Memory-bound (Figure 1 left group) -------------------------------
    push(AppSpec {
        name: "BFS",
        suite: Cuda,
        class: MemoryBound,
        template: KernelTemplate::Gather { alu_per_load: 1 },
        data: DataProfile::SparseSmall {
            zero_prob: 0.55,
            max_value: 4096,
        },
        regs_per_thread: 12,
        block_dim: 256,
        elements: 96 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "CONS",
        suite: Cuda,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 3,
            alu_per_load: 2,
        },
        data: DataProfile::FloatLike,
        regs_per_thread: 16,
        block_dim: 128,
        elements: 192 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "JPEG",
        suite: Cuda,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 2,
            alu_per_load: 4,
        },
        data: DataProfile::SparseSmall {
            zero_prob: 0.65,
            max_value: 128,
        },
        regs_per_thread: 20,
        block_dim: 256,
        elements: 160 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "LPS",
        suite: Cuda,
        class: MemoryBound,
        template: KernelTemplate::Stencil,
        data: DataProfile::SparseSmall {
            zero_prob: 0.5,
            max_value: 64,
        },
        regs_per_thread: 18,
        block_dim: 128,
        elements: 128 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "MUM",
        suite: Cuda,
        class: MemoryBound,
        template: KernelTemplate::PointerChase { hops: 3 },
        data: DataProfile::SparseSmall {
            zero_prob: 0.3,
            max_value: 1 << 16,
        },
        regs_per_thread: 14,
        block_dim: 192,
        elements: 96 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "RAY",
        suite: Cuda,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 3,
            alu_per_load: 2,
        },
        data: DataProfile::FloatLike,
        regs_per_thread: 24,
        block_dim: 128,
        elements: 160 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "SCP",
        suite: Cuda,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 3,
            alu_per_load: 1,
        },
        data: DataProfile::Random,
        regs_per_thread: 10,
        block_dim: 256,
        elements: 192 * 1024,
        in_eval_set: false, // incompressible (§5: no gain, no loss)
    });
    push(AppSpec {
        name: "MM",
        suite: Mars,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 4,
            alu_per_load: 1,
        },
        data: DataProfile::LowDynamicRange {
            base: 0x3F00_0000,
            range: 80,
        },
        regs_per_thread: 22,
        block_dim: 128,
        elements: 160 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "PVC",
        suite: Mars,
        class: MemoryBound,
        template: KernelTemplate::Gather { alu_per_load: 2 },
        data: DataProfile::LowDynamicRange {
            base: 0x8001_D000,
            range: 100,
        },
        regs_per_thread: 16,
        block_dim: 256,
        elements: 96 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "PVR",
        suite: Mars,
        class: MemoryBound,
        template: KernelTemplate::Gather { alu_per_load: 1 },
        data: DataProfile::LowDynamicRange {
            base: 0x1000_0000,
            range: 96,
        },
        regs_per_thread: 16,
        block_dim: 256,
        elements: 96 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "SS",
        suite: Mars,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 2,
            alu_per_load: 2,
        },
        data: DataProfile::PointerPool { pool: 8 },
        regs_per_thread: 14,
        block_dim: 256,
        elements: 176 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "sc",
        suite: Rodinia,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 2,
            alu_per_load: 3,
        },
        data: DataProfile::Random,
        regs_per_thread: 18,
        block_dim: 256,
        elements: 160 * 1024,
        in_eval_set: false, // incompressible
    });
    push(AppSpec {
        name: "bfs",
        suite: Lonestar,
        class: MemoryBound,
        template: KernelTemplate::Gather { alu_per_load: 1 },
        data: DataProfile::SparseSmall {
            zero_prob: 0.6,
            max_value: 1 << 14,
        },
        regs_per_thread: 12,
        block_dim: 256,
        elements: 96 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "bh",
        suite: Lonestar,
        class: MemoryBound,
        template: KernelTemplate::PointerChase { hops: 3 },
        data: DataProfile::PointerPool { pool: 12 },
        regs_per_thread: 22,
        block_dim: 192,
        elements: 96 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "mst",
        suite: Lonestar,
        class: MemoryBound,
        template: KernelTemplate::Gather { alu_per_load: 2 },
        data: DataProfile::SparseSmall {
            zero_prob: 0.55,
            max_value: 2048,
        },
        regs_per_thread: 16,
        block_dim: 256,
        elements: 80 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "sp",
        suite: Lonestar,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 2,
            alu_per_load: 1,
        },
        data: DataProfile::SparseSmall {
            zero_prob: 0.45,
            max_value: 512,
        },
        regs_per_thread: 12,
        block_dim: 256,
        elements: 192 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "sssp",
        suite: Lonestar,
        class: MemoryBound,
        template: KernelTemplate::Gather { alu_per_load: 2 },
        data: DataProfile::LowDynamicRange {
            base: 0x10_0000,
            range: 90,
        },
        regs_per_thread: 14,
        block_dim: 256,
        elements: 96 * 1024,
        in_eval_set: true,
    });

    // ---- Evaluation-set extras (Figures 7–13) -----------------------------
    push(AppSpec {
        name: "SLA",
        suite: Cuda,
        class: ComputeBound,
        template: KernelTemplate::Streaming {
            loads: 2,
            alu_per_load: 4,
        },
        data: DataProfile::LowDynamicRange {
            base: 0x4000_0000,
            range: 100,
        },
        regs_per_thread: 18,
        block_dim: 128,
        elements: 128 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "TRA",
        suite: Cuda,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 2,
            alu_per_load: 1,
        },
        data: DataProfile::Mixed,
        regs_per_thread: 12,
        block_dim: 128,
        elements: 176 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "hs",
        suite: Rodinia,
        class: ComputeBound,
        template: KernelTemplate::Stencil,
        data: DataProfile::FloatLike,
        regs_per_thread: 20,
        block_dim: 256,
        elements: 128 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "nw",
        suite: Rodinia,
        class: MemoryBound,
        template: KernelTemplate::Stencil,
        data: DataProfile::SparseSmall {
            zero_prob: 0.7,
            max_value: 32,
        },
        regs_per_thread: 16,
        block_dim: 128,
        elements: 128 * 1024,
        in_eval_set: true,
    });
    push(AppSpec {
        name: "KM",
        suite: Mars,
        class: MemoryBound,
        template: KernelTemplate::Streaming {
            loads: 3,
            alu_per_load: 3,
        },
        data: DataProfile::Mixed,
        regs_per_thread: 18,
        block_dim: 256,
        elements: 176 * 1024,
        in_eval_set: true,
    });

    // ---- Compute-bound (Figure 1 right group) -----------------------------
    push(AppSpec {
        name: "bp",
        suite: Rodinia,
        class: ComputeBound,
        template: KernelTemplate::GemmTile { k: 24 },
        data: DataProfile::FloatLike,
        regs_per_thread: 20,
        block_dim: 256,
        elements: 16 * 1024,
        in_eval_set: false,
    });
    push(AppSpec {
        name: "dmr",
        suite: Lonestar,
        class: ComputeBound,
        template: KernelTemplate::SfuHeavy { iters: 12 },
        data: DataProfile::FloatLike,
        regs_per_thread: 28,
        block_dim: 128,
        elements: 12 * 1024,
        in_eval_set: false,
    });
    push(AppSpec {
        name: "NQU",
        suite: Cuda,
        class: ComputeBound,
        template: KernelTemplate::ComputeHeavy {
            alu_iters: 32,
            sfu_every: 0,
        },
        data: DataProfile::SparseSmall {
            zero_prob: 0.4,
            max_value: 64,
        },
        regs_per_thread: 16,
        block_dim: 96,
        elements: 12 * 1024,
        in_eval_set: false,
    });
    push(AppSpec {
        name: "pt",
        suite: Lonestar,
        class: ComputeBound,
        template: KernelTemplate::ComputeHeavy {
            alu_iters: 20,
            sfu_every: 4,
        },
        data: DataProfile::FloatLike,
        regs_per_thread: 24,
        block_dim: 192,
        elements: 16 * 1024,
        in_eval_set: false,
    });
    push(AppSpec {
        name: "lc",
        suite: Rodinia,
        class: ComputeBound,
        template: KernelTemplate::ComputeHeavy {
            alu_iters: 28,
            sfu_every: 0,
        },
        data: DataProfile::LowDynamicRange {
            base: 0x100,
            range: 64,
        },
        regs_per_thread: 18,
        block_dim: 128,
        elements: 12 * 1024,
        in_eval_set: false,
    });
    push(AppSpec {
        name: "STO",
        suite: Cuda,
        class: ComputeBound,
        template: KernelTemplate::ComputeHeavy {
            alu_iters: 36,
            sfu_every: 0,
        },
        data: DataProfile::PointerPool { pool: 16 },
        regs_per_thread: 22,
        block_dim: 128,
        elements: 12 * 1024,
        in_eval_set: false,
    });
    push(AppSpec {
        name: "NN",
        suite: Cuda,
        class: ComputeBound,
        template: KernelTemplate::ComputeHeavy {
            alu_iters: 24,
            sfu_every: 6,
        },
        data: DataProfile::FloatLike,
        regs_per_thread: 26,
        block_dim: 192,
        elements: 16 * 1024,
        in_eval_set: false,
    });
    push(AppSpec {
        name: "mc",
        suite: Rodinia,
        class: ComputeBound,
        template: KernelTemplate::SfuHeavy { iters: 10 },
        data: DataProfile::Random,
        regs_per_thread: 20,
        block_dim: 128,
        elements: 12 * 1024,
        in_eval_set: false,
    });

    v
}

/// The applications evaluated in Figures 7–13 (bandwidth-sensitive with
/// compressible traffic).
pub fn eval_apps() -> Vec<AppSpec> {
    all_apps().into_iter().filter(|a| a.in_eval_set).collect()
}

/// Looks an application up by name.
pub fn app(name: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_expected_composition() {
        let apps = all_apps();
        assert!(apps.len() >= 27, "{} apps", apps.len());
        let mem = apps
            .iter()
            .filter(|a| a.class == AppClass::MemoryBound)
            .count();
        let comp = apps
            .iter()
            .filter(|a| a.class == AppClass::ComputeBound)
            .count();
        // Figure 1: "a majority of the applications in our workload pool
        // (17 out of 27 studied) are Memory Bound".
        assert!(mem > comp, "memory {mem} vs compute {comp}");
        // Names unique.
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), apps.len());
    }

    #[test]
    fn eval_set_is_nontrivial() {
        let evals = eval_apps();
        assert!(evals.len() >= 15, "{}", evals.len());
        // SCP and sc (incompressible) excluded per §5.
        assert!(evals.iter().all(|a| a.name != "SCP" && a.name != "sc"));
    }

    #[test]
    fn lookup_by_name() {
        assert!(app("MM").is_some());
        assert!(app("nope").is_none());
        assert_eq!(app("PVC").unwrap().suite, Suite::Mars);
    }

    #[test]
    fn kernels_build_at_all_scales() {
        for a in all_apps() {
            for scale in [0.1, 1.0] {
                let k = a.kernel(scale);
                assert!(k.program().len() > 3, "{} @ {scale}", a.name);
                assert!(k.regs_per_thread() >= 8);
            }
        }
    }
}
