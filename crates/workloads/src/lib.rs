//! The synthetic GPGPU workload suite standing in for the paper's 27
//! CUDA-SDK / Rodinia / Mars / Lonestar benchmarks.
//!
//! The paper's evaluation depends on three properties of each application:
//! how memory-bound it is (Figure 1), how compressible its data is under
//! each algorithm (Figure 11), and its static resource footprint (Figure 2).
//! Since the original CUDA binaries cannot be executed by a from-scratch
//! simulator, each application is re-expressed as a [`KernelTemplate`]
//! (computational skeleton) over a [`DataProfile`] (compressibility
//! profile), with per-app register/block parameters. See `DESIGN.md` for
//! the substitution rationale.
//!
//! # Examples
//!
//! Run one application end to end:
//!
//! ```no_run
//! use caba_workloads::{app, run_app};
//! use caba_sim::{Design, GpuConfig};
//!
//! let mm = app("MM").expect("known app");
//! let stats = run_app(&mm, GpuConfig::isca2015_scaled(), Design::Base, 0.25)
//!     .expect("completes");
//! println!("MM IPC = {:.2}", stats.ipc());
//! ```

pub mod apps;
pub mod data;
pub mod kernels;

pub use apps::{all_apps, app, eval_apps, AppClass, AppSpec, Suite};
pub use data::DataProfile;
pub use kernels::KernelTemplate;

use caba_sim::{Design, Gpu, GpuConfig, Kernel, RunError, RunStats};

/// Default cycle budget for a full application run.
pub const DEFAULT_MAX_CYCLES: u64 = 200_000_000;

/// Builds the machine and kernel for an application without running it:
/// a fresh GPU with the app's (deterministic) input image loaded, paired
/// with the scaled kernel. Checkpoint-based harnesses use this to warm a
/// machine up, snapshot it, and fork the suffix; [`run_app`] is this plus
/// a full run.
pub fn prepare_app(app: &AppSpec, cfg: GpuConfig, design: Design, scale: f64) -> (Gpu, Kernel) {
    let mut gpu = Gpu::new(cfg, design);
    app.load_inputs(&mut gpu, scale);
    (gpu, app.kernel(scale))
}

/// Builds a GPU, loads the application's inputs, runs it, and returns the
/// statistics.
///
/// `scale` scales the grid and working set (1.0 = the suite's standard
/// size; the figure harnesses use smaller scales for quick runs).
///
/// # Errors
///
/// Propagates [`RunError::Timeout`] from the simulator.
pub fn run_app(
    app: &AppSpec,
    cfg: GpuConfig,
    design: Design,
    scale: f64,
) -> Result<RunStats, RunError> {
    let (mut gpu, kernel) = prepare_app(app, cfg, design, scale);
    gpu.run(&kernel, DEFAULT_MAX_CYCLES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_apps_run_on_small_config() {
        // One app per template family, at a small scale.
        for name in ["CONS", "BFS", "MUM", "LPS", "MM", "bp", "dmr"] {
            let a = app(name).expect(name);
            let stats = run_app(&a, GpuConfig::small(), Design::Base, 0.05)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(stats.cycles > 0, "{name}");
            assert!(stats.app_instructions > 0, "{name}");
            assert!(stats.threads_retired > 0, "{name}");
        }
    }

    #[test]
    fn memory_bound_apps_stress_dram_more_than_compute_bound() {
        let mem = app("CONS").unwrap();
        let comp = app("bp").unwrap();
        let sm = run_app(&mem, GpuConfig::small(), Design::Base, 0.1).unwrap();
        let sc = run_app(&comp, GpuConfig::small(), Design::Base, 0.1).unwrap();
        assert!(
            sm.bandwidth_utilization() > sc.bandwidth_utilization(),
            "mem {:.2} vs comp {:.2}",
            sm.bandwidth_utilization(),
            sc.bandwidth_utilization()
        );
    }

    #[test]
    fn compute_bound_app_insensitive_to_bandwidth() {
        let a = app("bp").unwrap();
        let full = run_app(&a, GpuConfig::small(), Design::Base, 0.1).unwrap();
        let half = run_app(
            &a,
            GpuConfig::small().with_bandwidth_scale(0.5),
            Design::Base,
            0.1,
        )
        .unwrap();
        let slowdown = half.cycles as f64 / full.cycles as f64;
        assert!(slowdown < 1.3, "slowdown {slowdown}");
    }

    #[test]
    fn memory_bound_app_sensitive_to_bandwidth() {
        let a = app("CONS").unwrap();
        let full = run_app(&a, GpuConfig::small(), Design::Base, 0.1).unwrap();
        let half = run_app(
            &a,
            GpuConfig::small().with_bandwidth_scale(0.5),
            Design::Base,
            0.1,
        )
        .unwrap();
        let slowdown = half.cycles as f64 / full.cycles as f64;
        assert!(slowdown > 1.3, "slowdown {slowdown}");
    }

    #[test]
    fn outputs_match_cpu_reference_on_base_and_caba() {
        for name in ["CONS", "BFS", "LPS", "MUM"] {
            let a = app(name).expect(name);
            let scale = 0.05;
            // Base design.
            let mut gpu = Gpu::new(GpuConfig::small(), Design::Base);
            a.load_inputs(&mut gpu, scale);
            gpu.run(&a.kernel(scale), DEFAULT_MAX_CYCLES).unwrap();
            let checked = a.verify_output(&gpu, scale).expect("verifiable template");
            assert!(checked > 0, "{name}");
            // CABA-BDI must produce identical outputs (assist warps are
            // functionally transparent).
            let ctrl = caba_core_stub();
            let mut gpu = Gpu::new(GpuConfig::small(), ctrl);
            a.load_inputs(&mut gpu, scale);
            gpu.run(&a.kernel(scale), DEFAULT_MAX_CYCLES).unwrap();
            a.verify_output(&gpu, scale).expect("verifiable template");
        }
    }

    fn caba_core_stub() -> Design {
        Design::Caba(Box::new(caba_core::CabaController::bdi()))
    }

    #[test]
    fn deterministic_across_runs() {
        let a = app("JPEG").unwrap();
        let s1 = run_app(&a, GpuConfig::small(), Design::Base, 0.05).unwrap();
        let s2 = run_app(&a, GpuConfig::small(), Design::Base, 0.05).unwrap();
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.app_instructions, s2.app_instructions);
        assert_eq!(s1.dram_bursts, s2.dram_bursts);
    }
}
