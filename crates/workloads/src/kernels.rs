//! Kernel templates — the computational skeletons the 27 synthetic
//! applications instantiate.
//!
//! Each template is a small PTX-like program with a distinct architectural
//! signature: coalesced streaming, index-driven gathers (graph workloads),
//! pointer chasing, stencils, shared-memory tiles with barriers,
//! dependence-chained compute, and SFU-heavy transcendental loops. Together
//! they span the memory-bound ↔ compute-bound spectrum of Figure 1.
//!
//! The memory-bound templates are written the way real CUDA kernels compile:
//! wide (8-byte) accesses with a running address register, so the
//! instruction-per-byte ratio stays low and the bottleneck genuinely is the
//! memory system, not address arithmetic.

use caba_isa::{
    AluOp, CmpOp, Kernel, LaunchDims, Pred, ProgramBuilder, Reg, SfuOp, Space, Special, Src, Width,
};

/// Parameter-slot conventions shared by every template.
pub mod params {
    /// Input array base address.
    pub const IN: u8 = 0;
    /// Output array base address.
    pub const OUT: u8 = 1;
    /// Auxiliary (index) array base address.
    pub const AUX: u8 = 2;
    /// Element count.
    pub const N: u8 = 3;
}

/// The computational skeleton of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTemplate {
    /// Grid-stride streaming over 8-byte elements: each thread loads
    /// `loads` elements one grid-stride apart, reduces them with
    /// `alu_per_load` ops each, and stores one 4-byte result. The classic
    /// bandwidth-bound pattern (SCP, CONS, KM, …).
    Streaming {
        /// Elements loaded per thread.
        loads: u32,
        /// ALU ops per loaded element.
        alu_per_load: u32,
    },
    /// Index-driven gather `out[i] = f(in[idx[i]])` — irregular, partially
    /// coalesced (graph/MapReduce workloads: BFS, PVC, SS, …).
    Gather {
        /// ALU ops per element.
        alu_per_load: u32,
    },
    /// Pointer chase: each thread follows `hops` links (MUM, bh).
    PointerChase {
        /// Links followed per thread.
        hops: u32,
    },
    /// Three-point stencil over 8-byte elements (hs, LPS, nw).
    Stencil,
    /// Shared-memory tile: load tile, barrier, `k` multiply-accumulate
    /// rounds, store (tiled-GEMM-like).
    GemmTile {
        /// Accumulation rounds over the tile.
        k: u32,
    },
    /// Dependence-chained integer compute with one load/store pair
    /// (compute-bound apps: NQU, STO, lc, …).
    ComputeHeavy {
        /// Chained ALU iterations.
        alu_iters: u32,
        /// Insert an SFU op every iteration when nonzero.
        sfu_every: u32,
    },
    /// SFU-dominated kernel (dmr-style transcendental chains).
    SfuHeavy {
        /// SFU iterations per thread.
        iters: u32,
    },
}

impl KernelTemplate {
    /// Bytes per data element this template accesses.
    pub fn element_bytes(&self) -> u32 {
        match self {
            KernelTemplate::Streaming { .. } | KernelTemplate::Stencil => 8,
            _ => 4,
        }
    }

    /// Threads needed to cover `elements` data elements exactly once
    /// (pointer chases traverse a quarter of the nodes; each hop touches a
    /// random node, so the traffic still spans the whole working set).
    pub fn threads(&self, elements: u32) -> u32 {
        match *self {
            KernelTemplate::Streaming { loads, .. } => (elements / loads.max(1)).max(32),
            KernelTemplate::PointerChase { .. } => (elements / 4).max(32),
            _ => elements.max(32),
        }
    }

    /// Builds the kernel for `elements` data elements.
    pub fn build(&self, name: &str, elements: u32, block_dim: u32) -> Kernel {
        let threads = self.threads(elements);
        let grid = threads.div_ceil(block_dim).max(1);
        let program = match *self {
            KernelTemplate::Streaming {
                loads,
                alu_per_load,
            } => streaming(threads, loads, alu_per_load),
            KernelTemplate::Gather { alu_per_load } => gather(elements, alu_per_load),
            KernelTemplate::PointerChase { hops } => pointer_chase(elements, hops),
            KernelTemplate::Stencil => stencil(elements),
            KernelTemplate::GemmTile { k } => gemm_tile(k),
            KernelTemplate::ComputeHeavy {
                alu_iters,
                sfu_every,
            } => compute_heavy(elements, alu_iters, sfu_every),
            KernelTemplate::SfuHeavy { iters } => sfu_heavy(elements, iters),
        };
        let shared = match *self {
            KernelTemplate::GemmTile { .. } => 4 * block_dim.max(64),
            _ => 0,
        };
        Kernel::new(name, program, LaunchDims::new(grid, block_dim)).with_shared_bytes(shared)
    }
}

const GID: Reg = Reg(0);
const ADDR: Reg = Reg(1);
const V: Reg = Reg(2);
const T0: Reg = Reg(3);
const T1: Reg = Reg(4);
const IDX: Reg = Reg(5);
const ACC: Reg = Reg(6);
const I: Reg = Reg(7);

/// Emits `dst = param_base + index*scale`.
fn scaled_addr(b: &mut ProgramBuilder, dst: Reg, index: Reg, param: u8, scale: u64) {
    b.alu(AluOp::Mul, dst, Src::Reg(index), Src::Imm(scale));
    b.alu(
        AluOp::Add,
        dst,
        Src::Reg(dst),
        Src::Sp(Special::Param(param)),
    );
}

/// Emits `dst = index % elements`.
fn clamp(b: &mut ProgramBuilder, dst: Reg, index: Reg, elements: u32) {
    b.alu(AluOp::Rem, dst, Src::Reg(index), Src::Imm(elements as u64));
}

fn streaming(threads: u32, loads: u32, alu_per_load: u32) -> caba_isa::Program {
    let mut b = ProgramBuilder::new();
    b.global_thread_id(GID);
    b.movi(ACC, 0);
    // Running address: IN + gid*8, advanced one grid stride per round.
    scaled_addr(&mut b, ADDR, GID, params::IN, 8);
    let stride = threads as u64 * 8;
    for r in 0..loads.max(1) {
        b.ld(Space::Global, Width::B8, V, Src::Reg(ADDR), 0);
        b.alu(AluOp::Xor, ACC, Src::Reg(ACC), Src::Reg(V));
        for _ in 0..alu_per_load {
            b.alu(AluOp::Add, ACC, Src::Reg(ACC), Src::Imm(0x9E37));
        }
        if r + 1 < loads {
            b.alu(AluOp::Add, ADDR, Src::Reg(ADDR), Src::Imm(stride));
        }
    }
    // Outputs are small reduced values (counts/flags in the real apps), so
    // the store traffic is as compressible as the input traffic.
    b.alu(AluOp::And, ACC, Src::Reg(ACC), Src::Imm(0x7F));
    scaled_addr(&mut b, ADDR, GID, params::OUT, 4);
    b.st(Space::Global, Width::B4, Src::Reg(ACC), Src::Reg(ADDR), 0);
    b.exit();
    b.build()
}

fn gather(elements: u32, alu_per_load: u32) -> caba_isa::Program {
    let mut b = ProgramBuilder::new();
    b.global_thread_id(GID);
    clamp(&mut b, IDX, GID, elements);
    // idx = aux[gid]
    scaled_addr(&mut b, ADDR, IDX, params::AUX, 4);
    b.ld(Space::Global, Width::B4, IDX, Src::Reg(ADDR), 0);
    clamp(&mut b, IDX, IDX, elements);
    // v = in[idx]
    scaled_addr(&mut b, ADDR, IDX, params::IN, 4);
    b.ld(Space::Global, Width::B4, V, Src::Reg(ADDR), 0);
    for _ in 0..alu_per_load {
        b.alu(AluOp::Add, V, Src::Reg(V), Src::Imm(1));
    }
    // out[gid] = v
    clamp(&mut b, T0, GID, elements);
    scaled_addr(&mut b, ADDR, T0, params::OUT, 4);
    b.st(Space::Global, Width::B4, Src::Reg(V), Src::Reg(ADDR), 0);
    b.exit();
    b.build()
}

fn pointer_chase(elements: u32, hops: u32) -> caba_isa::Program {
    let mut b = ProgramBuilder::new();
    b.global_thread_id(GID);
    clamp(&mut b, IDX, GID, elements);
    b.movi(I, 0);
    b.do_while(|b| {
        // idx = in[idx] (the array stores the next index)
        scaled_addr(b, ADDR, IDX, params::IN, 4);
        b.ld(Space::Global, Width::B4, IDX, Src::Reg(ADDR), 0);
        clamp(b, IDX, IDX, elements);
        b.alu(AluOp::Add, I, Src::Reg(I), Src::Imm(1));
        b.setp(
            Pred(0),
            CmpOp::LtU,
            Src::Reg(I),
            Src::Imm(hops.max(1) as u64),
        );
        Pred(0)
    });
    clamp(&mut b, T0, GID, elements);
    scaled_addr(&mut b, ADDR, T0, params::OUT, 4);
    b.st(Space::Global, Width::B4, Src::Reg(IDX), Src::Reg(ADDR), 0);
    b.exit();
    b.build()
}

fn stencil(elements: u32) -> caba_isa::Program {
    let mut b = ProgramBuilder::new();
    b.global_thread_id(GID);
    // e = 1 + gid % (n-2): interior points only, so ±1 never faults.
    b.alu(
        AluOp::Rem,
        IDX,
        Src::Reg(GID),
        Src::Imm(elements.saturating_sub(2).max(1) as u64),
    );
    b.alu(AluOp::Add, IDX, Src::Reg(IDX), Src::Imm(1));
    scaled_addr(&mut b, ADDR, IDX, params::IN, 8);
    b.ld(Space::Global, Width::B8, T0, Src::Reg(ADDR), -8);
    b.ld(Space::Global, Width::B8, V, Src::Reg(ADDR), 0);
    b.ld(Space::Global, Width::B8, T1, Src::Reg(ADDR), 8);
    b.alu(AluOp::Add, V, Src::Reg(V), Src::Reg(T0));
    b.alu(AluOp::Add, V, Src::Reg(V), Src::Reg(T1));
    b.alu(AluOp::Div, V, Src::Reg(V), Src::Imm(3));
    scaled_addr(&mut b, ADDR, IDX, params::OUT, 8);
    b.st(Space::Global, Width::B8, Src::Reg(V), Src::Reg(ADDR), 0);
    b.exit();
    b.build()
}

fn gemm_tile(k: u32) -> caba_isa::Program {
    let mut b = ProgramBuilder::new();
    let tid = T0;
    b.global_thread_id(GID);
    b.mov(tid, Src::Sp(Special::Tid));
    // shared[tid] = in[gid]
    scaled_addr(&mut b, ADDR, GID, params::IN, 4);
    b.ld(Space::Global, Width::B4, V, Src::Reg(ADDR), 0);
    b.alu(AluOp::Shl, ADDR, Src::Reg(tid), Src::Imm(2));
    b.st(Space::Shared, Width::B4, Src::Reg(V), Src::Reg(ADDR), 0);
    b.bar();
    // acc = sum over k rounds of shared[(tid + j) % ntid] * j
    b.movi(ACC, 0);
    b.movi(I, 0);
    b.do_while(|b| {
        b.alu(AluOp::Add, T1, Src::Reg(tid), Src::Reg(I));
        b.alu(AluOp::Rem, T1, Src::Reg(T1), Src::Sp(Special::Ntid));
        b.alu(AluOp::Shl, ADDR, Src::Reg(T1), Src::Imm(2));
        b.ld(Space::Shared, Width::B4, V, Src::Reg(ADDR), 0);
        b.alu(AluOp::Mul, V, Src::Reg(V), Src::Reg(I));
        b.alu(AluOp::Add, ACC, Src::Reg(ACC), Src::Reg(V));
        b.alu(AluOp::Add, I, Src::Reg(I), Src::Imm(1));
        b.setp(Pred(0), CmpOp::LtU, Src::Reg(I), Src::Imm(k.max(1) as u64));
        Pred(0)
    });
    b.bar();
    scaled_addr(&mut b, ADDR, GID, params::OUT, 4);
    b.st(Space::Global, Width::B4, Src::Reg(ACC), Src::Reg(ADDR), 0);
    b.exit();
    b.build()
}

fn compute_heavy(elements: u32, alu_iters: u32, sfu_every: u32) -> caba_isa::Program {
    let mut b = ProgramBuilder::new();
    b.global_thread_id(GID);
    clamp(&mut b, IDX, GID, elements);
    scaled_addr(&mut b, ADDR, IDX, params::IN, 4);
    b.ld(Space::Global, Width::B4, V, Src::Reg(ADDR), 0);
    b.movi(I, 0);
    b.do_while(|b| {
        // Dependent chain: mul, add, xor — no ILP within a thread.
        b.alu(AluOp::Mul, V, Src::Reg(V), Src::Imm(0x0001_0003));
        b.alu(AluOp::Add, V, Src::Reg(V), Src::Reg(GID));
        b.alu(AluOp::Xor, V, Src::Reg(V), Src::Imm(0x2545_F491));
        if sfu_every > 0 {
            b.sfu(SfuOp::Rcp, T0, Src::Reg(V));
            b.alu(AluOp::Xor, V, Src::Reg(V), Src::Reg(T0));
        }
        b.alu(AluOp::Add, I, Src::Reg(I), Src::Imm(1));
        b.setp(
            Pred(0),
            CmpOp::LtU,
            Src::Reg(I),
            Src::Imm(alu_iters.max(1) as u64),
        );
        Pred(0)
    });
    scaled_addr(&mut b, ADDR, IDX, params::OUT, 4);
    b.st(Space::Global, Width::B4, Src::Reg(V), Src::Reg(ADDR), 0);
    b.exit();
    b.build()
}

fn sfu_heavy(elements: u32, iters: u32) -> caba_isa::Program {
    let mut b = ProgramBuilder::new();
    b.global_thread_id(GID);
    clamp(&mut b, IDX, GID, elements);
    scaled_addr(&mut b, ADDR, IDX, params::IN, 4);
    b.ld(Space::Global, Width::B4, V, Src::Reg(ADDR), 0);
    b.movi(I, 0);
    b.do_while(|b| {
        b.sfu(SfuOp::Sin, V, Src::Reg(V));
        b.sfu(SfuOp::Ex2, V, Src::Reg(V));
        b.alu(AluOp::Add, I, Src::Reg(I), Src::Imm(1));
        b.setp(
            Pred(0),
            CmpOp::LtU,
            Src::Reg(I),
            Src::Imm(iters.max(1) as u64),
        );
        Pred(0)
    });
    scaled_addr(&mut b, ADDR, IDX, params::OUT, 4);
    b.st(Space::Global, Width::B4, Src::Reg(V), Src::Reg(ADDR), 0);
    b.exit();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_build() {
        let templates = [
            KernelTemplate::Streaming {
                loads: 2,
                alu_per_load: 1,
            },
            KernelTemplate::Gather { alu_per_load: 1 },
            KernelTemplate::PointerChase { hops: 4 },
            KernelTemplate::Stencil,
            KernelTemplate::GemmTile { k: 8 },
            KernelTemplate::ComputeHeavy {
                alu_iters: 16,
                sfu_every: 0,
            },
            KernelTemplate::SfuHeavy { iters: 8 },
        ];
        for t in templates {
            let k = t.build("t", 4096, 64);
            assert!(k.program().len() > 3, "{t:?}");
            assert!(k.regs_per_thread() >= 3, "{t:?}");
            assert!(k.dims().total_threads() >= 32, "{t:?}");
        }
    }

    #[test]
    fn gemm_tile_reserves_shared_memory() {
        let k = KernelTemplate::GemmTile { k: 4 }.build("mm", 1024, 128);
        assert!(k.shared_bytes_per_block() >= 512);
    }

    #[test]
    fn streaming_covers_elements_once() {
        let t = KernelTemplate::Streaming {
            loads: 4,
            alu_per_load: 0,
        };
        assert_eq!(t.threads(4096), 1024);
        assert_eq!(t.element_bytes(), 8);
        // Per thread: ~3 instructions per 8-byte element — a low
        // instruction-to-byte ratio, so the template is bandwidth-bound.
        let k = t.build("s", 4096, 128);
        let per_thread = k.program().len() as u32;
        assert!(per_thread <= 24, "{per_thread} instructions");
    }

    #[test]
    fn gather_and_chase_are_element_per_thread() {
        assert_eq!(
            KernelTemplate::Gather { alu_per_load: 1 }.threads(5000),
            5000
        );
        // Pointer chases traverse a quarter of the nodes.
        assert_eq!(KernelTemplate::PointerChase { hops: 3 }.threads(4000), 1000);
        assert_eq!(KernelTemplate::Stencil.element_bytes(), 8);
        assert_eq!(
            KernelTemplate::Gather { alu_per_load: 1 }.element_bytes(),
            4
        );
    }
}
