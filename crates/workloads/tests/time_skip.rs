//! Golden tests for the global next-event clock: time skipping must be
//! **bit-invisible** to every architectural statistic. A run with
//! `time_skip` on and one with it off must produce byte-equal [`RunStats`]
//! — including the Figure 1 issue-slot buckets, whose skipped spans are
//! credited in bulk — and a snapshot taken *inside* a skipped span must
//! resume to the identical completion.

use caba_compress::Algorithm;
use caba_core::CabaController;
use caba_sim::{Design, Gpu, GpuConfig, RunError, RunStats};
use caba_stats::StallKind;
use caba_workloads::{app, prepare_app};

const SCALE: f64 = 0.05;
const MAX: u64 = 50_000_000;

/// A named design constructor (designs are rebuilt per run, not cloned).
type DesignCell = (&'static str, fn() -> Design);

/// The three designs the skip interacts with differently: no compression
/// machinery at all, dedicated-logic compression (partition-side horizon
/// work), and assist warps (SM-side dormancy with live assist slots).
fn designs() -> [DesignCell; 3] {
    [
        ("Base", || Design::Base),
        ("HW-BDI", || Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        }),
        ("CABA-BDI", || Design::Caba(Box::new(CabaController::bdi()))),
    ]
}

fn run_with_skip(app_name: &str, design: Design, time_skip: bool) -> (RunStats, u64, u64) {
    let spec = app(app_name).expect(app_name);
    let mut cfg = GpuConfig::small();
    cfg.time_skip = time_skip;
    let (mut gpu, kernel) = prepare_app(&spec, cfg, design, SCALE);
    let stats = gpu.run(&kernel, MAX).expect("run completes");
    let (skipped, events) = gpu.skip_stats();
    (stats, skipped, events)
}

/// Every Fig. 1 bucket and every other counter must be identical with the
/// next-event clock on and off, across apps and designs; the slot totals
/// must conserve (`buckets == cycles x SMs x schedulers`) in both modes;
/// and the skip must actually fire somewhere, or this test proves nothing.
#[test]
fn time_skip_is_bit_invisible_across_apps_and_designs() {
    let cfg = GpuConfig::small();
    let slots_per_cycle = (cfg.num_sms * cfg.schedulers_per_sm) as u64;
    let mut total_skipped = 0;
    for app_name in ["CONS", "bfs", "MUM"] {
        for (dname, make) in designs() {
            let (on, skipped, events) = run_with_skip(app_name, make(), true);
            let (off, off_skipped, _) = run_with_skip(app_name, make(), false);
            assert_eq!(
                on, off,
                "{app_name}/{dname}: RunStats must not depend on time_skip"
            );
            assert_eq!(off_skipped, 0, "{app_name}/{dname}: skip off means none");
            for k in StallKind::ALL {
                assert_eq!(
                    on.breakdown.count(k),
                    off.breakdown.count(k),
                    "{app_name}/{dname}: Fig. 1 bucket {k} diverged"
                );
            }
            assert_eq!(
                on.breakdown.total(),
                on.cycles * slots_per_cycle,
                "{app_name}/{dname}: slot conservation broke (skip credit missing)"
            );
            assert!(
                skipped == 0 || events > 0,
                "{app_name}/{dname}: skipped cycles without skip events"
            );
            total_skipped += skipped;
        }
    }
    assert!(
        total_skipped > 0,
        "no cell ever skipped — the next-event clock never engaged"
    );
}

/// Snapshots taken at arbitrary cycles — including cycles an unbroken run
/// would jump clean over — must resume to the identical completion.
/// `RunStats` must match the reference exactly; the skip counters may
/// differ by precisely the restore contract: SM dormancy is recomputed,
/// never restored, so a split inside a skip span costs one real re-proof
/// cycle (skipped total one lower, the span cut into one extra event).
/// At least one probed split must land inside a span, proving the
/// mid-skip case is really covered.
#[test]
fn mid_skip_snapshot_resumes_bit_identically() {
    // `hs` under Base skips ~a quarter of its cycles in many short spans,
    // so the probe grid below reliably cuts at least one span in two.
    let spec = app("hs").expect("known app");
    let mut cfg = GpuConfig::small();
    cfg.time_skip = true;

    let (mut ref_gpu, kernel) = prepare_app(&spec, cfg, Design::Base, SCALE);
    let ref_stats = ref_gpu.run(&kernel, MAX).expect("reference completes");
    let (ref_skipped, ref_events) = ref_gpu.skip_stats();
    assert!(
        ref_skipped > 0,
        "reference run must skip for this test to bite"
    );

    let mut mid_skip_proven = false;
    for split in (1..64).map(|i| i * ref_stats.cycles / 64) {
        let (mut g1, _) = prepare_app(&spec, cfg, Design::Base, SCALE);
        match g1.run(&kernel, split) {
            Err(RunError::Timeout { cycles, .. }) => assert_eq!(cycles, split),
            other => panic!("split run must time out, got {other:?}"),
        }
        let bytes = g1.snapshot(&kernel);
        let mut g2 = Gpu::new(cfg, Design::Base);
        g2.restore(&kernel, &bytes)
            .expect("mid-run snapshot restores");
        assert_eq!(g2.cycle(), split);
        let resumed = g2.resume(&kernel, MAX).expect("resumed run completes");
        assert_eq!(resumed, ref_stats, "split at {split}: stats diverged");
        let (skipped, events) = g2.skip_stats();
        let cut = skipped == ref_skipped - 1 || events == ref_events + 1;
        let clean = skipped == ref_skipped && events == ref_events;
        assert!(
            clean || cut,
            "split at {split}: skipped {skipped}/{events} events vs \
             reference {ref_skipped}/{ref_events} — more than the one \
             dormancy re-proof cycle the restore contract allows"
        );
        if cut {
            // The timeout cut a span in two: this snapshot was mid-skip,
            // and the restored machine re-proved dormancy with one real
            // cycle before skipping the remainder of the span.
            mid_skip_proven = true;
        }
    }
    assert!(
        mid_skip_proven,
        "no probed split landed inside a skip span — move the probes"
    );
}
