//! End-to-end CABA tests: assist warps really run, really transform bytes,
//! and the design points order as the paper reports.

use caba_compress::Algorithm;
use caba_core::CabaController;
use caba_isa::{AluOp, Kernel, LaunchDims, ProgramBuilder, Reg, Space, Special, Src, Width};
use caba_sim::{Design, Gpu, GpuConfig};

/// Bandwidth-bound streaming reduction: each thread sums four strided
/// elements and stores one result. Load-dominated, coalesced, and with a
/// working set far beyond the (test-sized) L2 — the memory-bound regime of
/// the paper's evaluated applications.
fn copy_kernel(n: u32, in_base: u64, out_base: u64) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v, acc, idx) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    b.global_thread_id(gid);
    b.movi(acc, 0);
    for round in 0..4u64 {
        b.alu(AluOp::Add, idx, Src::Reg(gid), Src::Imm(round * 8192));
        b.alu(AluOp::Rem, idx, Src::Reg(idx), Src::Imm(n as u64));
        b.alu(AluOp::Shl, addr, Src::Reg(idx), Src::Imm(2));
        b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
        b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
        b.alu(AluOp::Add, acc, Src::Reg(acc), Src::Reg(v));
    }
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(1)));
    b.st(Space::Global, Width::B4, Src::Reg(acc), Src::Reg(addr), 0);
    b.exit();
    Kernel::new("copy", b.build(), LaunchDims::new(n.div_ceil(256), 256))
        .with_params(vec![in_base, out_base])
}

/// CPU reference for [`copy_kernel`].
fn expected_out(input: &[u32], gid: u32) -> u32 {
    let n = input.len() as u32;
    (0..4u32)
        .map(|r| input[((gid + r * 8192) % n) as usize])
        .fold(0u32, |a, v| a.wrapping_add(v))
}

fn load_compressible(gpu: &mut Gpu, n: u32, base: u64) {
    // Low-dynamic-range values: ideal for BDI.
    for i in 0..n {
        gpu.mem_mut()
            .write_u32(base + i as u64 * 4, 0x0BEE_0000 + (i % 200));
    }
}

fn check_copied(gpu: &Gpu, n: u32, base: u64) {
    let input: Vec<u32> = (0..n).map(|i| 0x0BEE_0000 + (i % 200)).collect();
    for i in 0..n {
        assert_eq!(
            gpu.mem().read_u32(base + i as u64 * 4),
            expected_out(&input, i),
            "element {i}"
        );
    }
}

/// Assist warps genuinely decompress data: with paranoid checks enabled,
/// every decompression subroutine's output is compared against the reference
/// decompressor, and the kernel's functional result must match Base.
#[test]
fn caba_bdi_runs_assist_warps_and_stays_correct() {
    let n = 16384;
    let ctrl = CabaController::bdi().with_paranoid(true);
    let mut gpu = Gpu::new(GpuConfig::small(), Design::Caba(Box::new(ctrl)));
    load_compressible(&mut gpu, n, 0x1_0000);
    let stats = gpu
        .run(&copy_kernel(n, 0x1_0000, 0x40_0000), 8_000_000)
        .unwrap();
    check_copied(&gpu, n, 0x40_0000);

    assert!(stats.assist_launches > 0, "assist warps launched");
    assert!(stats.assist_instructions > 0, "assist instructions issued");
    assert!(stats.lines_decompressed > 0, "decompressions happened");
    assert!(stats.lines_compressed > 0, "compressions happened");
    assert!(stats.assist_fraction() > 0.0);
    let Design::Caba(_) = gpu.design() else {
        panic!("design preserved")
    };
}

#[test]
fn caba_bdi_saves_bandwidth_vs_base() {
    let n = 16384;
    let mut base = Gpu::new(GpuConfig::small(), Design::Base);
    load_compressible(&mut base, n, 0x1_0000);
    let sb = base
        .run(&copy_kernel(n, 0x1_0000, 0x40_0000), 8_000_000)
        .unwrap();

    let ctrl = CabaController::bdi();
    let mut caba = Gpu::new(GpuConfig::small(), Design::Caba(Box::new(ctrl)));
    load_compressible(&mut caba, n, 0x1_0000);
    let sc = caba
        .run(&copy_kernel(n, 0x1_0000, 0x40_0000), 8_000_000)
        .unwrap();
    check_copied(&caba, n, 0x40_0000);

    assert!(
        sc.dram_bursts < sb.dram_bursts,
        "CABA bursts {} vs Base {}",
        sc.dram_bursts,
        sb.dram_bursts
    );
    assert!(sc.icnt_flits < sb.icnt_flits);
}

/// The paper's design-point ordering on a bandwidth-bound, compressible
/// workload: Ideal-BDI ≥ HW-BDI ≥ CABA-BDI > Base (within tolerance, since
/// CABA is occasionally within noise of HW, §6.1).
#[test]
fn design_point_ordering_matches_paper() {
    let n = 32768;
    let run = |design: Design| {
        let mut gpu = Gpu::new(GpuConfig::small(), design);
        load_compressible(&mut gpu, n, 0x1_0000);
        let s = gpu
            .run(&copy_kernel(n, 0x1_0000, 0x80_0000), 40_000_000)
            .unwrap();
        check_copied(&gpu, n, 0x80_0000);
        s
    };
    let base = run(Design::Base);
    let caba = run(Design::Caba(Box::new(CabaController::bdi())));
    let hw = run(Design::HwFull {
        alg: Algorithm::Bdi,
        ideal: false,
    });
    let ideal = run(Design::HwFull {
        alg: Algorithm::Bdi,
        ideal: true,
    });

    let sp = |s: &caba_sim::RunStats| base.cycles as f64 / s.cycles as f64;
    let (sp_caba, sp_hw, sp_ideal) = (sp(&caba), sp(&hw), sp(&ideal));
    // Every compressed design must beat Base on this workload.
    assert!(sp_caba > 1.0, "CABA speedup {sp_caba}");
    assert!(sp_hw > 1.0, "HW speedup {sp_hw}");
    assert!(sp_ideal > 1.0, "Ideal speedup {sp_ideal}");
    // Ideal and HW differ only by a 1-cycle fill latency; store-timing
    // divergence can swing either a few percent (the paper notes CABA can
    // even edge out Ideal occasionally, §6.1).
    assert!(sp_ideal >= sp_hw * 0.95, "ideal {sp_ideal} vs hw {sp_hw}");
    // CABA pays real assist-warp overhead: close to, but not wildly beyond,
    // the dedicated-hardware designs.
    assert!(sp_caba >= sp_hw * 0.75, "CABA {sp_caba} vs HW {sp_hw}");
    assert!(
        sp_caba <= sp_ideal * 1.10,
        "CABA {sp_caba} should not beat ideal {sp_ideal} by much"
    );
}

#[test]
fn caba_on_incompressible_data_is_functionally_safe() {
    let n = 8192;
    let ctrl = CabaController::bdi().with_paranoid(true);
    let mut gpu = Gpu::new(GpuConfig::small(), Design::Caba(Box::new(ctrl)));
    let mut x = 17u64;
    for i in 0..n {
        x = x.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(0x33);
        gpu.mem_mut().write_u32(0x1_0000 + i as u64 * 4, x as u32);
    }
    let input: Vec<u32> = (0..n)
        .map(|i| gpu.mem().read_u32(0x1_0000 + i as u64 * 4))
        .collect();
    let expect: Vec<u32> = (0..n).map(|i| expected_out(&input, i)).collect();
    let stats = gpu
        .run(&copy_kernel(n, 0x1_0000, 0x40_0000), 8_000_000)
        .unwrap();
    for (i, &e) in expect.iter().enumerate() {
        assert_eq!(gpu.mem().read_u32(0x40_0000 + i as u64 * 4), e, "elem {i}");
    }
    // Incompressible loads skip decompression entirely.
    assert_eq!(stats.lines_decompressed, 0);
}

#[test]
fn caba_fpc_and_cpack_run_correctly() {
    for (ctrl, name) in [
        (CabaController::fpc(), "FPC"),
        (CabaController::cpack(), "C-Pack"),
        (CabaController::best_of_all(), "BestOfAll"),
    ] {
        let n = 8192;
        let mut gpu = Gpu::new(GpuConfig::small(), Design::Caba(Box::new(ctrl)));
        load_compressible(&mut gpu, n, 0x1_0000);
        let stats = gpu
            .run(&copy_kernel(n, 0x1_0000, 0x40_0000), 4_000_000)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        check_copied(&gpu, n, 0x40_0000);
        assert!(stats.assist_launches > 0, "{name}");
    }
}

/// A tiny store buffer forces the §4.2.2 overflow path: lines released
/// uncompressed, counted, and still functionally correct.
#[test]
fn store_buffer_overflow_path() {
    let n = 16384;
    let mut cfg = GpuConfig::small();
    cfg.store_buffer = 1;
    cfg.awb_low_priority_entries = 1;
    let ctrl = CabaController::bdi().with_paranoid(true);
    let mut gpu = Gpu::new(cfg, Design::Caba(Box::new(ctrl)));
    load_compressible(&mut gpu, n, 0x1_0000);
    let stats = gpu
        .run(&copy_kernel(n, 0x1_0000, 0x40_0000), 40_000_000)
        .unwrap();
    check_copied(&gpu, n, 0x40_0000);
    assert!(
        stats.store_buffer_overflows > 0,
        "tiny buffer must overflow"
    );
}
