//! Prefetching with assist warps (§7.2).
//!
//! The paper argues CABA is a natural substrate for GPU prefetching: assist
//! warps can keep per-warp stride state in spare registers, compute
//! predictions on the idle ALU pipeline, and — crucially — be *throttled* so
//! prefetches issue only when the memory pipelines are idle, avoiding the
//! demand-request interference that plagues uncontrolled GPU prefetchers.
//!
//! This module implements a per-warp stride detector plus an evaluation
//! harness that replays an address trace against an L1 model with and
//! without assist-warp prefetching, enforcing the idle-cycle throttle.

use caba_mem::{line_base, Cache, CacheGeometry, LINE_SIZE};
use std::collections::HashMap;

/// Per-warp stride-detection state (kept in spare registers per §7.2).
#[derive(Debug, Clone, Copy, Default)]
struct WarpState {
    last_addr: u64,
    stride: i64,
    confidence: u32,
}

/// Prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Strided accesses observed before predictions are trusted.
    pub train_threshold: u32,
    /// Lines fetched ahead per trigger.
    pub degree: u32,
    /// Only issue prefetches when the memory pipeline was idle this cycle
    /// (the CABA throttle). When false, prefetches contend like demands —
    /// the uncontrolled flooding case.
    pub idle_only: bool,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            train_threshold: 2,
            degree: 2,
            idle_only: true,
        }
    }
}

/// A per-warp stride prefetcher.
#[derive(Debug)]
pub struct StridePrefetcher {
    cfg: PrefetchConfig,
    warps: HashMap<u32, WarpState>,
    issued: u64,
    dropped_busy: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher.
    pub fn new(cfg: PrefetchConfig) -> Self {
        StridePrefetcher {
            cfg,
            warps: HashMap::new(),
            issued: 0,
            dropped_busy: 0,
        }
    }

    /// Observes a demand access by `warp` and returns the line addresses to
    /// prefetch. `mem_idle` reports whether the memory pipeline has a free
    /// slot; when the throttle is on and the pipeline is busy, predictions
    /// are dropped (counted in [`StridePrefetcher::dropped_busy`]).
    pub fn observe(&mut self, warp: u32, addr: u64, mem_idle: bool) -> Vec<u64> {
        let st = self.warps.entry(warp).or_default();
        let stride = addr.wrapping_sub(st.last_addr) as i64;
        if st.last_addr != 0 && stride == st.stride && stride != 0 {
            st.confidence = st.confidence.saturating_add(1);
        } else {
            st.stride = stride;
            st.confidence = 0;
        }
        st.last_addr = addr;

        if st.confidence < self.cfg.train_threshold {
            return Vec::new();
        }
        let stride = st.stride;
        let preds: Vec<u64> = (1..=self.cfg.degree as i64)
            .map(|k| line_base(addr.wrapping_add_signed(stride * k)))
            .collect();
        if self.cfg.idle_only && !mem_idle {
            self.dropped_busy += preds.len() as u64;
            return Vec::new();
        }
        self.issued += preds.len() as u64;
        preds
    }

    /// Prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Predictions dropped because the memory pipeline was busy.
    pub fn dropped_busy(&self) -> u64 {
        self.dropped_busy
    }
}

/// Result of replaying a trace with and without prefetching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchReport {
    /// Demand misses without prefetching.
    pub baseline_misses: u64,
    /// Demand misses with prefetching.
    pub prefetch_misses: u64,
    /// Prefetches issued.
    pub issued: u64,
    /// Predictions dropped by the idle-only throttle.
    pub dropped_busy: u64,
    /// Demand accesses replayed.
    pub accesses: u64,
}

impl PrefetchReport {
    /// Fraction of baseline misses eliminated.
    pub fn coverage(&self) -> f64 {
        if self.baseline_misses == 0 {
            0.0
        } else {
            1.0 - self.prefetch_misses as f64 / self.baseline_misses as f64
        }
    }
}

/// Replays `trace` (pairs of warp id and byte address; one access per cycle,
/// with `busy_every` marking cycles whose memory pipeline is busy) against
/// the paper's L1 geometry, with and without assist-warp prefetching.
pub fn evaluate(cfg: PrefetchConfig, trace: &[(u32, u64)], busy_every: usize) -> PrefetchReport {
    let mut base_l1 = Cache::new(CacheGeometry::l1_isca2015());
    for &(_, a) in trace {
        let _ = base_l1.access(a, false);
        if !base_l1.probe(a) {
            base_l1.fill(a, false, LINE_SIZE);
        }
    }

    let mut l1 = Cache::new(CacheGeometry::l1_isca2015());
    let mut pf = StridePrefetcher::new(cfg);
    for (cycle, &(warp, a)) in trace.iter().enumerate() {
        let _ = l1.access(a, false);
        if !l1.probe(a) {
            l1.fill(a, false, LINE_SIZE);
        }
        let mem_idle = busy_every == 0 || cycle % busy_every != 0;
        for p in pf.observe(warp, a, mem_idle) {
            if !l1.probe(p) {
                l1.fill(p, false, LINE_SIZE);
            }
        }
    }

    PrefetchReport {
        baseline_misses: base_l1.misses(),
        prefetch_misses: l1.misses(),
        issued: pf.issued(),
        dropped_busy: pf.dropped_busy(),
        accesses: trace.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caba_stats::Rng64;

    fn strided_trace(warps: u32, per_warp: u32, stride: u64) -> Vec<(u32, u64)> {
        // Interleave warps, each streaming with `stride`.
        let mut t = Vec::new();
        for i in 0..per_warp {
            for w in 0..warps {
                t.push((w, 0x10_0000 * (w as u64 + 1) + i as u64 * stride));
            }
        }
        t
    }

    #[test]
    fn detector_trains_then_predicts() {
        let mut pf = StridePrefetcher::new(PrefetchConfig::default());
        assert!(pf.observe(0, 0x1000, true).is_empty());
        assert!(pf.observe(0, 0x1100, true).is_empty());
        assert!(pf.observe(0, 0x1200, true).is_empty()); // confidence 1
        let preds = pf.observe(0, 0x1300, true); // confidence 2 -> predict
        assert_eq!(preds, vec![line_base(0x1400), line_base(0x1500)]);
        assert_eq!(pf.issued(), 2);
    }

    #[test]
    fn stride_change_resets_training() {
        let mut pf = StridePrefetcher::new(PrefetchConfig::default());
        for i in 0..8 {
            pf.observe(0, 0x1000 + i * 0x100, true);
        }
        assert!(pf.issued() > 0);
        let before = pf.issued();
        // Break the stride.
        assert!(pf.observe(0, 0x9_0000, true).is_empty());
        assert!(pf.observe(0, 0x9_0400, true).is_empty());
        assert_eq!(pf.issued(), before);
    }

    #[test]
    fn throttle_drops_when_busy() {
        let cfg = PrefetchConfig {
            idle_only: true,
            ..Default::default()
        };
        let mut pf = StridePrefetcher::new(cfg);
        for i in 0..4 {
            pf.observe(0, 0x1000 + i * 0x100, true);
        }
        let got = pf.observe(0, 0x1400, false);
        assert!(got.is_empty());
        assert!(pf.dropped_busy() >= 2);
    }

    #[test]
    fn streaming_trace_gets_high_coverage() {
        let trace = strided_trace(4, 400, 128);
        let r = evaluate(PrefetchConfig::default(), &trace, 0);
        assert!(r.coverage() > 0.7, "coverage {}", r.coverage());
        assert!(r.prefetch_misses < r.baseline_misses);
        assert_eq!(r.accesses, trace.len() as u64);
    }

    #[test]
    fn random_trace_gets_no_benefit() {
        let mut rng = Rng64::new(9);
        let trace: Vec<(u32, u64)> = (0..2000)
            .map(|_| (rng.next_u32() % 8, rng.next_u64() % (1 << 24)))
            .collect();
        let r = evaluate(PrefetchConfig::default(), &trace, 0);
        // Coverage should be near zero (and never negative enough to matter).
        assert!(r.coverage().abs() < 0.1, "coverage {}", r.coverage());
    }

    #[test]
    fn busier_pipeline_means_fewer_prefetches() {
        let trace = strided_trace(2, 500, 128);
        let relaxed = evaluate(PrefetchConfig::default(), &trace, 0);
        let busy = evaluate(PrefetchConfig::default(), &trace, 2);
        assert!(busy.issued < relaxed.issued);
        assert!(busy.dropped_busy > 0);
        // Throttled prefetching still must not increase misses.
        assert!(busy.prefetch_misses <= busy.baseline_misses);
    }
}
