//! **CABA** — the Core-Assisted Bottleneck Acceleration framework
//! (Vijaykumar et al., ISCA 2015), the primary contribution of the paper.
//!
//! CABA generates *assist warps* — short instruction subroutines that run on
//! otherwise-idle GPU core resources — to alleviate execution bottlenecks.
//! This crate supplies the framework's *policy* layer on top of the
//! mechanism in `caba-sim`:
//!
//! * [`AssistWarpStore`] — the on-chip store of assist-warp subroutines
//!   (§3.3), populated with generated programs:
//!   * genuine BDI decompression/compression subroutines written in the
//!     simulator's ISA ([`subroutines::bdi_decompress`],
//!     [`subroutines::bdi_compress`]) — the assist warps *really* transform
//!     the bytes, and the test suite proves their output matches the
//!     reference compressor bit for bit;
//!   * timing-representative subroutines for the serial FPC and C-Pack
//!     algorithms (§4.1.3; the tech report carries their details, so we
//!     model their instruction footprint while taking the functional result
//!     from the reference implementations).
//! * [`CabaController`] — the Assist Warp Controller policy: triggers
//!   decompression on compressed fills (high priority, §4.2.1), compression
//!   on store-buffer drains (low priority, §4.2.2), staging-slot management,
//!   and completion handling with optional paranoid verification.
//! * [`memoize`] — the §7.1 "other use": a shared-memory lookup table for
//!   redundant-computation elimination.
//! * [`prefetch`] — the §7.2 "other use": stride prefetching assist warps
//!   throttled to idle memory cycles.
//!
//! # Examples
//!
//! Run a bandwidth-bound kernel under CABA-BDI:
//!
//! ```
//! use caba_core::CabaController;
//! use caba_compress::Algorithm;
//! use caba_sim::{Design, Gpu, GpuConfig};
//! use caba_isa::{Kernel, LaunchDims, ProgramBuilder, Reg, Src, Special, AluOp, Width, Space};
//!
//! let mut b = ProgramBuilder::new();
//! let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
//! b.global_thread_id(gid);
//! b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
//! b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
//! b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
//! b.exit();
//! let kernel = Kernel::new("read", b.build(), LaunchDims::new(4, 64))
//!     .with_params(vec![0x10000]);
//!
//! let design = Design::Caba(Box::new(CabaController::bdi()));
//! let mut gpu = Gpu::new(GpuConfig::small(), design);
//! for i in 0..256u64 {
//!     gpu.mem_mut().write_u32(0x10000 + i * 4, 0x400 + i as u32);
//! }
//! let stats = gpu.run(&kernel, 1_000_000).expect("completes");
//! assert!(stats.cycles > 0);
//! ```

pub mod controller;
pub mod memoize;
pub mod prefetch;
pub mod subroutines;

pub use controller::{CabaController, CabaMode, CabaStats};
pub use subroutines::AssistWarpStore;
