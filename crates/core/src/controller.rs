//! The CABA Assist Warp Controller policy (§3.3–3.4, §4.2).
//!
//! Implements `caba_sim::AssistController`: decides which subroutine to
//! trigger for each fill/store event, manages staging slots (the compressed
//! line resident at the core plus live-in/live-out registers), and
//! interprets assist-warp completions. Decompression assist warps run at
//! high priority ("stalls the progress of its parent warp until it
//! completes", §4.2.1); compression assist warps run at low priority through
//! the AWB partition ("off the critical path", §4.2.2).

use crate::subroutines::{
    active_mask_for, lanes_for, AssistWarpStore, SubroutineKey, HDR_OFF, PAYLOAD_OFF, SLOT_SIZE,
};
use caba_compress::bdi::{Bdi, BdiEncoding};
use caba_compress::{Algorithm, BestOfAll, CompressedLine, Compressor};
use caba_isa::{Program, Reg};
use caba_mem::func::LineCompressor;
use caba_mem::LINE_SIZE;
use caba_sim::{
    AssistController, AssistLaunch, AssistOutcome, AssistPriority, FillAction, FillInfo,
    SmServices, StoreAction, StoreInfo,
};
use caba_stats::snap::{SnapError, SnapshotReader, SnapshotWriter};
use std::collections::HashMap;
use std::sync::Arc;

/// Which compression algorithm(s) this controller drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CabaMode {
    /// CABA-BDI: genuine assist-warp subroutines.
    Bdi,
    /// CABA-FPC: timing-representative subroutines, reference functional
    /// results.
    Fpc,
    /// CABA-C-Pack.
    CPack,
    /// CABA-BestOfAll (§6.3): per-line best algorithm, no selection
    /// overhead.
    BestOfAll,
}

/// Counters the controller keeps (inspected by tests and harnesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CabaStats {
    /// Decompression assist warps launched.
    pub decompressions: u64,
    /// Compression assist warps launched.
    pub compressions: u64,
    /// Compression subroutines that reported "encoding does not fit".
    pub compression_failures: u64,
    /// Events handled without an assist warp because no staging slot was
    /// free (throttling fallback).
    pub slot_fallbacks: u64,
    /// Compression results discarded because the line changed underneath
    /// the assist warp (recompressed from current contents).
    pub stale_recompressions: u64,
}

#[derive(Debug)]
enum Inflight {
    BdiDecompress {
        addr: u64,
        slot: u64,
        expected: Vec<u8>,
    },
    SerialDecompress {
        addr: u64,
        slot: u64,
    },
    BdiCompress {
        addr: u64,
        slot: u64,
        enc: BdiEncoding,
        snapshot: Vec<u8>,
    },
    SerialCompress {
        addr: u64,
        slot: u64,
        alg: Algorithm,
        snapshot: Vec<u8>,
    },
}

/// Staging slots per SM.
const SLOTS_PER_SM: u64 = 128;
/// Offset of the first slot inside an SM's staging region.
const SLOTS_BASE_OFF: u64 = 4096;

/// The CABA policy controller. Construct with [`CabaController::bdi`],
/// [`CabaController::fpc`], [`CabaController::cpack`] or
/// [`CabaController::best_of_all`], then wrap in
/// `caba_sim::Design::Caba(Box::new(...))`.
#[derive(Debug)]
pub struct CabaController {
    mode: CabaMode,
    aws: AssistWarpStore,
    inflight: HashMap<u64, Inflight>,
    free_slots: HashMap<usize, Vec<u64>>,
    next_tag: u64,
    paranoid: bool,
    decompress_priority: AssistPriority,
    stats: CabaStats,
}

impl CabaController {
    fn new(mode: CabaMode) -> Self {
        CabaController {
            mode,
            aws: AssistWarpStore::new(),
            inflight: HashMap::new(),
            free_slots: HashMap::new(),
            next_tag: 0,
            paranoid: cfg!(debug_assertions),
            decompress_priority: AssistPriority::High,
            stats: CabaStats::default(),
        }
    }

    /// CABA with BDI compression (the paper's main design point).
    pub fn bdi() -> Self {
        Self::new(CabaMode::Bdi)
    }

    /// CABA with FPC.
    pub fn fpc() -> Self {
        Self::new(CabaMode::Fpc)
    }

    /// CABA with C-Pack.
    pub fn cpack() -> Self {
        Self::new(CabaMode::CPack)
    }

    /// CABA-BestOfAll (§6.3).
    pub fn best_of_all() -> Self {
        Self::new(CabaMode::BestOfAll)
    }

    /// Enables/disables paranoid verification of assist-warp results
    /// against the reference compressor (on by default in debug builds).
    pub fn with_paranoid(mut self, on: bool) -> Self {
        self.paranoid = on;
        self
    }

    /// Ablation knob: schedule decompression assist warps at LOW priority
    /// instead of the paper's high priority (§3.2.3 argues decompression is
    /// required for forward progress and must take precedence — this knob
    /// quantifies that choice).
    pub fn with_low_priority_decompression(mut self) -> Self {
        self.decompress_priority = AssistPriority::Low;
        self
    }

    /// The mode this controller was built with.
    pub fn mode(&self) -> CabaMode {
        self.mode
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CabaStats {
        self.stats
    }

    fn alloc_slot(&mut self, sm: usize, staging_base: u64) -> Option<u64> {
        let slots = self.free_slots.entry(sm).or_insert_with(|| {
            (0..SLOTS_PER_SM)
                .map(|i| staging_base + SLOTS_BASE_OFF + i * SLOT_SIZE)
                .collect()
        });
        slots.pop()
    }

    fn free_slot(&mut self, sm: usize, slot: u64) {
        self.free_slots.entry(sm).or_default().push(slot);
    }

    fn take_tag(&mut self) -> u64 {
        self.next_tag += 1;
        self.next_tag
    }

    /// Picks the BDI encoding the compression assist warp will *test* for
    /// this line. The AWC profiles recent lines; here the profile oracle is
    /// the reference compressor restricted to the single-pass encodings
    /// (§4.1.2: often a single encoding suffices per application).
    fn pick_encoding(line: &[u8]) -> BdiEncoding {
        let bdi = Bdi::new();
        crate::subroutines::CABA_COMPRESS_ENCODINGS
            .iter()
            .filter_map(|&e| bdi.compress_with(line, e).map(|c| (c.size_bytes(), e)))
            .min_by_key(|&(s, _)| s)
            .map(|(_, e)| e)
            // Nothing fits: still run one test (it will report failure and
            // the line is released uncompressed) — the paper's overhead for
            // incompressible data.
            .unwrap_or(BdiEncoding::B4D1)
    }
}

impl AssistController for CabaController {
    fn algorithm(&self) -> Option<Algorithm> {
        match self.mode {
            CabaMode::Bdi => Some(Algorithm::Bdi),
            CabaMode::Fpc => Some(Algorithm::Fpc),
            CabaMode::CPack => Some(Algorithm::CPack),
            CabaMode::BestOfAll => None,
        }
    }

    fn selector(&self) -> LineCompressor {
        match self.mode {
            CabaMode::Bdi => LineCompressor::Fixed(Algorithm::Bdi),
            CabaMode::Fpc => LineCompressor::Fixed(Algorithm::Fpc),
            CabaMode::CPack => LineCompressor::Fixed(Algorithm::CPack),
            CabaMode::BestOfAll => LineCompressor::BestOfAll,
        }
    }

    fn on_fill(&mut self, info: &FillInfo, svc: &mut SmServices<'_, '_>) -> FillAction {
        let Some(stored) =
            svc.line_store
                .stored_compressed(svc.mem, svc.cmap.as_deref_mut(), info.addr)
        else {
            return FillAction::Complete { extra_latency: 0 };
        };
        let Some(slot) = self.alloc_slot(info.sm, svc.staging_base) else {
            // Staging exhausted: throttle by falling back to a serialized
            // fixed-latency path.
            self.stats.slot_fallbacks += 1;
            return FillAction::Complete { extra_latency: 16 };
        };
        // Materialize the compressed payload at the core ("the compressed
        // cache line is inserted into the L1 cache", §4.2.1).
        let payload_addr = (slot as i64 + PAYLOAD_OFF) as u64;
        svc.mem.load_image(payload_addr, &stored.payload);

        let tag = self.take_tag();
        let (program, active_mask) = match stored.algorithm {
            Algorithm::Bdi => {
                let enc = BdiEncoding::from_id(stored.encoding)
                    .expect("stored BDI lines carry valid encodings");
                (
                    self.aws.get(SubroutineKey::BdiDecompress(enc)),
                    active_mask_for(lanes_for(enc)),
                )
            }
            alg => (self.aws.get(SubroutineKey::SerialDecompress(alg)), u32::MAX),
        };
        let expected = match stored.algorithm {
            Algorithm::Bdi => Bdi::new()
                .decompress(&stored)
                .expect("stored BDI lines decompress"),
            _ => svc.mem.read_line(info.addr),
        };
        self.inflight.insert(
            tag,
            match stored.algorithm {
                Algorithm::Bdi => Inflight::BdiDecompress {
                    addr: info.addr,
                    slot,
                    expected,
                },
                _ => Inflight::SerialDecompress {
                    addr: info.addr,
                    slot,
                },
            },
        );
        self.stats.decompressions += 1;
        FillAction::Assist(AssistLaunch {
            program,
            parent_warp: info.parent_warp,
            priority: self.decompress_priority,
            live_in: vec![(Reg(0), payload_addr), (Reg(1), info.addr)],
            active_mask,
            tag,
        })
    }

    fn on_store(&mut self, info: &StoreInfo, svc: &mut SmServices<'_, '_>) -> StoreAction {
        let Some(slot) = self.alloc_slot(info.sm, svc.staging_base) else {
            self.stats.slot_fallbacks += 1;
            return StoreAction::PassThrough;
        };
        let line = svc.mem.read_line(info.addr);
        let tag = self.take_tag();
        let (program, active_mask, entry) = match self.mode {
            CabaMode::Bdi => {
                let enc = Self::pick_encoding(&line);
                (
                    self.aws.get(SubroutineKey::BdiCompress(enc)),
                    active_mask_for(lanes_for(enc)),
                    Inflight::BdiCompress {
                        addr: info.addr,
                        slot,
                        enc,
                        snapshot: line,
                    },
                )
            }
            CabaMode::Fpc | CabaMode::CPack => {
                let alg = self.algorithm().expect("fixed-algorithm mode");
                (
                    self.aws.get(SubroutineKey::SerialCompress(alg)),
                    u32::MAX,
                    Inflight::SerialCompress {
                        addr: info.addr,
                        slot,
                        alg,
                        snapshot: line,
                    },
                )
            }
            CabaMode::BestOfAll => {
                // Choose the best algorithm for this line, then drive that
                // algorithm's subroutine.
                let best = BestOfAll::new().compress(&line);
                match best.map(|c| c.algorithm) {
                    Some(Algorithm::Bdi) | None => {
                        let enc = Self::pick_encoding(&line);
                        (
                            self.aws.get(SubroutineKey::BdiCompress(enc)),
                            active_mask_for(lanes_for(enc)),
                            Inflight::BdiCompress {
                                addr: info.addr,
                                slot,
                                enc,
                                snapshot: line,
                            },
                        )
                    }
                    Some(alg) => (
                        self.aws.get(SubroutineKey::SerialCompress(alg)),
                        u32::MAX,
                        Inflight::SerialCompress {
                            addr: info.addr,
                            slot,
                            alg,
                            snapshot: line,
                        },
                    ),
                }
            }
        };
        self.inflight.insert(tag, entry);
        self.stats.compressions += 1;
        StoreAction::Assist(AssistLaunch {
            program,
            parent_warp: info.parent_warp,
            priority: AssistPriority::Low,
            live_in: vec![(Reg(0), info.addr), (Reg(1), slot)],
            active_mask,
            tag,
        })
    }

    fn on_assist_complete(&mut self, tag: u64, svc: &mut SmServices<'_, '_>) -> AssistOutcome {
        let Some(entry) = self.inflight.remove(&tag) else {
            return AssistOutcome::Nothing;
        };
        match entry {
            Inflight::BdiDecompress {
                addr,
                slot,
                expected,
            } => {
                if self.paranoid {
                    let got = svc.mem.read_line(addr);
                    assert_eq!(
                        got, expected,
                        "BDI decompression assist warp produced wrong bytes at {addr:#x}"
                    );
                }
                self.free_slot(svc.sm_id, slot);
                AssistOutcome::FillComplete { addr }
            }
            Inflight::SerialDecompress { addr, slot } => {
                self.free_slot(svc.sm_id, slot);
                AssistOutcome::FillComplete { addr }
            }
            Inflight::BdiCompress {
                addr,
                slot,
                enc,
                snapshot,
            } => {
                let current = svc.mem.read_line(addr);
                if current != snapshot {
                    // The line changed while the assist warp ran (a newer
                    // coalesced store): discard the stale result and
                    // recompress the current contents.
                    self.stats.stale_recompressions += 1;
                    match Bdi::new().compress(&current) {
                        Some(c) => svc.line_store.set_compressed(addr, c),
                        None => svc.line_store.set_raw(addr),
                    }
                } else {
                    let header = svc.mem.read_u32((slot as i64 + HDR_OFF) as u64);
                    if header == 1 {
                        let len = enc.compressed_size(LINE_SIZE);
                        let payload = svc.mem.read_bytes((slot as i64 + PAYLOAD_OFF) as u64, len);
                        let line = CompressedLine {
                            algorithm: Algorithm::Bdi,
                            encoding: enc.id(),
                            payload,
                            original_len: LINE_SIZE,
                        };
                        if self.paranoid {
                            let reference = Bdi::new()
                                .compress_with(&snapshot, enc)
                                .expect("subroutine succeeded, reference must too");
                            assert_eq!(
                                line, reference,
                                "BDI compression assist warp payload diverges from \
                                 the reference at {addr:#x} ({enc:?})"
                            );
                        }
                        svc.line_store.set_compressed(addr, line);
                    } else {
                        self.stats.compression_failures += 1;
                        svc.line_store.set_raw(addr);
                    }
                }
                self.free_slot(svc.sm_id, slot);
                AssistOutcome::StoreRelease { addr }
            }
            Inflight::SerialCompress {
                addr,
                slot,
                alg,
                snapshot,
            } => {
                let current = svc.mem.read_line(addr);
                if current != snapshot {
                    self.stats.stale_recompressions += 1;
                }
                match alg.compress_line(&current) {
                    Some(c) => svc.line_store.set_compressed(addr, c),
                    None => {
                        self.stats.compression_failures += 1;
                        svc.line_store.set_raw(addr);
                    }
                }
                self.free_slot(svc.sm_id, slot);
                AssistOutcome::StoreRelease { addr }
            }
        }
    }

    fn fork(&self) -> Box<dyn AssistController + Send> {
        let mut c = CabaController::new(self.mode);
        c.paranoid = self.paranoid;
        c.decompress_priority = self.decompress_priority;
        Box::new(c)
    }

    fn extra_regs_per_thread(&self) -> u32 {
        // The widest subroutine uses registers r0..r8 (§3.2.2: the enabled
        // routines' requirement is added to the per-block allocation).
        9
    }

    fn snap_save(&self, w: &mut SnapshotWriter) {
        // `mode`/`paranoid`/`decompress_priority` come from the design the
        // restoring GPU was built with, and the assist-warp store is a pure
        // program memoization — only per-run state is serialized, with both
        // maps in sorted key order for byte-stable output.
        let mut tags: Vec<u64> = self.inflight.keys().copied().collect();
        tags.sort_unstable();
        w.usize(tags.len());
        for tag in tags {
            w.u64(tag);
            save_inflight(&self.inflight[&tag], w);
        }
        // A pool absent from `free_slots` is *not* an empty pool: the lazy
        // `alloc_slot` initializer refills an absent entry, so presence is
        // state. Vec order is preserved (slots are popped from the end).
        let mut sms: Vec<usize> = self.free_slots.keys().copied().collect();
        sms.sort_unstable();
        w.usize(sms.len());
        for sm in sms {
            let pool = &self.free_slots[&sm];
            w.usize(sm);
            w.usize(pool.len());
            for &slot in pool {
                w.u64(slot);
            }
        }
        w.u64(self.next_tag);
        w.u64(self.stats.decompressions);
        w.u64(self.stats.compressions);
        w.u64(self.stats.compression_failures);
        w.u64(self.stats.slot_fallbacks);
        w.u64(self.stats.stale_recompressions);
    }

    fn snap_load(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapError> {
        self.inflight.clear();
        let n = r.seq_len("CABA in-flight operations", 17)?;
        for _ in 0..n {
            let tag = r.u64()?;
            self.inflight.insert(tag, load_inflight(r)?);
        }
        self.free_slots.clear();
        let pools = r.seq_len("CABA slot pools", 16)?;
        for _ in 0..pools {
            let sm = r.usize()?;
            let len = r.seq_len("CABA slot pool", 8)?;
            if len > SLOTS_PER_SM as usize {
                return Err(SnapError::Invariant {
                    what: "slot pool exceeds SLOTS_PER_SM",
                });
            }
            let mut pool = Vec::with_capacity(len);
            for _ in 0..len {
                pool.push(r.u64()?);
            }
            self.free_slots.insert(sm, pool);
        }
        self.next_tag = r.u64()?;
        self.stats = CabaStats {
            decompressions: r.u64()?,
            compressions: r.u64()?,
            compression_failures: r.u64()?,
            slot_fallbacks: r.u64()?,
            stale_recompressions: r.u64()?,
        };
        Ok(())
    }

    fn subroutine_programs(&self) -> Vec<Arc<Program>> {
        // The subroutine key space is finite; a fresh store generates the
        // identical (content-hash-equal) programs the live per-SM stores
        // memoized.
        let mut aws = AssistWarpStore::new();
        let mut out = Vec::new();
        for enc in BdiEncoding::ALL {
            out.push(aws.get(SubroutineKey::BdiDecompress(enc)));
        }
        for enc in crate::subroutines::CABA_COMPRESS_ENCODINGS {
            out.push(aws.get(SubroutineKey::BdiCompress(enc)));
        }
        for alg in [Algorithm::Fpc, Algorithm::CPack] {
            out.push(aws.get(SubroutineKey::SerialDecompress(alg)));
            out.push(aws.get(SubroutineKey::SerialCompress(alg)));
        }
        out
    }
}

fn alg_tag(a: Algorithm) -> u8 {
    match a {
        Algorithm::Bdi => 0,
        Algorithm::Fpc => 1,
        Algorithm::CPack => 2,
    }
}

fn alg_from_tag(tag: u8) -> Result<Algorithm, SnapError> {
    match tag {
        0 => Ok(Algorithm::Bdi),
        1 => Ok(Algorithm::Fpc),
        2 => Ok(Algorithm::CPack),
        tag => Err(SnapError::BadTag {
            what: "compression algorithm",
            tag: tag.into(),
        }),
    }
}

fn save_inflight(e: &Inflight, w: &mut SnapshotWriter) {
    match e {
        Inflight::BdiDecompress {
            addr,
            slot,
            expected,
        } => {
            w.u8(0);
            w.u64(*addr);
            w.u64(*slot);
            w.bytes(expected);
        }
        Inflight::SerialDecompress { addr, slot } => {
            w.u8(1);
            w.u64(*addr);
            w.u64(*slot);
        }
        Inflight::BdiCompress {
            addr,
            slot,
            enc,
            snapshot,
        } => {
            w.u8(2);
            w.u64(*addr);
            w.u64(*slot);
            w.u8(enc.id());
            w.bytes(snapshot);
        }
        Inflight::SerialCompress {
            addr,
            slot,
            alg,
            snapshot,
        } => {
            w.u8(3);
            w.u64(*addr);
            w.u64(*slot);
            w.u8(alg_tag(*alg));
            w.bytes(snapshot);
        }
    }
}

fn load_inflight(r: &mut SnapshotReader<'_>) -> Result<Inflight, SnapError> {
    Ok(match r.u8()? {
        0 => Inflight::BdiDecompress {
            addr: r.u64()?,
            slot: r.u64()?,
            expected: r.bytes()?.to_vec(),
        },
        1 => Inflight::SerialDecompress {
            addr: r.u64()?,
            slot: r.u64()?,
        },
        2 => Inflight::BdiCompress {
            addr: r.u64()?,
            slot: r.u64()?,
            enc: {
                let id = r.u8()?;
                BdiEncoding::from_id(id).ok_or(SnapError::BadTag {
                    what: "BDI encoding",
                    tag: id.into(),
                })?
            },
            snapshot: r.bytes()?.to_vec(),
        },
        3 => Inflight::SerialCompress {
            addr: r.u64()?,
            slot: r.u64()?,
            alg: alg_from_tag(r.u8()?)?,
            snapshot: r.bytes()?.to_vec(),
        },
        tag => {
            return Err(SnapError::BadTag {
                what: "in-flight CABA operation",
                tag: tag.into(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_modes() {
        assert_eq!(CabaController::bdi().mode(), CabaMode::Bdi);
        assert_eq!(CabaController::fpc().mode(), CabaMode::Fpc);
        assert_eq!(CabaController::cpack().mode(), CabaMode::CPack);
        assert_eq!(CabaController::best_of_all().mode(), CabaMode::BestOfAll);
        assert_eq!(CabaController::bdi().algorithm(), Some(Algorithm::Bdi));
        assert_eq!(CabaController::best_of_all().algorithm(), None);
        assert!(matches!(
            CabaController::best_of_all().selector(),
            LineCompressor::BestOfAll
        ));
        assert!(CabaController::bdi().extra_regs_per_thread() > 0);
    }

    #[test]
    fn pick_encoding_prefers_smallest() {
        // All zeros: Zeros encoding.
        let zeros = vec![0u8; LINE_SIZE];
        assert_eq!(CabaController::pick_encoding(&zeros), BdiEncoding::Zeros);
        // Small 4-byte values: B4D1 beats B8 variants.
        let mut line = Vec::new();
        for i in 0..32u32 {
            line.extend_from_slice(&(0x40 + i).to_le_bytes());
        }
        let enc = CabaController::pick_encoding(&line);
        let bdi = Bdi::new();
        let chosen = bdi.compress_with(&line, enc).unwrap().size_bytes();
        for e in crate::subroutines::CABA_COMPRESS_ENCODINGS {
            if let Some(c) = bdi.compress_with(&line, e) {
                assert!(chosen <= c.size_bytes());
            }
        }
        // Incompressible: falls back to a test that will fail.
        let mut junk = Vec::new();
        let mut x = 3u64;
        while junk.len() < LINE_SIZE {
            x = x.wrapping_mul(0x5851F42D4C957F2D).wrapping_add(0x14);
            junk.extend_from_slice(&x.to_le_bytes());
        }
        assert_eq!(CabaController::pick_encoding(&junk), BdiEncoding::B4D1);
    }

    #[test]
    fn slot_allocation_is_per_sm() {
        let mut c = CabaController::bdi();
        let a = c.alloc_slot(0, 0x1000).unwrap();
        let b = c.alloc_slot(1, 0x2000).unwrap();
        assert_ne!(a, b);
        c.free_slot(0, a);
        // Exhausting SM 0's slots succeeds exactly SLOTS_PER_SM times.
        let mut n = 0;
        while c.alloc_slot(0, 0x1000).is_some() {
            n += 1;
            if n > 1000 {
                break;
            }
        }
        assert_eq!(n, SLOTS_PER_SM);
    }

    #[test]
    fn controller_snapshot_round_trips_byte_identically() {
        let mut c = CabaController::bdi();
        // Drive real allocator/tag state plus one of each in-flight shape.
        let s0 = c.alloc_slot(0, 0x1000).unwrap();
        let s1 = c.alloc_slot(2, 0x3000).unwrap();
        let t0 = c.take_tag();
        let t1 = c.take_tag();
        c.inflight.insert(
            t0,
            Inflight::BdiDecompress {
                addr: 0x8000,
                slot: s0,
                expected: vec![7u8; LINE_SIZE],
            },
        );
        c.inflight.insert(
            t1,
            Inflight::BdiCompress {
                addr: 0x8040,
                slot: s1,
                enc: BdiEncoding::B8D2,
                snapshot: vec![3u8; LINE_SIZE],
            },
        );
        let t2 = c.take_tag();
        c.inflight.insert(
            t2,
            Inflight::SerialCompress {
                addr: 0x8080,
                slot: 0x42,
                alg: Algorithm::CPack,
                snapshot: vec![9u8; LINE_SIZE],
            },
        );
        let t3 = c.take_tag();
        c.inflight.insert(
            t3,
            Inflight::SerialDecompress {
                addr: 0x80C0,
                slot: 0x43,
            },
        );
        c.stats.compressions = 11;
        c.stats.slot_fallbacks = 2;

        let mut w = SnapshotWriter::new();
        c.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = CabaController::bdi();
        let mut r = SnapshotReader::new(&bytes);
        fresh.snap_load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.next_tag, c.next_tag);
        assert_eq!(fresh.stats, c.stats);
        assert_eq!(fresh.free_slots, c.free_slots);

        let mut w2 = SnapshotWriter::new();
        fresh.snap_save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "re-save must be byte-identical");
    }

    #[test]
    fn subroutine_table_covers_every_launchable_program() {
        let c = CabaController::best_of_all();
        let programs = c.subroutine_programs();
        // 8 BDI decompressors + 7 BDI compressors + 2 serial pairs.
        assert_eq!(programs.len(), 8 + 7 + 4);
        // A hash either names one program or several content-identical
        // ones — restore-by-hash can never resolve to the wrong bytes.
        let mut by_hash: HashMap<u64, String> = HashMap::new();
        for p in &programs {
            let rendered = format!("{p:?}");
            match by_hash.entry(p.content_hash()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    assert_eq!(e.get(), &rendered, "hash collision on distinct programs")
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(rendered);
                }
            }
        }
    }

    #[test]
    fn corrupt_controller_snapshot_is_rejected() {
        let mut w = SnapshotWriter::new();
        CabaController::bdi().snap_save(&mut w);
        let mut bytes = w.into_bytes();
        bytes[0] ^= 0x40; // absurd in-flight count
        let mut fresh = CabaController::bdi();
        let mut r = SnapshotReader::new(&bytes);
        assert!(fresh.snap_load(&mut r).is_err());
    }
}
