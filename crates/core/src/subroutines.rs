//! Assist-warp subroutine generators and the Assist Warp Store (§3.3, §4.1).
//!
//! # Staging-slot layout
//!
//! Each in-flight assist warp owns one 512-byte staging slot inside its SM's
//! staging region (modelling the compressed line resident in L1 plus the
//! live-in/live-out communication area):
//!
//! ```text
//! +0    header word   (compression: 1 = success, 0 = encoding failed)
//! +8    payload       (mask bytes, base, deltas — same layout as
//!                      `caba_compress::bdi`)
//! +256  scratch       (base-election slot for compression)
//! ```
//!
//! Decompression live-ins: `r0` = payload address, `r1` = line address.
//! Compression live-ins: `r0` = line address, `r1` = slot address.

use caba_compress::bdi::BdiEncoding;
use caba_compress::Algorithm;
use caba_isa::{
    AluOp, CmpOp, PBoolOp, Pred, Program, ProgramBuilder, Reg, Space, Special, Src, Width,
};
use caba_mem::LINE_SIZE;
use std::collections::HashMap;
use std::sync::Arc;

/// Byte offset of the header word within a staging slot.
pub const HDR_OFF: i64 = 0;
/// Byte offset of the payload within a staging slot.
pub const PAYLOAD_OFF: i64 = 8;
/// Byte offset of the scratch area within a staging slot.
pub const SCRATCH_OFF: i64 = 256;
/// Size of one staging slot.
pub const SLOT_SIZE: u64 = 512;

const R0: Reg = Reg(0);
const R1: Reg = Reg(1);

fn width_for(bytes: usize) -> Width {
    Width::from_bytes(bytes as u64).expect("mask/base widths are 1/2/4/8")
}

fn mask_len(n: usize) -> usize {
    n.div_ceil(8)
}

/// Active mask for a subroutine that needs `lanes` lanes.
pub fn active_mask_for(lanes: usize) -> u32 {
    if lanes >= 32 {
        u32::MAX
    } else {
        (1u32 << lanes) - 1
    }
}

/// Emits `dst = sign_extend(dst, bits)` (shift-left then arithmetic
/// shift-right).
fn sign_extend(b: &mut ProgramBuilder, dst: Reg, bits: usize) {
    if bits >= 64 {
        return;
    }
    let sh = 64 - bits as u64;
    b.alu(AluOp::Shl, dst, Src::Reg(dst), Src::Imm(sh));
    b.alu(AluOp::Sar, dst, Src::Reg(dst), Src::Imm(sh));
}

/// Number of lanes the decompression/compression subroutine for `enc`
/// activates.
pub fn lanes_for(enc: BdiEncoding) -> usize {
    match enc.sizes() {
        Some((vs, _)) => (LINE_SIZE / vs).min(32),
        None => match enc {
            BdiEncoding::Zeros => 32,
            BdiEncoding::Rep8 => LINE_SIZE / 8,
            _ => 32,
        },
    }
}

/// Generates the BDI **decompression** subroutine for `enc` (§4.1.2): load
/// the payload words, add deltas to the appropriate base in parallel on the
/// wide ALU pipeline, and write the uncompressed line back — "decompression
/// is simply a masked vector addition of the deltas to the appropriate
/// bases".
pub fn bdi_decompress(enc: BdiEncoding) -> Program {
    let mut b = ProgramBuilder::new();
    let (rm, rb, rd, rt, rv, ra) = (Reg(2), Reg(3), Reg(4), Reg(5), Reg(6), Reg(7));
    match enc {
        BdiEncoding::Zeros => {
            b.movi(rv, 0);
            b.st_packed(4, Src::Reg(rv), Src::Reg(R1));
            b.exit();
        }
        BdiEncoding::Rep8 => {
            // 16 lanes; each stores the 8-byte repeated value.
            b.ld(Space::Global, Width::B8, rb, Src::Reg(R0), 0);
            b.st_packed(8, Src::Reg(rb), Src::Reg(R1));
            b.exit();
        }
        _ => {
            let (vs, ds) = enc.sizes().expect("base-delta encoding");
            let n = LINE_SIZE / vs;
            let ml = mask_len(n);
            // Whole base-select mask broadcast to every lane.
            b.ld(Space::Global, width_for(ml), rm, Src::Reg(R0), 0);
            // Explicit base.
            b.ld(Space::Global, width_for(vs), rb, Src::Reg(R0), ml as i64);
            let passes = n.div_ceil(32);
            for pass in 0..passes {
                let lane0_value = pass * 32;
                // Deltas for this pass.
                b.alu(
                    AluOp::Add,
                    ra,
                    Src::Reg(R0),
                    Src::Imm((ml + vs + lane0_value * ds) as u64),
                );
                b.ld_packed(ds as u8, rd, Src::Reg(ra));
                sign_extend(&mut b, rd, ds * 8);
                // Mask bit for value index `lane0_value + lane`.
                if lane0_value > 0 {
                    b.alu(AluOp::Shr, rt, Src::Reg(rm), Src::Imm(lane0_value as u64));
                    b.alu(AluOp::Shr, rt, Src::Reg(rt), Src::Sp(Special::Lane));
                } else {
                    b.alu(AluOp::Shr, rt, Src::Reg(rm), Src::Sp(Special::Lane));
                }
                b.alu(AluOp::And, rt, Src::Reg(rt), Src::Imm(1));
                b.setp(Pred(0), CmpOp::Eq, Src::Reg(rt), Src::Imm(1));
                // value = bit ? delta : base + delta (implicit-zero lanes
                // skip the addition via the select — the "active lane mask
                // update" of §4.1.2).
                b.alu(AluOp::Add, rv, Src::Reg(rb), Src::Reg(rd));
                b.selp(rv, Src::Reg(rd), Src::Reg(rv), Pred(0));
                b.alu(
                    AluOp::Add,
                    ra,
                    Src::Reg(R1),
                    Src::Imm((lane0_value * vs) as u64),
                );
                b.st_packed(vs as u8, Src::Reg(rv), Src::Reg(ra));
            }
            b.exit();
        }
    }
    b.build()
}

/// BDI encodings whose **compression** subroutine is generated (§4.1.3: "we
/// exploit this to reduce the number of supported encodings"; one-pass
/// encodings keep the subroutine at warp width).
pub const CABA_COMPRESS_ENCODINGS: [BdiEncoding; 7] = [
    BdiEncoding::Zeros,
    BdiEncoding::Rep8,
    BdiEncoding::B8D1,
    BdiEncoding::B4D1,
    BdiEncoding::B8D2,
    BdiEncoding::B4D2,
    BdiEncoding::B8D4,
];

/// Generates the BDI **compression** subroutine for `enc` (§4.1.2): test the
/// encoding against every value in parallel, AND the per-lane success
/// predicates through the warp-wide vote (the "global predicate register"),
/// and emit the payload on success.
pub fn bdi_compress(enc: BdiEncoding) -> Program {
    let mut b = ProgramBuilder::new();
    let (rv, rs, rt, rb, rdb, rmask, ra) = (Reg(2), Reg(3), Reg(4), Reg(5), Reg(6), Reg(7), Reg(8));
    let (p_fit0, p_fitb, p_ok, p_sel) = (Pred(0), Pred(1), Pred(2), Pred(3));

    let store_header = |b: &mut ProgramBuilder, rt: Reg| {
        b.setp(p_sel, CmpOp::Eq, Src::Sp(Special::Lane), Src::Imm(0));
        b.push(caba_isa::Instr::guarded(
            caba_isa::Op::St {
                space: Space::Global,
                width: Width::B4,
                src: Src::Reg(rt),
                addr: Src::Reg(R1),
                offset: HDR_OFF,
            },
            p_sel,
            true,
        ));
    };

    match enc {
        BdiEncoding::Zeros => {
            b.ld_packed(4, rv, Src::Reg(R0));
            b.setp(p_ok, CmpOp::Eq, Src::Reg(rv), Src::Imm(0));
            b.vote_all(p_ok, p_ok);
            b.selp(rt, Src::Imm(1), Src::Imm(0), p_ok);
            store_header(&mut b, rt);
            b.exit();
        }
        BdiEncoding::Rep8 => {
            b.ld_packed(8, rv, Src::Reg(R0));
            // Broadcast lane 0's value through the scratch slot.
            b.setp(p_sel, CmpOp::Eq, Src::Sp(Special::Lane), Src::Imm(0));
            b.push(caba_isa::Instr::guarded(
                caba_isa::Op::St {
                    space: Space::Global,
                    width: Width::B8,
                    src: Src::Reg(rv),
                    addr: Src::Reg(R1),
                    offset: SCRATCH_OFF,
                },
                p_sel,
                true,
            ));
            b.ld(Space::Global, Width::B8, rb, Src::Reg(R1), SCRATCH_OFF);
            b.setp(p_ok, CmpOp::Eq, Src::Reg(rv), Src::Reg(rb));
            b.vote_all(p_ok, p_ok);
            b.selp(rt, Src::Imm(1), Src::Imm(0), p_ok);
            store_header(&mut b, rt);
            // Payload: the repeated value.
            b.setp(p_sel, CmpOp::Eq, Src::Sp(Special::Lane), Src::Imm(0));
            b.push(caba_isa::Instr::guarded(
                caba_isa::Op::St {
                    space: Space::Global,
                    width: Width::B8,
                    src: Src::Reg(rb),
                    addr: Src::Reg(R1),
                    offset: PAYLOAD_OFF,
                },
                p_sel,
                true,
            ));
            b.exit();
        }
        _ => {
            let (vs, ds) = enc.sizes().expect("base-delta encoding");
            let n = LINE_SIZE / vs;
            assert!(n <= 32, "compression subroutines are single-pass");
            let ml = mask_len(n);
            let half = 1u64 << (ds * 8 - 1);
            let full = 1u64 << (ds * 8);

            // Load and sign-extend the values.
            b.ld_packed(vs as u8, rv, Src::Reg(R0));
            b.mov(rs, Src::Reg(rv));
            sign_extend(&mut b, rs, vs * 8);
            // fits-zero-base test: -2^(8d-1) <= s < 2^(8d-1).
            b.alu(AluOp::Add, rt, Src::Reg(rs), Src::Imm(half));
            b.setp(p_fit0, CmpOp::LtU, Src::Reg(rt), Src::Imm(full));
            // Elect the first lane that does NOT fit the zero base; its
            // value becomes the explicit base ("the first few bytes are
            // used as the base").
            b.pbool(p_ok, PBoolOp::Not, p_fit0, p_fit0);
            b.setp(p_sel, CmpOp::Eq, Src::Sp(Special::Lane), Src::Imm(0));
            b.push(caba_isa::Instr::guarded(
                caba_isa::Op::St {
                    space: Space::Global,
                    width: Width::B8,
                    src: Src::Imm(0),
                    addr: Src::Reg(R1),
                    offset: SCRATCH_OFF,
                },
                p_sel,
                true,
            ));
            b.find_first(p_sel, p_ok);
            b.push(caba_isa::Instr::guarded(
                caba_isa::Op::St {
                    space: Space::Global,
                    width: Width::B8,
                    src: Src::Reg(rv),
                    addr: Src::Reg(R1),
                    offset: SCRATCH_OFF,
                },
                p_sel,
                true,
            ));
            b.ld(Space::Global, Width::B8, rb, Src::Reg(R1), SCRATCH_OFF);
            // Delta against the explicit base (wrapped to vs bytes, then
            // sign-extended).
            b.alu(AluOp::Sub, rdb, Src::Reg(rv), Src::Reg(rb));
            sign_extend(&mut b, rdb, vs * 8);
            b.alu(AluOp::Add, rt, Src::Reg(rdb), Src::Imm(half));
            b.setp(p_fitb, CmpOp::LtU, Src::Reg(rt), Src::Imm(full));
            // Global predicate: every lane fits one of the bases.
            b.pbool(p_ok, PBoolOp::Or, p_fit0, p_fitb);
            b.vote_all(p_ok, p_ok);
            // Header.
            b.selp(rt, Src::Imm(1), Src::Imm(0), p_ok);
            store_header(&mut b, rt);
            // Payload: ballot mask, base, packed deltas.
            b.ballot(rmask, p_fit0);
            b.setp(p_sel, CmpOp::Eq, Src::Sp(Special::Lane), Src::Imm(0));
            b.push(caba_isa::Instr::guarded(
                caba_isa::Op::St {
                    space: Space::Global,
                    width: width_for(ml),
                    src: Src::Reg(rmask),
                    addr: Src::Reg(R1),
                    offset: PAYLOAD_OFF,
                },
                p_sel,
                true,
            ));
            b.push(caba_isa::Instr::guarded(
                caba_isa::Op::St {
                    space: Space::Global,
                    width: width_for(vs),
                    src: Src::Reg(rb),
                    addr: Src::Reg(R1),
                    offset: PAYLOAD_OFF + ml as i64,
                },
                p_sel,
                true,
            ));
            b.selp(rt, Src::Reg(rs), Src::Reg(rdb), p_fit0);
            b.alu(
                AluOp::Add,
                ra,
                Src::Reg(R1),
                Src::Imm((PAYLOAD_OFF + ml as i64 + vs as i64) as u64),
            );
            b.st_packed(ds as u8, Src::Reg(rt), Src::Reg(ra));
            b.exit();
        }
    }
    b.build()
}

/// Generates a timing-representative subroutine for the serial FPC/C-Pack
/// algorithms (§4.1.3): a packed load of the line words followed by a
/// dependence chain whose length models the partially-serial pattern
/// matching. The functional result is supplied by the reference
/// implementation; only the pipeline/issue footprint is exercised.
pub fn serial_subroutine(alg: Algorithm, decompress: bool) -> Program {
    // Chain lengths calibrated against §6.3: C-Pack's dictionary probes
    // parallelize better than FPC's per-word prefix decode (the paper's
    // C-Pack gains exceed FPC's despite C-Pack's higher dedicated-logic
    // latency), and both stay costlier than BDI's masked vector add.
    let chain = match (alg, decompress) {
        (Algorithm::Fpc, true) => 7,
        (Algorithm::Fpc, false) => 9,
        (Algorithm::CPack, true) => 5,
        (Algorithm::CPack, false) => 7,
        (Algorithm::Bdi, _) => 4,
    };
    let mut b = ProgramBuilder::new();
    let (rv, ra) = (Reg(2), Reg(3));
    b.ld_packed(4, rv, Src::Reg(R0));
    b.movi(ra, 0);
    for _ in 0..chain {
        // Dependent chain: each op waits for the previous writeback,
        // modelling the serial prefix/dictionary scan.
        b.alu(AluOp::Add, ra, Src::Reg(ra), Src::Reg(rv));
        b.alu(AluOp::Xor, ra, Src::Reg(ra), Src::Imm(0x9E37_79B9));
    }
    b.exit();
    b.build()
}

/// Keys identifying subroutines in the [`AssistWarpStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubroutineKey {
    /// BDI decompression for one encoding.
    BdiDecompress(BdiEncoding),
    /// BDI compression test/emit for one encoding.
    BdiCompress(BdiEncoding),
    /// Serial-algorithm decompression (timing representative).
    SerialDecompress(Algorithm),
    /// Serial-algorithm compression (timing representative).
    SerialCompress(Algorithm),
}

/// The Assist Warp Store: subroutines are generated once ("preloaded before
/// application execution", §3.3) and indexed by subroutine id — here a
/// typed key instead of a raw SR.ID.
#[derive(Debug, Default)]
pub struct AssistWarpStore {
    programs: HashMap<SubroutineKey, Arc<Program>>,
}

impl AssistWarpStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches (generating on first use) the subroutine for `key`.
    pub fn get(&mut self, key: SubroutineKey) -> Arc<Program> {
        self.programs
            .entry(key)
            .or_insert_with(|| {
                Arc::new(match key {
                    SubroutineKey::BdiDecompress(e) => bdi_decompress(e),
                    SubroutineKey::BdiCompress(e) => bdi_compress(e),
                    SubroutineKey::SerialDecompress(a) => serial_subroutine(a, true),
                    SubroutineKey::SerialCompress(a) => serial_subroutine(a, false),
                })
            })
            .clone()
    }

    /// Number of distinct subroutines resident.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True when no subroutine has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Total instructions across resident subroutines (the AWS footprint).
    pub fn total_instructions(&self) -> usize {
        self.programs.values().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompress_programs_are_small() {
        // The paper's premise: decompression maps to a handful of
        // instructions on the wide pipeline.
        for enc in BdiEncoding::ALL {
            let p = bdi_decompress(enc);
            assert!(p.len() >= 2, "{enc:?}");
            assert!(p.len() <= 30, "{enc:?}: {} instructions", p.len());
        }
    }

    #[test]
    fn compress_programs_generate() {
        for enc in CABA_COMPRESS_ENCODINGS {
            let p = bdi_compress(enc);
            assert!(p.len() >= 4, "{enc:?}");
            assert!(p.len() <= 40, "{enc:?}");
        }
    }

    #[test]
    #[should_panic(expected = "single-pass")]
    fn b2d1_compression_is_rejected() {
        let _ = bdi_compress(BdiEncoding::B2D1);
    }

    #[test]
    fn lanes_and_masks() {
        assert_eq!(lanes_for(BdiEncoding::B8D1), 16);
        assert_eq!(lanes_for(BdiEncoding::B4D1), 32);
        assert_eq!(lanes_for(BdiEncoding::B2D1), 32);
        assert_eq!(lanes_for(BdiEncoding::Zeros), 32);
        assert_eq!(lanes_for(BdiEncoding::Rep8), 16);
        assert_eq!(active_mask_for(16), 0xFFFF);
        assert_eq!(active_mask_for(32), u32::MAX);
    }

    #[test]
    fn store_caches_programs() {
        let mut aws = AssistWarpStore::new();
        assert!(aws.is_empty());
        let a = aws.get(SubroutineKey::BdiDecompress(BdiEncoding::B8D1));
        let b = aws.get(SubroutineKey::BdiDecompress(BdiEncoding::B8D1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(aws.len(), 1);
        let _ = aws.get(SubroutineKey::SerialCompress(Algorithm::CPack));
        assert_eq!(aws.len(), 2);
        assert!(aws.total_instructions() > 0);
    }

    #[test]
    fn serial_subroutines_scale_with_algorithm() {
        let fpc_d = serial_subroutine(Algorithm::Fpc, true);
        let fpc_c = serial_subroutine(Algorithm::Fpc, false);
        let cp_d = serial_subroutine(Algorithm::CPack, true);
        let cp_c = serial_subroutine(Algorithm::CPack, false);
        // Compression always costs more than decompression, and FPC's
        // serial prefix decode costs more than C-Pack's dictionary probe.
        assert!(fpc_c.len() > fpc_d.len());
        assert!(cp_c.len() > cp_d.len());
        assert!(fpc_d.len() > cp_d.len());
    }
}
