//! Memoization with assist warps (§7.1) — trading computation for storage.
//!
//! The paper sketches the use of CABA to cache the results of redundant
//! computations in a look-up table held in on-chip (shared) memory: an
//! assist warp (1) hashes the computation's inputs, (2) probes the LUT
//! through the load/store pipeline, and (3) on a hit skips the computation
//! entirely. Applications tolerant of approximate results hash *quantized*
//! inputs to increase reuse.
//!
//! This module models that mechanism: a capacity-bounded FIFO LUT with
//! optional input quantization and a cycle cost model (LUT probe vs. the
//! computation it replaces).
//!
//! # Examples
//!
//! ```
//! use caba_core::memoize::{MemoConfig, MemoTable};
//! let mut t = MemoTable::new(MemoConfig::default());
//! let mut evals = 0;
//! for _ in 0..3 {
//!     t.lookup_or_compute(&[42], |_| { evals += 1; 99 });
//! }
//! assert_eq!(evals, 1); // two hits
//! ```

use std::collections::{HashMap, VecDeque};

/// Memoization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoConfig {
    /// LUT entries (bounded by available shared memory; a 32 KB scratchpad
    /// holds 2K 16-byte entries).
    pub capacity: usize,
    /// Low bits dropped from each input before hashing — the approximate
    /// matching of §7.1 (0 = exact matching).
    pub quantize_bits: u32,
    /// Cycles for the assist warp to hash inputs and probe the LUT (shared
    /// memory latency dominates).
    pub lookup_cycles: u64,
    /// Cycles to insert a result.
    pub insert_cycles: u64,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            capacity: 2048,
            quantize_bits: 0,
            lookup_cycles: 30,
            insert_cycles: 30,
        }
    }
}

/// A capacity-bounded memoization table (FIFO replacement).
#[derive(Debug)]
pub struct MemoTable {
    cfg: MemoConfig,
    map: HashMap<u64, u64>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
}

impl MemoTable {
    /// Creates an empty table.
    pub fn new(cfg: MemoConfig) -> Self {
        MemoTable {
            cfg,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> MemoConfig {
        self.cfg
    }

    /// Hashes (possibly quantized) inputs into a LUT key.
    pub fn key(&self, inputs: &[u64]) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &x in inputs {
            let q = if self.cfg.quantize_bits >= 64 {
                0
            } else {
                x >> self.cfg.quantize_bits
            };
            h ^= q;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }

    /// Probes the LUT; on a miss, runs `compute` and inserts its result.
    /// Returns the (possibly cached) result.
    pub fn lookup_or_compute<F: FnOnce(&[u64]) -> u64>(
        &mut self,
        inputs: &[u64],
        compute: F,
    ) -> u64 {
        let k = self.key(inputs);
        if let Some(&v) = self.map.get(&k) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        let v = compute(inputs);
        if self.map.len() >= self.cfg.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        if self.map.insert(k, v).is_none() {
            self.order.push_back(k);
        }
        v
    }

    /// LUT hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// LUT misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Outcome of evaluating memoization over an input trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoReport {
    /// Cycles without memoization (`evaluations × compute_cycles`).
    pub baseline_cycles: u64,
    /// Cycles with memoization (probes + misses' compute + inserts).
    pub memo_cycles: u64,
    /// LUT hit rate.
    pub hit_rate: f64,
    /// Computations eliminated.
    pub eliminated: u64,
}

impl MemoReport {
    /// Speedup of the memoized computation stream.
    pub fn speedup(&self) -> f64 {
        if self.memo_cycles == 0 {
            1.0
        } else {
            self.baseline_cycles as f64 / self.memo_cycles as f64
        }
    }
}

/// Evaluates assist-warp memoization over `trace` (one input tuple per
/// computation) where each computation costs `compute_cycles`.
pub fn evaluate<F: FnMut(&[u64]) -> u64>(
    cfg: MemoConfig,
    compute_cycles: u64,
    trace: &[Vec<u64>],
    mut f: F,
) -> MemoReport {
    let mut table = MemoTable::new(cfg);
    let mut memo_cycles = 0u64;
    let mut eliminated = 0u64;
    for inputs in trace {
        memo_cycles += cfg.lookup_cycles;
        let before = table.misses();
        table.lookup_or_compute(inputs, |i| f(i));
        if table.misses() == before {
            eliminated += 1;
        } else {
            memo_cycles += compute_cycles + cfg.insert_cycles;
        }
    }
    MemoReport {
        baseline_cycles: trace.len() as u64 * compute_cycles,
        memo_cycles,
        hit_rate: table.hit_rate(),
        eliminated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caba_stats::Rng64;

    #[test]
    fn exact_reuse_hits() {
        let mut t = MemoTable::new(MemoConfig::default());
        let mut calls = 0;
        for _ in 0..10 {
            let v = t.lookup_or_compute(&[7, 8], |_| {
                calls += 1;
                15
            });
            assert_eq!(v, 15);
        }
        assert_eq!(calls, 1);
        assert_eq!(t.hits(), 9);
        assert_eq!(t.misses(), 1);
        assert!(t.hit_rate() > 0.89);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn quantization_increases_reuse() {
        let exact = MemoConfig {
            quantize_bits: 0,
            ..MemoConfig::default()
        };
        let approx = MemoConfig {
            quantize_bits: 4,
            ..MemoConfig::default()
        };
        // Inputs cluster around multiples of 64 with ±3 jitter.
        let mut rng = Rng64::new(11);
        let trace: Vec<Vec<u64>> = (0..2000)
            .map(|_| vec![rng.range(0, 32) * 64 + rng.range(0, 7)])
            .collect();
        let re = evaluate(exact, 200, &trace, |i| i[0] * 2);
        let ra = evaluate(approx, 200, &trace, |i| i[0] * 2);
        assert!(ra.hit_rate > re.hit_rate);
        assert!(ra.speedup() > 1.0);
        assert!(ra.eliminated > re.eliminated);
    }

    #[test]
    fn capacity_bounds_table() {
        let cfg = MemoConfig {
            capacity: 4,
            ..MemoConfig::default()
        };
        let mut t = MemoTable::new(cfg);
        for i in 0..100u64 {
            t.lookup_or_compute(&[i], |x| x[0]);
        }
        assert!(t.len() <= 4);
    }

    #[test]
    fn memoization_hurts_when_no_reuse() {
        // Unique inputs: every probe is pure overhead.
        let trace: Vec<Vec<u64>> = (0..500).map(|i| vec![i]).collect();
        let r = evaluate(MemoConfig::default(), 100, &trace, |i| i[0]);
        assert_eq!(r.eliminated, 0);
        assert!(r.speedup() < 1.0);
    }

    #[test]
    fn redundant_workload_approaches_probe_cost() {
        // 95% of computations repeat a small working set — the fragment-
        // shader-like redundancy [12] the paper cites.
        let mut rng = Rng64::new(5);
        let trace: Vec<Vec<u64>> = (0..5000)
            .map(|_| {
                if rng.chance(0.95) {
                    vec![rng.range(0, 16)]
                } else {
                    vec![rng.next_u64()]
                }
            })
            .collect();
        let r = evaluate(MemoConfig::default(), 500, &trace, |i| i[0].wrapping_mul(3));
        assert!(r.hit_rate > 0.8, "hit rate {}", r.hit_rate);
        assert!(r.speedup() > 3.0, "speedup {}", r.speedup());
    }
}
