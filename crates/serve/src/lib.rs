//! `caba-serve` — sweep-as-a-service: a long-running, dependency-free
//! simulation server over the redesigned `caba-sweep` cell API.
//!
//! The simulator is bit-deterministic for any worker count, and every
//! cell is keyed by [`CellSpec::content_hash`] — the same content key the
//! offline CLI's resume journal and durable store use. That makes result
//! caching trivially correct, and this crate exploits it end to end:
//!
//! - every `(app, design, bw, scale, config)` cell a request names is
//!   looked up in the attached [`Store`] first; **only cache misses
//!   simulate**, and every fresh result is persisted for the next
//!   process (the CLI and the server warm-start each other);
//! - concurrent identical requests coalesce onto one in-flight
//!   computation ([`Coalescer`]) — a thousand clients asking for Fig. 7
//!   cost one sweep plus 999 waits;
//! - figure tables stream per cell over chunked transfer-encoding, in
//!   input order, as each prefix completes — and the streamed bytes are
//!   exactly [`figure_table_line`], so the served table is byte-identical
//!   to `caba-sweep --table`'s offline output.
//!
//! # Endpoints
//!
//! | method | path | response |
//! |---|---|---|
//! | GET | `/healthz` | `{"ok": true}` |
//! | GET | `/stats` | request/cell/cache counters (JSON) |
//! | GET | `/figure/{fig}?scale=F&apps=A,B` | chunked TSV figure table |
//! | GET | `/cell/{app}/{design}/{bw}?scale=F` | one cell's summary (JSON) |
//! | GET | `/result/{key}` | raw store lookup by 16-hex-digit cell key |
//! | POST | `/shutdown` | `{"ok": true}`, then the server drains |
//!
//! Every non-2xx carries a typed JSON body `{"error", "message"}`. Store
//! faults during computation degrade to recomputing (results are never
//! affected); a store fault on the raw `/result` path is a typed 503.

pub mod http;

use caba_stats::json::fmt_f64 as json_f64;
use caba_store::{write_file_atomic, Store};
use caba_sweep::{
    decode_result_payload, encode_result_payload, figure_table_line, run_cell_resilient, CellSpec,
    DesignId, Figure, SweepCell, SweepConfig,
};
use http::{ChunkedWriter, Request};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ----- single-flight coalescing --------------------------------------------

/// Single-flight request coalescing: concurrent [`run`](Coalescer::run)
/// calls with the same key share one computation — the first caller (the
/// *leader*) computes, everyone else blocks on the flight and receives a
/// clone of the result. Once the leader finishes, the flight is retired:
/// a later call with the same key starts fresh (and will typically hit
/// the durable store instead).
pub struct Coalescer<T: Clone> {
    flights: Mutex<HashMap<u64, Arc<Flight<T>>>>,
}

struct Flight<T> {
    result: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T: Clone> Default for Coalescer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Coalescer<T> {
    /// An empty coalescer.
    pub fn new() -> Self {
        Coalescer {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` under single-flight discipline for `key`. Returns
    /// the value and whether *this* call led the flight (`false` means it
    /// coalesced onto another call's computation).
    pub fn run<F: FnOnce() -> T>(&self, key: u64, compute: F) -> (T, bool) {
        let (flight, leader) = {
            let mut map = self.flights.lock().expect("flights lock");
            match map.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        result: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    map.insert(key, Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leader {
            let value = compute();
            *flight.result.lock().expect("flight lock") = Some(value.clone());
            flight.cv.notify_all();
            self.flights.lock().expect("flights lock").remove(&key);
            (value, true)
        } else {
            let mut guard = flight.result.lock().expect("flight lock");
            while guard.is_none() {
                guard = flight.cv.wait(guard).expect("flight wait");
            }
            (guard.clone().expect("flight resolved"), false)
        }
    }
}

// ----- server ---------------------------------------------------------------

/// Server construction options.
pub struct ServeOptions {
    /// Sweep-wide options every request's cells share (scale is the
    /// *default*; requests may override it per query).
    pub sc: SweepConfig,
    /// Cell-level worker threads per figure request.
    pub jobs: usize,
    /// Durable result store; `None` serves compute-only (every request
    /// cold).
    pub store: Option<Store>,
    /// Where to persist `BENCH_serve.json` after each figure request.
    pub bench_out: Option<PathBuf>,
}

/// One completed figure request, recorded for `BENCH_serve.json`.
#[derive(Debug, Clone)]
struct BenchSample {
    fig: Figure,
    scale: f64,
    cells: usize,
    cached_cells: usize,
    wall_s: f64,
}

struct State {
    sc: SweepConfig,
    jobs: usize,
    store: Option<Store>,
    flights: Coalescer<CellValue>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    cells_computed: AtomicU64,
    store_warm_hits: AtomicU64,
    coalesced_waits: AtomicU64,
    bench_out: Option<PathBuf>,
    bench: Mutex<Vec<BenchSample>>,
}

/// The coalesced per-cell value: the result (stats + wall seconds) or a
/// failure message, plus whether it came out of the store.
type CellValue = (Result<(caba_sim::RunStats, f64), String>, bool);

/// A running sweep service. Dropping the handle does **not** stop the
/// server; call [`shutdown`](Server::shutdown) (or POST `/shutdown`) and
/// then [`join`](Server::join).
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop.
    pub fn start(addr: &str, opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let state = Arc::new(State {
            sc: opts.sc,
            jobs: opts.jobs.max(1),
            store: opts.store,
            flights: Coalescer::new(),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            cells_computed: AtomicU64::new(0),
            store_warm_hits: AtomicU64::new(0),
            coalesced_waits: AtomicU64::new(0),
            bench_out: opts.bench_out,
            bench: Mutex::new(Vec::new()),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !accept_state.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let st = Arc::clone(&accept_state);
                        handlers.push(std::thread::spawn(move || handle(&st, stream)));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        eprintln!("caba-serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
                handlers.retain(|h| !h.is_finished());
            }
            // Drain in-flight handlers before the listener drops.
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(Server {
            addr: local,
            state,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown (idempotent; also triggered by POST `/shutdown`).
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is requested, then joins the accept loop.
    pub fn join(mut self) {
        while !self.is_shutdown() {
            std::thread::sleep(Duration::from_millis(50));
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

// ----- request handling -----------------------------------------------------

fn handle(state: &Arc<State>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    let req = match Request::parse(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => {
            let _ = http::respond_error(&mut out, 400, "bad_request", "malformed HTTP request");
            return;
        }
        Err(_) => return, // transport error; nothing to answer on
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    let _ = route(state, &req, &mut out);
}

fn route(state: &Arc<State>, req: &Request, out: &mut TcpStream) -> io::Result<()> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => http::respond(out, 200, "application/json", b"{\"ok\": true}\n"),
        ("GET", ["stats"]) => stats_endpoint(state, out),
        ("GET", ["figure", fig]) => figure_endpoint(state, req, fig, out),
        ("GET", ["cell", app, design, bw]) => cell_endpoint(state, req, app, design, bw, out),
        ("GET", ["result", key]) => result_endpoint(state, key, out),
        ("POST", ["shutdown"]) => {
            state.shutdown.store(true, Ordering::SeqCst);
            http::respond(out, 200, "application/json", b"{\"ok\": true}\n")
        }
        // Known resources with the wrong method are 405, not 404.
        (_, ["healthz" | "stats" | "figure" | "cell" | "result", ..]) | (_, ["shutdown"]) => {
            http::respond_error(
                out,
                405,
                "method_not_allowed",
                &format!("{} is not supported here", req.method),
            )
        }
        _ => http::respond_error(out, 404, "not_found", &format!("no route for {}", req.path)),
    }
}

fn stats_endpoint(state: &State, out: &mut TcpStream) -> io::Result<()> {
    let (store_hits, store_misses) = match &state.store {
        Some(s) => (s.hit_count(), s.miss_count()),
        None => (0, 0),
    };
    let body = format!(
        "{{\n  \"schema\": \"caba-serve-stats-v1\",\n  \"requests\": {},\n  \
         \"cells_computed\": {},\n  \"store_warm_hits\": {},\n  \"coalesced_waits\": {},\n  \
         \"store_hits\": {store_hits},\n  \"store_misses\": {store_misses},\n  \
         \"store_attached\": {},\n  \"jobs\": {},\n  \"default_scale\": {}\n}}\n",
        state.requests.load(Ordering::Relaxed),
        state.cells_computed.load(Ordering::Relaxed),
        state.store_warm_hits.load(Ordering::Relaxed),
        state.coalesced_waits.load(Ordering::Relaxed),
        state.store.is_some(),
        state.jobs,
        json_f64(state.sc.scale),
    );
    http::respond(out, 200, "application/json", body.as_bytes())
}

/// Computes one cell under single-flight discipline with store
/// memoization: store hit → no simulation; miss → simulate (with panic
/// isolation and one retry) and persist. Returns the cell value plus
/// whether it was served from cache (store or coalesced flight).
fn compute_cell(state: &State, sc: &SweepConfig, cell: SweepCell) -> (CellValue, bool) {
    let spec = CellSpec::new(sc, cell);
    let key = spec.content_hash();
    let (value, led) = state.flights.run(key, || {
        if let Some(store) = &state.store {
            match store.get_result(key) {
                Ok(Some(payload)) => {
                    if let Some((stats, wall)) = decode_result_payload(&payload) {
                        state.store_warm_hits.fetch_add(1, Ordering::Relaxed);
                        return (Ok((stats, wall)), true);
                    }
                }
                Ok(None) => {}
                // A faulted read degrades to recompute; results are never
                // affected, only latency.
                Err(e) => eprintln!("caba-serve: store read for {key:016x} failed ({e})"),
            }
        }
        let outcome = run_cell_resilient(sc, cell, 1);
        match outcome.result {
            Ok((stats, wall)) => {
                state.cells_computed.fetch_add(1, Ordering::Relaxed);
                if let Some(store) = &state.store {
                    if let Err(e) =
                        store.put_result(key, &spec.label(), &encode_result_payload(&stats, wall))
                    {
                        eprintln!("caba-serve: store write for {key:016x} failed ({e})");
                    }
                }
                (Ok((stats, wall)), false)
            }
            Err(failure) => (
                Err(format!(
                    "{}: {}",
                    failure.class,
                    failure.errors.last().map(String::as_str).unwrap_or("?")
                )),
                false,
            ),
        }
    });
    if !led {
        state.coalesced_waits.fetch_add(1, Ordering::Relaxed);
    }
    let cached = value.1 || !led;
    (value, cached)
}

/// Parses the shared query options (`scale`, `apps`) into a sweep config
/// and an app filter.
fn request_sc(state: &State, req: &Request) -> Result<SweepConfig, String> {
    let mut sc = state.sc;
    if let Some(s) = req.query("scale") {
        sc.scale = s
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("invalid scale {s:?}"))?;
    }
    Ok(sc)
}

fn figure_endpoint(
    state: &Arc<State>,
    req: &Request,
    fig: &str,
    out: &mut TcpStream,
) -> io::Result<()> {
    let fig: Figure = match fig.parse() {
        Ok(f) => f,
        Err(e) => return http::respond_error(out, 400, "bad_request", &e.to_string()),
    };
    let sc = match request_sc(state, req) {
        Ok(sc) => sc,
        Err(msg) => return http::respond_error(out, 400, "bad_request", &msg),
    };
    let mut cells = fig.cells();
    if let Some(apps) = req.query("apps") {
        let filter: Vec<&str> = apps.split(',').map(str::trim).collect();
        for a in &filter {
            if caba_workloads::app(a).is_none() {
                return http::respond_error(out, 400, "bad_request", &format!("unknown app {a:?}"));
            }
        }
        cells.retain(|c| filter.contains(&c.app));
    }

    // From here on the 200 header is committed; a mid-stream cell failure
    // aborts the chunked stream without its terminal chunk, which clients
    // observe as truncation (http::fetch turns it into an error).
    let t0 = Instant::now();
    let mut writer = ChunkedWriter::begin(out.try_clone()?, "text/tab-separated-values")?;
    let cached_cells = AtomicUsize::new(0);

    // Work-stealing fan-out (the sweep executor's discipline): workers
    // claim cell indices, the handler streams completed slots in input
    // order — per-cell progress without ever reordering the table.
    let n = cells.len();
    let slots: Mutex<Vec<Option<CellValue>>> = Mutex::new(vec![None; n]);
    let ready = Condvar::new();
    let next = AtomicUsize::new(0);
    let jobs = state.jobs.clamp(1, n.max(1));
    let stream_result: io::Result<()> = std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (value, cached) = compute_cell(state, &sc, cells[i]);
                if cached {
                    cached_cells.fetch_add(1, Ordering::Relaxed);
                }
                let mut guard = slots.lock().expect("slots lock");
                guard[i] = Some(value);
                drop(guard);
                ready.notify_all();
            });
        }
        for i in 0..n {
            let value = {
                let mut guard = slots.lock().expect("slots lock");
                loop {
                    match guard[i].take() {
                        Some(v) => break v,
                        None => guard = ready.wait(guard).expect("slots wait"),
                    }
                }
            };
            match value.0 {
                Ok((stats, _wall)) => {
                    writer.chunk(figure_table_line(&cells[i], &stats).as_bytes())?;
                }
                Err(msg) => {
                    eprintln!(
                        "caba-serve: cell {}/{} failed mid-stream: {msg}",
                        cells[i].app,
                        cells[i].design.label()
                    );
                    // Abort: drop without the terminal chunk. Workers for
                    // later cells finish (scope joins them) but nothing
                    // more is streamed.
                    return Err(io::Error::other(msg));
                }
            }
        }
        Ok(())
    });
    stream_result?;
    writer.finish()?;

    record_bench(
        state,
        BenchSample {
            fig,
            scale: sc.scale,
            cells: n,
            cached_cells: cached_cells.load(Ordering::Relaxed),
            wall_s: t0.elapsed().as_secs_f64(),
        },
    );
    Ok(())
}

fn cell_endpoint(
    state: &Arc<State>,
    req: &Request,
    app: &str,
    design: &str,
    bw: &str,
    out: &mut TcpStream,
) -> io::Result<()> {
    let design: DesignId = match design.parse() {
        Ok(d) => d,
        Err(e) => return http::respond_error(out, 400, "bad_request", &e.to_string()),
    };
    let Ok(bw_scale) = bw.parse::<f64>() else {
        return http::respond_error(out, 400, "bad_request", &format!("invalid bw {bw:?}"));
    };
    let sc = match request_sc(state, req) {
        Ok(sc) => sc,
        Err(msg) => return http::respond_error(out, 400, "bad_request", &msg),
    };
    let Some(spec) = CellSpec::resolve(app, design, bw_scale, sc.scale, sc.cfg) else {
        return http::respond_error(out, 404, "not_found", &format!("unknown app {app:?}"));
    };
    let ((result, _), cached) = compute_cell(state, &sc, spec.cell());
    match result {
        Ok((stats, wall)) => {
            let body = format!(
                "{{\n  \"app\": \"{}\", \"design\": \"{}\", \"bw\": {}, \"scale\": {},\n  \
                 \"key\": \"{:016x}\", \"cached\": {cached}, \"wall_s\": {},\n  \
                 \"summary\": {}\n}}\n",
                spec.app,
                spec.design.label(),
                json_f64(spec.bw_scale),
                json_f64(spec.scale),
                spec.content_hash(),
                json_f64(wall),
                stats.summary().to_json(),
            );
            http::respond(out, 200, "application/json", body.as_bytes())
        }
        Err(msg) => http::respond_error(out, 500, "cell_failed", &msg),
    }
}

fn result_endpoint(state: &State, key: &str, out: &mut TcpStream) -> io::Result<()> {
    let Ok(key) = u64::from_str_radix(key, 16) else {
        return http::respond_error(
            out,
            400,
            "bad_request",
            &format!("cell keys are hex u64, got {key:?}"),
        );
    };
    let Some(store) = &state.store else {
        return http::respond_error(out, 503, "no_store", "server is running without a store");
    };
    match store.get_result(key) {
        // The genuine typed-503 path: a store fault on a raw lookup has
        // no compute fallback, so the client gets the fault, typed — and
        // the store itself is untouched (reads never poison it).
        Err(e) => http::respond_error(out, 503, "store_fault", &e.to_string()),
        Ok(None) => http::respond_error(out, 404, "not_found", &format!("no result {key:016x}")),
        Ok(Some(payload)) => match decode_result_payload(&payload) {
            None => http::respond_error(
                out,
                500,
                "payload_skew",
                "stored payload failed to decode (version skew)",
            ),
            Some((stats, wall)) => {
                let body = format!(
                    "{{\n  \"key\": \"{key:016x}\", \"wall_s\": {},\n  \"summary\": {}\n}}\n",
                    json_f64(wall),
                    stats.summary().to_json(),
                );
                http::respond(out, 200, "application/json", body.as_bytes())
            }
        },
    }
}

// ----- bench recording ------------------------------------------------------

fn record_bench(state: &State, sample: BenchSample) {
    let mut bench = state.bench.lock().expect("bench lock");
    bench.push(sample);
    if let Some(path) = &state.bench_out {
        let json = bench_json(&bench);
        drop(bench);
        if let Err(e) = write_file_atomic(path, json.as_bytes()) {
            eprintln!("caba-serve: writing {}: {e}", path.display());
        }
    }
}

/// Renders `BENCH_serve.json`: every figure request, plus cold-vs-warm
/// pairs per `(figure, scale)` with the warm speedup the acceptance gate
/// reads.
fn bench_json(samples: &[BenchSample]) -> String {
    let mut s = String::from("{\n  \"schema\": \"caba-serve-bench-v1\",\n  \"requests\": [\n");
    for (i, b) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"fig\": \"{}\", \"scale\": {}, \"cells\": {}, \"cached_cells\": {}, \
             \"wall_s\": {}}}{sep}\n",
            b.fig,
            json_f64(b.scale),
            b.cells,
            b.cached_cells,
            json_f64(b.wall_s)
        ));
    }
    s.push_str("  ],\n  \"pairs\": [\n");
    let mut seen: Vec<(Figure, u64)> = Vec::new();
    let mut pairs: Vec<String> = Vec::new();
    for b in samples {
        let id = (b.fig, b.scale.to_bits());
        if seen.contains(&id) {
            continue;
        }
        seen.push(id);
        let mut matching = samples.iter().filter(|x| (x.fig, x.scale.to_bits()) == id);
        let cold = matching.next().expect("seen via samples");
        if let Some(warm) = matching.next_back() {
            pairs.push(format!(
                "    {{\"fig\": \"{}\", \"scale\": {}, \"cold_wall_s\": {}, \"warm_wall_s\": {}, \
                 \"warm_speedup\": {}}}",
                cold.fig,
                json_f64(cold.scale),
                json_f64(cold.wall_s),
                json_f64(warm.wall_s),
                json_f64(cold.wall_s / warm.wall_s.max(1e-9))
            ));
        }
    }
    s.push_str(&pairs.join(",\n"));
    if !pairs.is_empty() {
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Barrier;

    /// Deterministic single-flight check: a barrier guarantees all
    /// threads are inside `run` for the same key before the leader's
    /// compute finishes, so exactly one compute happens and everyone
    /// receives its value.
    #[test]
    fn coalescer_runs_one_compute_for_concurrent_identical_keys() {
        const THREADS: usize = 4;
        let coal = Coalescer::<u32>::new();
        let computes = AtomicU32::new(0);
        let release = Barrier::new(2); // leader + main
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..THREADS {
                joins.push(s.spawn(|| {
                    coal.run(42, || {
                        // Only the leader gets here. Wait until main has
                        // seen every thread enter, so followers are
                        // provably coalescing, then compute.
                        release.wait();
                        computes.fetch_add(1, Ordering::SeqCst) + 7
                    })
                }));
            }
            // All threads entered run() before the leader may finish.
            // (The followers' entry is not barrier-observable without
            // instrumenting the lock, so give them a moment to block.)
            std::thread::sleep(Duration::from_millis(50));
            release.wait();
            let results: Vec<(u32, bool)> = joins.into_iter().map(|j| j.join().unwrap()).collect();
            assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
            assert_eq!(results.iter().filter(|(_, led)| *led).count(), 1);
            assert!(results.iter().all(|(v, _)| *v == 7));
        });
        // The flight retired: a later call recomputes.
        let (v, led) = coal.run(42, || 99);
        assert_eq!((v, led), (99, true));
    }

    #[test]
    fn coalescer_distinct_keys_do_not_share_flights() {
        let coal = Coalescer::<u64>::new();
        let (a, led_a) = coal.run(1, || 10);
        let (b, led_b) = coal.run(2, || 20);
        assert_eq!((a, led_a, b, led_b), (10, true, 20, true));
    }

    #[test]
    fn bench_json_pairs_cold_with_latest_warm() {
        let samples = vec![
            BenchSample {
                fig: Figure::Fig07,
                scale: 0.25,
                cells: 100,
                cached_cells: 0,
                wall_s: 20.0,
            },
            BenchSample {
                fig: Figure::Fig10,
                scale: 0.25,
                cells: 100,
                cached_cells: 0,
                wall_s: 9.0,
            },
            BenchSample {
                fig: Figure::Fig07,
                scale: 0.25,
                cells: 100,
                cached_cells: 100,
                wall_s: 0.5,
            },
        ];
        let j = bench_json(&samples);
        caba_stats::json::validate(&j).expect("bench JSON parses");
        assert!(j.contains("\"warm_speedup\": 40"), "{j}");
        // fig10 has one sample: no pair emitted for it.
        assert_eq!(j.matches("\"cold_wall_s\"").count(), 1, "{j}");
    }
}
