//! `caba-serve` CLI: bind the sweep service and run until shutdown.

use caba_serve::{ServeOptions, Server};
use caba_store::{FaultFs, FaultRates, Store};
use caba_sweep::{host_cores, SweepConfig};
use std::path::PathBuf;
use std::process::exit;

struct Args {
    addr: String,
    store_dir: Option<PathBuf>,
    jobs: usize,
    intra_jobs: usize,
    scale: f64,
    bench_out: Option<PathBuf>,
    store_fault_seed: Option<u64>,
    store_fault_rate: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: caba-serve [--addr HOST:PORT] [--store-dir DIR] [--jobs N] [--intra-jobs N]\n\
         \x20                 [--scale F] [--bench-out PATH]\n\
         \x20                 [--store-fault-seed N [--store-fault-rate F]]\n\
         \n\
         Serve sweep/figure/cell simulations over HTTP. Cells are keyed by content\n\
         hash of the canonicalized config + workload; with --store-dir, results are\n\
         memoized durably and only cache misses simulate. Identical concurrent\n\
         requests coalesce onto one in-flight computation.\n\
         \n\
         --addr HOST:PORT   bind address (default 127.0.0.1:7199; use :0 for an\n\
         \x20                  ephemeral port — the actual address is printed)\n\
         --store-dir DIR    durable content-addressed result store (shared with\n\
         \x20                  caba-sweep --store-dir)\n\
         --jobs N           cell-level worker threads per figure request\n\
         --intra-jobs N     worker threads inside each simulation\n\
         --scale F          default workload scale when a request omits ?scale=\n\
         \x20                  (default 0.25)\n\
         --bench-out PATH   rewrite BENCH_serve.json after each figure request\n\
         --store-fault-seed N / --store-fault-rate F\n\
         \x20                  wrap the store in the deterministic fault injector\n\
         \x20                  (testing; rate defaults to 0.05)\n\
         \n\
         endpoints: GET /healthz /stats /figure/{{fig}} /cell/{{app}}/{{design}}/{{bw}}\n\
         \x20          /result/{{key}}   POST /shutdown"
    );
    exit(2);
}

fn parse_flag<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("caba-serve: {flag} needs a valid value\n");
        usage()
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7199".to_string(),
        store_dir: None,
        jobs: host_cores(),
        intra_jobs: 1,
        scale: 0.25,
        bench_out: None,
        store_fault_seed: None,
        store_fault_rate: 0.05,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.addr = parse_flag(&a, it.next()),
            "--store-dir" => args.store_dir = Some(parse_flag(&a, it.next())),
            "--jobs" => args.jobs = parse_flag(&a, it.next()),
            "--intra-jobs" => args.intra_jobs = parse_flag(&a, it.next()),
            "--scale" => args.scale = parse_flag(&a, it.next()),
            "--bench-out" => args.bench_out = Some(parse_flag(&a, it.next())),
            "--store-fault-seed" => args.store_fault_seed = Some(parse_flag(&a, it.next())),
            "--store-fault-rate" => args.store_fault_rate = parse_flag(&a, it.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("caba-serve: unknown flag {other:?}\n");
                usage()
            }
        }
    }
    if args.jobs == 0 || args.intra_jobs == 0 || args.scale <= 0.0 {
        eprintln!("caba-serve: --jobs/--intra-jobs must be nonzero and --scale positive\n");
        usage();
    }
    args
}

fn main() {
    let args = parse_args();

    let store = args.store_dir.as_ref().map(|dir| {
        let opened = match args.store_fault_seed {
            Some(seed) => Store::open_with_fs(
                dir,
                Box::new(FaultFs::new(
                    seed,
                    FaultRates::uniform(args.store_fault_rate),
                )),
            ),
            None => Store::open(dir),
        };
        opened.unwrap_or_else(|e| {
            eprintln!("caba-serve: opening store {}: {e}", dir.display());
            exit(1);
        })
    });

    let mut sc = SweepConfig {
        scale: args.scale,
        ..SweepConfig::default()
    };
    sc.cfg.intra_jobs = args.intra_jobs;

    let server = Server::start(
        &args.addr,
        ServeOptions {
            sc,
            jobs: (args.jobs / args.intra_jobs).max(1),
            store,
            bench_out: args.bench_out,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("caba-serve: binding {}: {e}", args.addr);
        exit(1);
    });

    println!("caba-serve listening on http://{}", server.addr());
    if let Some(dir) = &args.store_dir {
        eprintln!("  store: {}", dir.display());
    }
    server.join();
    eprintln!("caba-serve: shutdown complete");
}
