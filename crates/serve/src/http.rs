//! Minimal HTTP/1.1, hand-rolled over `std::net` — the workspace builds
//! offline, so there is no web framework to lean on and none is needed:
//! the service speaks exactly the subset CI and `curl` require (request
//! line + headers, fixed-length JSON responses, and chunked
//! transfer-encoding for streamed figure tables).
//!
//! The module is symmetric: [`Request::parse`] / [`ChunkedWriter`] serve
//! the server side, and [`fetch`] is a tiny client used by the service
//! tests (and usable from scripts via `caba-serve --probe`-style tooling)
//! that decodes both fixed-length and chunked bodies.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line or header, in bytes — requests are tiny
/// (`GET /figure/fig07?...`), so anything longer is garbage or abuse.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, decoded path, and query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/figure/fig07`).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses one request from `r`, consuming its headers (and body, when
    /// a `Content-Length` is declared — the service itself takes no
    /// bodies, but a client that sends one must not desync the stream).
    /// Returns `Ok(None)` for a malformed request — the caller answers
    /// 400 — and `Err` only for transport-level I/O failures.
    pub fn parse<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
        let Some(line) = read_crlf_line(r)? else {
            return Ok(None);
        };
        let mut parts = line.split(' ');
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Ok(None);
        };
        if parts.next().is_some() || !version.starts_with("HTTP/1.") {
            return Ok(None);
        }
        // Only origin-form targets are served; anything else is malformed.
        if !target.starts_with('/') {
            return Ok(None);
        }
        let mut content_length: usize = 0;
        for _ in 0..MAX_HEADERS {
            let Some(header) = read_crlf_line(r)? else {
                return Ok(None);
            };
            if header.is_empty() {
                // End of headers: drain any declared body.
                let mut body = vec![0u8; content_length.min(MAX_LINE)];
                r.read_exact(&mut body)?;
                let (path, query) = split_target(target);
                return Ok(Some(Request {
                    method: method.to_string(),
                    path,
                    query,
                }));
            }
            let Some((name, value)) = header.split_once(':') else {
                return Ok(None);
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) if n <= MAX_LINE => n,
                    _ => return Ok(None),
                };
            }
        }
        Ok(None) // too many headers
    }
}

/// Reads one CRLF-terminated line; `None` on EOF mid-line, an oversized
/// line, or embedded NUL (malformed).
fn read_crlf_line<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        if r.read(&mut byte)? == 0 {
            return Ok(None);
        }
        if byte[0] == b'\n' {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return match String::from_utf8(buf) {
                Ok(s) => Ok(Some(s)),
                Err(_) => Ok(None),
            };
        }
        buf.push(byte[0]);
        if buf.len() > MAX_LINE {
            return Ok(None);
        }
    }
}

/// Splits `/path?a=1&b=2` into the path and decoded query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(kv), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    }
}

/// Decodes `%XX` escapes and `+` (space); invalid escapes pass through
/// literally rather than failing the whole request.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 2;
                }
                _ => out.push(b'%'),
            },
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// Canonical reason phrase for the status codes the service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response.
pub fn respond<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes a typed JSON error: `{"error": CODE, "message": MSG}`. Every
/// non-2xx the service produces goes through here, so clients can always
/// parse the body.
pub fn respond_error<W: Write>(w: &mut W, status: u16, code: &str, msg: &str) -> io::Result<()> {
    let body = format!(
        "{{\"error\": \"{}\", \"message\": \"{}\"}}\n",
        json_escape(code),
        json_escape(msg)
    );
    respond(w, status, "application/json", body.as_bytes())
}

/// A chunked (`Transfer-Encoding: chunked`) 200 response in progress.
/// Each [`chunk`](ChunkedWriter::chunk) is flushed immediately — the
/// client sees per-cell progress, not a buffered table. Dropping the
/// writer without [`finish`](ChunkedWriter::finish) leaves the stream
/// without its terminal chunk, which clients see as truncation — the
/// deliberate mid-stream error signal (the 200 header is long gone).
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the 200 response header and switches to chunked encoding.
    pub fn begin(mut w: W, content_type: &str) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Writes one chunk (empty input is skipped — an empty chunk would
    /// terminate the stream early).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Writes the terminal zero-length chunk, completing the response.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// A decoded client-side response.
#[derive(Debug, Clone)]
pub struct FetchedResponse {
    /// Status code.
    pub status: u16,
    /// Lower-cased header names with their values.
    pub headers: HashMap<String, String>,
    /// Fully decoded body (de-chunked when the response was chunked).
    pub body: Vec<u8>,
}

impl FetchedResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Minimal HTTP client for tests and tooling: one request, one response,
/// connection closed. Decodes chunked bodies and fails with an error if a
/// chunked stream is truncated (no terminal chunk) — the service's
/// mid-stream error signal must surface as an error, not silent success.
pub fn fetch(addr: &str, method: &str, target: &str) -> io::Result<FetchedResponse> {
    let stream = TcpStream::connect(addr)?;
    fetch_on(stream, method, target, addr)
}

/// [`fetch`] over an already-connected stream.
pub fn fetch_on(
    mut stream: TcpStream,
    method: &str,
    target: &str,
    host: &str,
) -> io::Result<FetchedResponse> {
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut r = BufReader::new(stream);

    let status_line = read_crlf_line(&mut r)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;

    let mut headers = HashMap::new();
    loop {
        let line = read_crlf_line(&mut r)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
    }

    let body = if headers
        .get("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
    {
        decode_chunked(&mut r)?
    } else if let Some(len) = headers.get("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        body
    } else {
        let mut body = Vec::new();
        r.read_to_end(&mut body)?;
        body
    };
    Ok(FetchedResponse {
        status,
        headers,
        body,
    })
}

/// Decodes a chunked body; errors if the stream ends before the terminal
/// zero-length chunk.
fn decode_chunked<R: BufRead>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size_line = read_crlf_line(r)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "chunked body truncated (no terminal chunk)",
            )
        })?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
        if size == 0 {
            let _ = read_crlf_line(r)?; // trailing CRLF after the 0 chunk
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        r.read_exact(&mut body[start..])
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "chunked body truncated"))?;
        let _ = read_crlf_line(r)?; // CRLF after chunk data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_request_with_query_and_body() {
        let raw = b"GET /figure/fig07?scale=0.25&apps=CONS,BFS HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = Request::parse(&mut Cursor::new(&raw[..]))
            .unwrap()
            .expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/figure/fig07");
        assert_eq!(req.query("scale"), Some("0.25"));
        assert_eq!(req.query("apps"), Some("CONS,BFS"));
        assert_eq!(req.query("missing"), None);

        // A declared body is drained, not left to desync the stream.
        let raw = b"POST /shutdown HTTP/1.1\r\nContent-Length: 4\r\n\r\nhush";
        let req = Request::parse(&mut Cursor::new(&raw[..]))
            .unwrap()
            .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/shutdown");
    }

    #[test]
    fn malformed_requests_parse_to_none_not_panic() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1 extra\r\n\r\n"[..],
            &b""[..],
            &b"GET /x HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: zillions\r\n\r\n"[..],
        ] {
            assert_eq!(
                Request::parse(&mut Cursor::new(raw)).unwrap(),
                None,
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn percent_decoding_handles_escapes_and_garbage() {
        assert_eq!(percent_decode("a%2Cb+c"), "a,b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn chunked_round_trip_and_truncation_detection() {
        let mut wire = Vec::new();
        {
            let mut cw = ChunkedWriter::begin(&mut wire, "text/plain").unwrap();
            cw.chunk(b"hello ").unwrap();
            cw.chunk(b"").unwrap(); // skipped, must not terminate
            cw.chunk(b"world\n").unwrap();
            cw.finish().unwrap();
        }
        let text = String::from_utf8(wire.clone()).unwrap();
        let body_at = text.find("\r\n\r\n").unwrap() + 4;
        let decoded = decode_chunked(&mut Cursor::new(&wire[body_at..])).unwrap();
        assert_eq!(decoded, b"hello world\n");

        // Drop the terminal chunk: decoding must error, not succeed.
        let truncated = &wire[body_at..wire.len() - 5];
        let err = decode_chunked(&mut Cursor::new(truncated)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
    }

    #[test]
    fn error_responses_are_parseable_json() {
        let mut wire = Vec::new();
        respond_error(&mut wire, 400, "bad_request", "unknown figure \"fig99\"").unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{text}");
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        caba_stats::json::validate(body.trim()).expect("error body is valid JSON");
        assert!(body.contains("\\\"fig99\\\""), "{body}");
    }
}
