//! Service-level golden tests: the HTTP server must be a pure
//! accelerator over the sweep library — cold, warm, fault-injected, and
//! restarted servers all stream figure tables byte-identical to the
//! offline `figure_table` output, and every misuse of the API maps to a
//! typed JSON error without poisoning the store.

use caba_serve::http::{fetch, FetchedResponse};
use caba_serve::{ServeOptions, Server};
use caba_sim::GpuConfig;
use caba_store::{FaultFs, FaultRates, RealFs, Store, StoreFs};
use caba_sweep::{dedup_cells, figure_table, run_cells, Figure, SweepCell, SweepConfig};
use std::io;
use std::path::Path;

const SCALE: f64 = 0.05;
const APPS: [&str; 2] = ["CONS", "BFS"];

fn sc() -> SweepConfig {
    SweepConfig {
        scale: SCALE,
        cfg: GpuConfig::small(),
    }
}

fn cells() -> Vec<SweepCell> {
    let mut cells = dedup_cells(&[Figure::Fig07.cells()]);
    cells.retain(|c| APPS.contains(&c.app));
    assert!(!cells.is_empty());
    cells
}

/// The offline reference: the exact bytes `caba-sweep --table` would
/// write for these cells.
fn reference_table() -> String {
    figure_table(&run_cells(&sc(), &cells(), 2))
}

fn start(store: Option<Store>) -> Server {
    Server::start(
        "127.0.0.1:0",
        ServeOptions {
            sc: sc(),
            jobs: 2,
            store,
            bench_out: None,
        },
    )
    .expect("server binds an ephemeral port")
}

fn get(server: &Server, target: &str) -> FetchedResponse {
    fetch(&server.addr().to_string(), "GET", target).expect("request round-trips")
}

const FIG_TARGET: &str = "/figure/fig07?scale=0.05&apps=CONS,BFS";

fn stop(server: Server) {
    let addr = server.addr().to_string();
    let resp = fetch(&addr, "POST", "/shutdown").expect("shutdown request");
    assert_eq!(resp.status, 200);
    server.join();
}

#[test]
fn cold_warm_and_restarted_servers_stream_byte_identical_tables() {
    let dir = caba_store::fsio::scratch_dir("serve-golden");
    let reference = reference_table();

    // Cold: every cell simulates, table matches the offline bytes.
    let server = start(Some(Store::open(&dir).expect("store opens")));
    let cold = get(&server, FIG_TARGET);
    assert_eq!(cold.status, 200);
    assert_eq!(
        cold.headers.get("transfer-encoding").map(String::as_str),
        Some("chunked"),
        "figure tables stream chunked"
    );
    assert_eq!(cold.text(), reference, "cold table diverged from offline");
    let stats = get(&server, "/stats").text();
    assert!(stats.contains("\"store_warm_hits\": 0"), "{stats}");

    // Warm, same process: every cell restores from the store.
    let warm = get(&server, FIG_TARGET);
    assert_eq!(warm.text(), reference, "warm table diverged");
    let stats = get(&server, "/stats").text();
    assert!(
        stats.contains(&format!("\"store_warm_hits\": {}", cells().len())),
        "second request should hit the store for every cell: {stats}"
    );
    stop(server);

    // Killed and restarted: a fresh process over the same store dir must
    // serve the same bytes, entirely from disk.
    let server = start(Some(Store::open(&dir).expect("store reopens")));
    let restarted = get(&server, FIG_TARGET);
    assert_eq!(restarted.text(), reference, "restarted table diverged");
    let stats = get(&server, "/stats").text();
    assert!(
        stats.contains(&format!("\"store_warm_hits\": {}", cells().len())),
        "restarted server should warm-start every cell: {stats}"
    );
    assert!(stats.contains("\"cells_computed\": 0"), "{stats}");
    stop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_typed_errors_without_poisoning_the_store() {
    let dir = caba_store::fsio::scratch_dir("serve-errors");
    let server = start(Some(Store::open(&dir).expect("store opens")));

    let expect = |target: &str, status: u16, code: &str| {
        let resp = get(&server, target);
        assert_eq!(resp.status, status, "{target} -> {}", resp.text());
        let body = resp.text();
        caba_stats::json::validate(&body).unwrap_or_else(|e| panic!("{target}: {e}\n{body}"));
        assert!(
            body.contains(&format!("\"error\": \"{code}\"")),
            "{target}: {body}"
        );
    };

    expect("/figure/fig99", 400, "bad_request");
    expect("/figure/fig07?scale=banana", 400, "bad_request");
    expect("/figure/fig07?scale=-1", 400, "bad_request");
    expect("/figure/fig07?apps=NOPE", 400, "bad_request");
    expect("/cell/NOPE/Base/1.0", 404, "not_found");
    expect("/cell/CONS/Bogus/1.0", 400, "bad_request");
    expect("/cell/CONS/Base/zoom", 400, "bad_request");
    expect("/result/not-hex", 400, "bad_request");
    expect("/result/0000000000000000", 404, "not_found");
    expect("/no/such/route", 404, "not_found");

    // Wrong method on a known resource is 405, not 404.
    let resp = fetch(&server.addr().to_string(), "POST", "/stats").expect("request");
    assert_eq!(resp.status, 405, "{}", resp.text());
    let resp = fetch(&server.addr().to_string(), "GET", "/shutdown").expect("request");
    assert_eq!(resp.status, 405, "{}", resp.text());

    // A raw malformed request line gets a 400, not a dropped connection.
    let resp = fetch(&server.addr().to_string(), "GET", "no-leading-slash").expect("request");
    assert_eq!(resp.status, 400, "{}", resp.text());

    // After all that abuse, good requests still work and the store audits
    // clean — errors never wrote anything.
    let ok = get(&server, "/cell/CONS/Base/1.0");
    assert_eq!(ok.status, 200, "{}", ok.text());
    caba_stats::json::validate(&ok.text()).expect("cell JSON parses");
    stop(server);

    let store = Store::open(&dir).expect("store reopens");
    let report = store.scrub().expect("scrub runs");
    assert!(report.is_clean(), "errors poisoned the store: {report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_injected_store_degrades_to_recompute_not_wrong_bytes() {
    let dir = caba_store::fsio::scratch_dir("serve-chaos");
    let reference = reference_table();
    let fs = FaultFs::new(
        0xC0FFEE,
        FaultRates {
            torn_write: 0.2,
            short_read: 0.2,
            rename_fail: 0.1,
            ..FaultRates::none()
        },
    );
    let store = Store::open_with_fs(&dir, Box::new(fs)).expect("faulted store opens");
    let server = start(Some(store));

    // Under injected torn writes and short reads the table must still be
    // byte-exact — faults cost recomputes, never correctness.
    for round in 0..3 {
        let resp = get(&server, FIG_TARGET);
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.text(),
            reference,
            "round {round} diverged under faults"
        );
    }
    stop(server);

    // The surviving on-disk state is healthy (quarantine is allowed).
    let store = Store::open(&dir).expect("store reopens clean");
    store.scrub().expect("scrub runs");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A filesystem whose object reads fail hard (EIO-style), unlike
/// `FaultFs`'s silent short reads which the store heals to cache misses.
/// This drives the genuine typed-503 path on `/result`.
struct DenyObjectReads(RealFs);

impl StoreFs for DenyObjectReads {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if path.extension().is_some_and(|e| e == "entry") {
            return Err(io::Error::other("injected I/O error"));
        }
        self.0.read(path)
    }
    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.0.write_sync(path, bytes)
    }
    fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.0.append_sync(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.0.rename(from, to)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.0.sync_dir(dir)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.0.create_dir_all(dir)
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.0.list(dir)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.0.remove_file(path)
    }
    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        self.0.file_len(path)
    }
}

#[test]
fn store_faults_on_raw_lookups_are_typed_503s() {
    // No store at all: typed 503, distinct error code.
    let server = start(None);
    let resp = get(&server, "/result/0123456789abcdef");
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert!(
        resp.text().contains("\"error\": \"no_store\""),
        "{}",
        resp.text()
    );
    stop(server);

    // Populate a real store, then serve it through a filesystem whose
    // reads fail hard: /result surfaces the fault as a typed 503 (there
    // is no compute fallback for a raw lookup).
    let dir = caba_store::fsio::scratch_dir("serve-503");
    let key = {
        let store = Store::open(&dir).expect("store opens");
        let spec = caba_sweep::CellSpec::new(&sc(), cells()[0]);
        let server = start(Some(store));
        let resp = get(
            &server,
            &format!("/cell/{}/{}/1?scale={SCALE}", spec.app, spec.design),
        );
        assert_eq!(resp.status, 200, "{}", resp.text());
        stop(server);
        spec.content_hash()
    };
    let store =
        Store::open_with_fs(&dir, Box::new(DenyObjectReads(RealFs))).expect("store reopens");
    let server = start(Some(store));
    let resp = get(&server, &format!("/result/{key:016x}"));
    assert_eq!(resp.status, 503, "{}", resp.text());
    let body = resp.text();
    caba_stats::json::validate(&body).expect("503 body is JSON");
    assert!(body.contains("\"error\": \"store_fault\""), "{body}");

    // The fault did not poison the store: a healthy reopen still serves
    // the result.
    stop(server);
    let store = Store::open(&dir).expect("healthy reopen");
    let server = start(Some(store));
    let resp = get(&server, &format!("/result/{key:016x}"));
    assert_eq!(resp.status, 200, "{}", resp.text());
    stop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_computation() {
    let server = start(None);
    let addr = server.addr().to_string();
    const CLIENTS: usize = 4;
    let responses: Vec<FetchedResponse> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    fetch(&addr, "GET", "/cell/CONS/Base/1?scale=0.05").expect("cell request")
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let bodies: Vec<String> = responses
        .iter()
        .map(|r| {
            assert_eq!(r.status, 200, "{}", r.text());
            // `cached` varies by which client led; everything else agrees.
            r.text()
                .replace("\"cached\": true", "\"cached\": ?")
                .replace("\"cached\": false", "\"cached\": ?")
        })
        .collect();
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "divergent cell summaries"
    );

    // With no store, identical concurrent requests can only have been
    // deduplicated by the coalescer; at most one client computed.
    let stats = get(&server, "/stats").text();
    assert!(stats.contains("\"cells_computed\": 1"), "{stats}");
    stop(server);
}

#[test]
fn serve_binary_prints_usage_and_rejects_bad_flags() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_caba-serve"))
        .args(["--help"])
        .output()
        .expect("caba-serve binary runs");
    assert_eq!(out.status.code(), Some(2), "--help exits with usage");
    let usage = String::from_utf8_lossy(&out.stderr);
    assert!(usage.contains("--store-dir"), "{usage}");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_caba-serve"))
        .args(["--jobs", "0"])
        .output()
        .expect("caba-serve binary runs");
    assert_eq!(out.status.code(), Some(2), "bad flags exit with usage");
}
