//! Cross-process warm-start golden test: a sweep whose first process was
//! killed partway (emulated by running only a subset of its cells) must,
//! when re-run in a *fresh process* against the same `--store-dir`,
//! produce a figure table byte-identical to an unbroken in-process run —
//! the store is a pure accelerator, never an influence.

use caba_sweep::{dedup_cells, figure_table, run_cells, Figure, Sweep, SweepCell, SweepConfig};
use std::process::Command;

const SCALE: &str = "0.05";
const APPS: [&str; 2] = ["CONS", "BFS"];

/// The exact cell list `caba-sweep --figures fig07 --apps CONS,BFS`
/// selects, mirrored in-process so cell keys agree.
fn cells() -> Vec<SweepCell> {
    let groups = vec![Figure::Fig07.cells()];
    let mut cells = dedup_cells(&groups);
    cells.retain(|c| APPS.contains(&c.app));
    assert!(!cells.is_empty());
    cells
}

/// The CLI's sweep configuration for `--scale 0.05` (worker-count and
/// checkpoint knobs are canonicalized out of the content keys, so the
/// defaults here key identically to any CLI invocation).
fn sc() -> SweepConfig {
    SweepConfig {
        scale: SCALE.parse().unwrap(),
        ..SweepConfig::default()
    }
}

fn run_cli(args: &[&str]) -> std::process::Output {
    let out = Command::new(env!("CARGO_BIN_EXE_caba-sweep"))
        .args(args)
        .output()
        .expect("caba-sweep spawns");
    assert!(
        out.status.success(),
        "caba-sweep {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn killed_sweep_resumes_bit_identically_in_a_fresh_process() {
    let dir = caba_store::fsio::scratch_dir("xproc-warm");
    let store_dir = dir.join("store");
    let out1 = dir.join("out1.json");
    let out2 = dir.join("out2.json");
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // Unbroken in-process reference.
    let reference = figure_table(&run_cells(&sc(), &cells(), 2));

    // Process 1, "killed" partway: only the CONS cells run and persist.
    run_cli(&[
        "--figures",
        "fig07",
        "--apps",
        "CONS",
        "--scale",
        SCALE,
        "--jobs",
        "2",
        "--store-dir",
        store_dir.to_str().unwrap(),
        "--out",
        out1.to_str().unwrap(),
    ]);

    // Process 2, fresh, full cell set: the CONS cells must warm-start
    // from the store rather than recompute.
    let out = run_cli(&[
        "--figures",
        "fig07",
        "--apps",
        "CONS,BFS",
        "--scale",
        SCALE,
        "--jobs",
        "2",
        "--store-dir",
        store_dir.to_str().unwrap(),
        "--out",
        out2.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let hits: u64 = stderr
        .lines()
        .find_map(|l| {
            let l = l.trim();
            l.strip_prefix("store: ")
                .and_then(|r| r.split_once(" hits"))
                .and_then(|(n, _)| n.parse().ok())
        })
        .unwrap_or_else(|| panic!("no store hit line in stderr:\n{stderr}"));
    assert!(hits > 0, "process 2 recomputed everything:\n{stderr}");

    // Golden pin: a third "process" (fresh Store instance) restores every
    // cell from disk and reproduces the unbroken table byte for byte.
    let store = caba_store::Store::open(&store_dir).expect("store reopens");
    let restored = Sweep::new(&sc(), cells())
        .jobs(2)
        .store(&store)
        .run()
        .expect("warm-started sweep");
    assert_eq!(
        restored.store_hits,
        cells().len(),
        "every cell should restore from the two CLI processes' work"
    );
    assert_eq!(
        figure_table(&restored.results),
        reference,
        "cross-process warm start diverged from the unbroken run"
    );

    // The store survives its own audit after all that traffic.
    let report = store.scrub().expect("scrub runs");
    assert!(report.is_clean(), "store dirty after clean use: {report:?}");

    // Both reports exist and carry the figure list they ran.
    for p in [&out1, &out2] {
        let j = std::fs::read_to_string(p).expect("report written");
        assert!(j.contains("\"fig07\""), "{} lacks figure list", p.display());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
