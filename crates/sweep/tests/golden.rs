//! Golden regression and determinism tests for the sweep executor.
//!
//! The hot-path work (hashing, candidate caching, quiesced-component
//! skipping, bulk DRAM-clock catch-up) is only legal because it leaves
//! architectural state untouched. These tests pin that down two ways:
//! exact cycle/flit counts captured before the overhaul, and bit-identical
//! `RunStats` between serial and parallel sweeps.

use caba_sim::fault::FaultConfig;
use caba_sim::{Gpu, GpuConfig, RunError, RunStats};
use caba_sweep::{run_cells, DesignId, SweepCell, SweepConfig};
use caba_workloads::{app, prepare_app, run_app, DEFAULT_MAX_CYCLES};

/// Exact `(design, cycles, icnt_flits)` triples for CONS on
/// `GpuConfig::small()` at scale 0.05, captured from the pre-overhaul
/// simulator. Any drift here means an "optimization" changed simulated
/// behavior, not just wall-clock time.
const GOLDEN: [(DesignId, u64, u64); 7] = [
    (DesignId::Base, 2554, 3756),
    (DesignId::HwBdiMem, 1987, 3756),
    (DesignId::HwBdi, 1988, 2874),
    (DesignId::IdealBdi, 1987, 2874),
    (DesignId::CabaBdi, 2720, 2882),
    (DesignId::CabaFpc, 3081, 3537),
    (DesignId::CabaCPack, 2769, 3306),
];

const GOLDEN_APP_INSTRUCTIONS: u64 = 2496;

#[test]
fn golden_cycle_counts_are_stable() {
    let a = app("CONS").expect("CONS exists");
    for (design, cycles, flits) in GOLDEN {
        let stats = run_app(&a, caba_sim::GpuConfig::small(), design.make(), 0.05)
            .unwrap_or_else(|e| panic!("{}: {e}", design.label()));
        assert_eq!(
            stats.cycles,
            cycles,
            "{}: cycle count drifted",
            design.label()
        );
        assert_eq!(
            stats.icnt_flits,
            flits,
            "{}: interconnect flit count drifted",
            design.label()
        );
        assert_eq!(
            stats.app_instructions,
            GOLDEN_APP_INSTRUCTIONS,
            "{}: instruction count drifted",
            design.label()
        );
    }
}

/// Runs one `(app, design)` cell serially and under every tested intra-run
/// worker count, asserting exact `RunStats` equality (the struct derives
/// `Eq`, so every counter is compared, not a tolerance band).
fn assert_intra_deterministic(app_name: &str, design: DesignId, cfg: GpuConfig) {
    let spec = app(app_name).unwrap_or_else(|| panic!("unknown app {app_name}"));
    let mut serial_cfg = cfg;
    serial_cfg.intra_jobs = 1;
    let serial = run_app(&spec, serial_cfg, design.make(), 0.05)
        .unwrap_or_else(|e| panic!("{app_name}/{}: {e}", design.label()));
    for jobs in [2, 4] {
        let mut par_cfg = cfg;
        par_cfg.intra_jobs = jobs;
        let par = run_app(&spec, par_cfg, design.make(), 0.05)
            .unwrap_or_else(|e| panic!("{app_name}/{} @ intra_jobs={jobs}: {e}", design.label()));
        assert_eq!(
            serial,
            par,
            "{app_name}/{}: RunStats diverged at intra_jobs={jobs}",
            design.label()
        );
    }
}

#[test]
fn intra_jobs_is_bit_identical_to_serial() {
    // 3 apps x 3 designs covering every design family: bare baseline (no
    // compression map), dedicated-logic compression, and CABA assist warps
    // (per-SM controller forks, line store, staging traffic).
    for app_name in ["CONS", "BFS", "MM"] {
        for design in [DesignId::Base, DesignId::HwBdi, DesignId::CabaBdi] {
            assert_intra_deterministic(app_name, design, GpuConfig::small());
        }
    }
}

/// Figure 1 bucket totals must be bit-identical across intra-run worker
/// counts: the issue-slot taxonomy is recorded per scheduler inside the
/// sharded SM phase and merged at serial points in SM index order, so no
/// worker schedule may perturb a single bucket. Checked explicitly
/// per-bucket (not just through `RunStats` equality) together with the
/// conservation law `Σ buckets == cycles × schedulers × SMs`.
#[test]
fn fig01_bucket_totals_identical_across_intra_jobs() {
    use caba_stats::StallKind;
    let cfg = GpuConfig::small();
    let slots_per_cycle = (cfg.num_sms * cfg.schedulers_per_sm) as u64;
    for app_name in ["CONS", "BFS"] {
        for design in [DesignId::Base, DesignId::CabaBdi] {
            let spec = app(app_name).expect("known app");
            let mut reference = None;
            for jobs in [1, 2, 4] {
                let mut c = cfg;
                c.intra_jobs = jobs;
                let stats = run_app(&spec, c, design.make(), 0.05).unwrap_or_else(|e| {
                    panic!("{app_name}/{} @ intra_jobs={jobs}: {e}", design.label())
                });
                assert_eq!(
                    stats.breakdown.total(),
                    stats.cycles * slots_per_cycle,
                    "{app_name}/{} @ intra_jobs={jobs}: taxonomy leaks slots",
                    design.label()
                );
                match &reference {
                    None => reference = Some(stats.breakdown),
                    Some(r) => {
                        for k in StallKind::ALL {
                            assert_eq!(
                                stats.breakdown.count(k),
                                r.count(k),
                                "{app_name}/{} @ intra_jobs={jobs}: bucket {} diverged",
                                design.label(),
                                k.slug()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn intra_jobs_is_bit_identical_under_fault_injection() {
    // Fault streams are keyed per component (per-SM, per-partition, one
    // global crossbar stream drawn only at the serial merge points), so
    // injected drops/retransmissions must land on the same packets at the
    // same cycles regardless of worker count.
    let mut cfg = GpuConfig::small();
    cfg.fault = FaultConfig::recover(0xFA57_CAB4, 0.02);
    assert_intra_deterministic("CONS", DesignId::CabaBdi, cfg);
}

/// Runs `app_name` under `design` to a mid-run timeout at `split` cycles,
/// snapshots the machine, restores the snapshot into a **fresh** machine
/// (built with `resume_cfg`, which may differ in tolerated knobs such as
/// `intra_jobs`), and resumes to completion.
fn split_resume_stats(
    app_name: &str,
    design: DesignId,
    take_cfg: GpuConfig,
    resume_cfg: GpuConfig,
    split: u64,
) -> RunStats {
    let spec = app(app_name).unwrap_or_else(|| panic!("unknown app {app_name}"));
    let (mut warm, kernel) = prepare_app(&spec, take_cfg, design.make(), 0.05);
    match warm.run(&kernel, split) {
        Err(RunError::Timeout { cycles, .. }) => assert_eq!(cycles, split),
        other => panic!(
            "{app_name}/{}: expected a timeout at cycle {split}, got {other:?}",
            design.label()
        ),
    }
    let snap = warm.snapshot(&kernel);
    let mut resumed = Gpu::new(resume_cfg, design.make());
    resumed
        .restore(&kernel, &snap)
        .unwrap_or_else(|e| panic!("{app_name}/{}: restore: {e}", design.label()));
    resumed
        .resume(&kernel, DEFAULT_MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{app_name}/{}: resumed run: {e}", design.label()))
}

/// The checkpoint/restore determinism gate, pinned against the golden
/// table: a run snapshotted mid-flight, restored into a fresh machine,
/// and resumed must land on the **exact** pre-overhaul cycle and flit
/// counts for every design family — including the CABA designs, whose
/// controller state (assist-warp queues, line store, staging traffic)
/// travels through the snapshot.
#[test]
fn restored_runs_match_golden_pins_across_designs() {
    for (design, cycles, flits) in GOLDEN {
        let stats =
            split_resume_stats("CONS", design, GpuConfig::small(), GpuConfig::small(), 1000);
        assert_eq!(
            stats.cycles,
            cycles,
            "{}: restored run drifted from golden cycle count",
            design.label()
        );
        assert_eq!(
            stats.icnt_flits,
            flits,
            "{}: restored run drifted from golden flit count",
            design.label()
        );
        assert_eq!(
            stats.app_instructions,
            GOLDEN_APP_INSTRUCTIONS,
            "{}: restored run drifted from golden instruction count",
            design.label()
        );
    }
}

/// Restore determinism under fault injection: the injector's per-component
/// RNG streams travel through the snapshot, so a resumed run replays the
/// same drops and retransmissions as the unbroken one.
#[test]
fn restored_run_is_exact_under_fault_injection() {
    let mut cfg = GpuConfig::small();
    cfg.fault = FaultConfig::recover(0xFA57_CAB4, 0.02);
    let spec = app("CONS").expect("CONS exists");
    let unbroken = run_app(&spec, cfg, DesignId::CabaBdi.make(), 0.05).expect("unbroken run");
    assert!(
        unbroken.flit_retransmissions > 0,
        "fault config must actually inject"
    );
    let resumed = split_resume_stats("CONS", DesignId::CabaBdi, cfg, cfg, 1000);
    assert_eq!(resumed, unbroken);
}

/// Restore determinism across intra-run worker counts: a snapshot taken
/// under one `intra_jobs` restores under another (the knob is
/// canonicalized out of the config hash) and still completes bit-identical
/// to the serial unbroken run.
#[test]
fn restored_run_is_exact_across_intra_jobs() {
    let spec = app("CONS").expect("CONS exists");
    let unbroken =
        run_app(&spec, GpuConfig::small(), DesignId::CabaBdi.make(), 0.05).expect("unbroken run");
    for (take_jobs, resume_jobs) in [(1, 2), (2, 4), (4, 1)] {
        let mut take_cfg = GpuConfig::small();
        take_cfg.intra_jobs = take_jobs;
        let mut resume_cfg = GpuConfig::small();
        resume_cfg.intra_jobs = resume_jobs;
        let resumed = split_resume_stats("CONS", DesignId::CabaBdi, take_cfg, resume_cfg, 1000);
        assert_eq!(
            resumed, unbroken,
            "snapshot @ intra_jobs={take_jobs} resumed @ intra_jobs={resume_jobs} diverged"
        );
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    // 3 apps x 3 designs, as a flat cell list. `RunStats` derives `Eq`, so
    // equality here is exact — every counter, not a tolerance check.
    let mut cells = Vec::new();
    for app in ["CONS", "BFS", "bfs"] {
        for design in [DesignId::Base, DesignId::CabaBdi, DesignId::CabaFpc] {
            cells.push(SweepCell {
                app,
                design,
                bw_scale: 1.0,
            });
        }
    }
    let sc = SweepConfig {
        scale: 0.05,
        ..SweepConfig::default()
    };
    let serial = run_cells(&sc, &cells, 1);
    let parallel = run_cells(&sc, &cells, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.cell, p.cell, "cell order must be stable");
        assert_eq!(
            s.stats,
            p.stats,
            "{} / {}: parallel RunStats diverged from serial",
            s.cell.app,
            s.cell.design.label()
        );
    }
}
