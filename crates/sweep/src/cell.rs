//! The canonical cell identity: [`CellSpec`] is the single hashable,
//! serializable description of one simulation cell, and [`run_cell`] is
//! the one kernel entry point every executor layers over.
//!
//! A cell is fully determined by `(app, design, bw_scale, workload scale,
//! machine config)` — the fault-injection seed lives inside [`GpuConfig`],
//! so it is covered by the canonical config hash. Everything downstream
//! (the resume journal, the durable result store, and the `caba-serve`
//! HTTP service) keys work by [`CellSpec::content_hash`], so all three
//! provably agree on what "the same cell" means: the agreement is pinned
//! by `keys_agree_across_journal_store_and_server` in `resilient.rs`.
//!
//! [`GpuConfig`]: caba_sim::GpuConfig

use crate::{fig01_cells, fig07_cells, fig10_cells, fig12_cells};
use crate::{CellResult, DesignId, SweepCell, SweepConfig};
use caba_sim::snapshot::config_hash;
use caba_sim::{GpuConfig, Kernel, RunError};
use caba_stats::checksum64;
use caba_store::SnapKey;
use caba_workloads::{app, run_app};
use std::fmt;
use std::str::FromStr;
use std::time::Instant;

/// The single canonical description of one simulation cell.
///
/// Unlike [`SweepCell`] (which identifies a point in a figure's matrix and
/// leans on a shared [`SweepConfig`] for the rest), a `CellSpec` is
/// self-contained: two equal specs denote bit-identical simulations, and
/// [`content_hash`](CellSpec::content_hash) is a stable content key for
/// memoizing their results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Application name (resolvable via [`caba_workloads::app`]).
    pub app: &'static str,
    /// The design point.
    pub design: DesignId,
    /// Bandwidth scale applied to the machine configuration.
    pub bw_scale: f64,
    /// Workload scale factor (grid/working-set size).
    pub scale: f64,
    /// The machine configuration **before** per-cell bandwidth scaling.
    /// Worker-count and observability knobs are canonicalized out of the
    /// content hash (see [`config_hash`]); the fault-injection seed is in.
    pub cfg: GpuConfig,
}

impl CellSpec {
    /// Assembles the spec for `cell` under sweep-wide options `sc`.
    pub fn new(sc: &SweepConfig, cell: SweepCell) -> Self {
        CellSpec {
            app: cell.app,
            design: cell.design,
            bw_scale: cell.bw_scale,
            scale: sc.scale,
            cfg: sc.cfg,
        }
    }

    /// Resolves user-supplied strings (an HTTP request, a CLI flag) into a
    /// spec. The app name is interned against the workload registry so the
    /// spec carries the registry's `&'static str`; `None` if the app is
    /// unknown.
    pub fn resolve(
        app_name: &str,
        design: DesignId,
        bw_scale: f64,
        scale: f64,
        cfg: GpuConfig,
    ) -> Option<Self> {
        Some(CellSpec {
            app: app(app_name)?.name,
            design,
            bw_scale,
            scale,
            cfg,
        })
    }

    /// The figure-matrix view of this spec.
    pub fn cell(&self) -> SweepCell {
        SweepCell {
            app: self.app,
            design: self.design,
            bw_scale: self.bw_scale,
        }
    }

    /// Content hash of the sweep this cell belongs to: the canonicalized
    /// machine configuration plus the workload scale. A resume journal is
    /// keyed by this value and refuses to resume a different sweep.
    pub fn sweep_hash(&self) -> u64 {
        checksum64(
            format!(
                "{:016x}|{:016x}",
                config_hash(&self.cfg),
                self.scale.to_bits()
            )
            .as_bytes(),
        )
    }

    /// Content hash identifying this cell: [`sweep_hash`] folded with the
    /// app, design label, and bandwidth scale, via [`caba_stats::checksum`].
    ///
    /// This is **the** cell key. The resume journal, the durable result
    /// store, and the `caba-serve` service all derive their keys here, so
    /// a result persisted by any one of them warm-starts the others.
    ///
    /// [`sweep_hash`]: CellSpec::sweep_hash
    pub fn content_hash(&self) -> u64 {
        checksum64(
            format!(
                "{:016x}|{}|{}|{:016x}",
                self.sweep_hash(),
                self.app,
                self.design.label(),
                self.bw_scale.to_bits()
            )
            .as_bytes(),
        )
    }

    /// Human-readable provenance label recorded next to stored results.
    pub fn label(&self) -> String {
        format!(
            "cell {}/{} @ {}x BW scale {}",
            self.app,
            self.design.label(),
            self.bw_scale,
            self.scale
        )
    }

    /// The store key of this app's warm Base snapshot at `warmup` cycles —
    /// the fork-from-checkpoint identity ([`crate::fork`]). The kernel's
    /// own `content_hash` covers instruction encodings only; the snapshot
    /// carries functional memory, so the app name and workload scale are
    /// folded in — restoring a same-code, different-scale snapshot would
    /// silently resurrect the wrong working set. Warm-ups always run on
    /// the Base design (the only forkable one), so the key ignores
    /// `self.design`.
    pub fn warm_snap_key(&self, kernel: &Kernel, warmup: u64) -> SnapKey {
        SnapKey {
            config_hash: config_hash(&self.cfg),
            kernel_hash: checksum64(
                format!(
                    "{:016x}|{}|{:016x}",
                    kernel.program().content_hash(),
                    self.app,
                    self.scale.to_bits()
                )
                .as_bytes(),
            ),
            design: "Base".to_string(),
            cycle: warmup,
        }
    }
}

/// Runs one cell from scratch and returns its result — the single kernel
/// entry point. Every executor (the parallel sweep, the resilient
/// journaled/stored layers, and the HTTP service) bottoms out here.
///
/// # Errors
///
/// Propagates the simulator's [`RunError`] (timeout, hang, audit failure)
/// — deterministic by construction, so callers never retry it.
///
/// # Panics
///
/// Panics if `spec.app` does not resolve. Specs built through
/// [`CellSpec::resolve`] or from figure cell lists cannot hit this; the
/// resilient executor additionally pre-checks names so a hand-built bad
/// spec fails typed instead.
pub fn run_cell(spec: &CellSpec) -> Result<CellResult, RunError> {
    let app_spec = app(spec.app).unwrap_or_else(|| panic!("unknown app {}", spec.app));
    let cfg = spec.cfg.with_bandwidth_scale(spec.bw_scale);
    let t0 = Instant::now();
    let stats = run_app(&app_spec, cfg, spec.design.make(), spec.scale)?;
    Ok(CellResult {
        cell: spec.cell(),
        stats,
        wall_s: t0.elapsed().as_secs_f64(),
    })
}

/// A design label that did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDesignError(pub String);

impl fmt::Display for ParseDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown design {:?} (expected one of: ", self.0)?;
        for (i, d) in DesignId::ALL.iter().enumerate() {
            write!(f, "{}{}", if i > 0 { ", " } else { "" }, d.label())?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ParseDesignError {}

impl fmt::Display for DesignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for DesignId {
    type Err = ParseDesignError;

    /// Parses a paper label (`"CABA-BDI"`), ASCII-case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DesignId::ALL
            .into_iter()
            .find(|d| d.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseDesignError(s.to_string()))
    }
}

/// The ported evaluation figures, typed. Replaces stringly figure
/// selection (`figure_cells(fig: &str)`): a `Figure` either exists or the
/// name failed to parse — there is no half-resolved state to thread
/// through the CLI and the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Figure {
    /// Figure 1: issue-slot taxonomy (apps × ½×/1×/2× bandwidth on Base).
    Fig01,
    /// Figure 7 (and 8/9): apps × the five-design comparison.
    Fig07,
    /// Figure 10: apps × the CABA algorithm variants (+ Base rows).
    Fig10,
    /// Figure 12: apps × ½×/1×/2× bandwidth × {Base, CABA-BDI}.
    Fig12,
}

impl Figure {
    /// Every ported figure.
    pub const ALL: [Figure; 4] = [Figure::Fig01, Figure::Fig07, Figure::Fig10, Figure::Fig12];

    /// The figures a default `caba-sweep` invocation runs (`fig01` has its
    /// own emitter binary and is not part of the default union).
    pub const DEFAULT_SWEEP: [Figure; 3] = [Figure::Fig07, Figure::Fig10, Figure::Fig12];

    /// The canonical lowercase name (`"fig07"`).
    pub fn name(self) -> &'static str {
        match self {
            Figure::Fig01 => "fig01",
            Figure::Fig07 => "fig07",
            Figure::Fig10 => "fig10",
            Figure::Fig12 => "fig12",
        }
    }

    /// This figure's cell matrix, in deterministic order.
    pub fn cells(self) -> Vec<SweepCell> {
        match self {
            Figure::Fig01 => fig01_cells(),
            Figure::Fig07 => fig07_cells(),
            Figure::Fig10 => fig10_cells(),
            Figure::Fig12 => fig12_cells(),
        }
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A figure name that did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFigureError(pub String);

impl fmt::Display for ParseFigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown figure {:?} (expected one of: fig01, fig07, fig10, fig12)",
            self.0
        )
    }
}

impl std::error::Error for ParseFigureError {}

impl FromStr for Figure {
    type Err = ParseFigureError;

    /// Parses a canonical name (`"fig07"`), ASCII-case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Figure::ALL
            .into_iter()
            .find(|f| f.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseFigureError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caba_sim::GpuConfig;

    fn tiny_spec() -> CellSpec {
        CellSpec {
            app: "CONS",
            design: DesignId::Base,
            bw_scale: 1.0,
            scale: 0.05,
            cfg: GpuConfig::small(),
        }
    }

    #[test]
    fn content_hash_is_stable_and_sensitive_to_every_identity_field() {
        let spec = tiny_spec();
        let base = spec.content_hash();
        assert_eq!(base, tiny_spec().content_hash(), "hash is a pure function");

        let mut other = spec;
        other.design = DesignId::CabaBdi;
        assert_ne!(base, other.content_hash(), "design is identity");
        let mut other = spec;
        other.bw_scale = 0.5;
        assert_ne!(base, other.content_hash(), "bandwidth is identity");
        let mut other = spec;
        other.scale = 0.1;
        assert_ne!(base, other.content_hash(), "workload scale is identity");
        let mut other = spec;
        other.cfg.mshrs += 1;
        assert_ne!(base, other.content_hash(), "machine config is identity");
        let mut other = spec;
        other.cfg.fault.seed = other.cfg.fault.seed.wrapping_add(1);
        assert_ne!(base, other.content_hash(), "fault seed is identity");

        // Worker-count and observability knobs are canonicalized away:
        // the same cell computed with different parallelism or tracing is
        // still the same cell.
        let mut tolerated = spec;
        tolerated.cfg.intra_jobs = 4;
        tolerated.cfg.checkpoint_interval = 500;
        assert_eq!(base, tolerated.content_hash());
    }

    #[test]
    fn resolve_interns_app_names_and_rejects_unknown() {
        let spec = CellSpec::resolve("CONS", DesignId::Base, 1.0, 0.05, GpuConfig::small())
            .expect("CONS resolves");
        assert_eq!(spec.app, "CONS");
        assert!(CellSpec::resolve("NOPE", DesignId::Base, 1.0, 0.05, GpuConfig::small()).is_none());
    }

    #[test]
    fn run_cell_produces_the_same_stats_as_run_app() {
        let spec = tiny_spec();
        let result = run_cell(&spec).expect("cell runs");
        let reference = caba_workloads::run_app(
            &caba_workloads::app("CONS").unwrap(),
            spec.cfg,
            spec.design.make(),
            spec.scale,
        )
        .expect("reference runs");
        assert_eq!(result.stats, reference);
        assert_eq!(result.cell, spec.cell());
    }

    #[test]
    fn design_labels_round_trip_through_fromstr_display() {
        for d in DesignId::ALL {
            let parsed: DesignId = d.label().parse().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(parsed, d);
            assert_eq!(format!("{d}"), d.label());
        }
        // Case-insensitive, and garbage is a typed error.
        assert_eq!("caba-bdi".parse::<DesignId>().unwrap(), DesignId::CabaBdi);
        let err = "Turbo-BDI".parse::<DesignId>().unwrap_err();
        assert!(err.to_string().contains("Turbo-BDI"));
    }

    #[test]
    fn figures_round_trip_and_match_cell_lists() {
        for fig in Figure::ALL {
            let parsed: Figure = fig.name().parse().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(parsed, fig);
            assert_eq!(format!("{fig}"), fig.name());
            assert!(!fig.cells().is_empty());
        }
        assert_eq!("FIG07".parse::<Figure>().unwrap(), Figure::Fig07);
        assert!("fig99".parse::<Figure>().is_err());
        // The typed lists equal what the deprecated shim serves.
        #[allow(deprecated)]
        for fig in Figure::ALL {
            assert_eq!(crate::figure_cells(fig.name()).unwrap(), fig.cells());
        }
    }
}
