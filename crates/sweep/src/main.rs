//! `caba-sweep` — parallel deterministic figure-sweep runner.
//!
//! Default mode runs the union of the ported figure sweeps (fig07, fig10,
//! fig12) in parallel and writes a machine-readable `BENCH_sweep.json`.
//! `--selftest` proves determinism: every ported figure's cell list is run
//! serially and in parallel, and the two `RunStats` vectors must be
//! bit-identical (exit code 1 otherwise).
//!
//! `--resume PATH` makes the sweep crash-resilient: every finished cell is
//! journaled to PATH, and re-running the same invocation re-runs only the
//! cells the journal is missing. Because each cell is bit-deterministic,
//! the resumed report's figure table is byte-identical to an uninterrupted
//! run's.

use caba_store::{write_file_atomic, FaultFs, FaultRates, Store};
use caba_sweep::{
    dedup_cells, figure_table, host_cores, run_cells, Figure, Sweep, SweepCell, SweepConfig,
    SweepReport,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    jobs: usize,
    intra_jobs: usize,
    ref_wall: Option<f64>,
    max_wall: Option<f64>,
    selftest: bool,
    baseline: bool,
    scale: Option<f64>,
    out: String,
    table: Option<String>,
    resume: Option<PathBuf>,
    checkpoint_every: u64,
    retries: u32,
    store_dir: Option<PathBuf>,
    store_cap: Option<u64>,
    store_fault_seed: u64,
    store_fault_rate: f64,
    figures: Vec<Figure>,
    apps: Option<Vec<String>>,
}

fn usage() -> ! {
    eprintln!(
        "usage: caba-sweep [--jobs N] [--intra-jobs N] [--scale F] [--baseline] [--selftest]\n\
         \x20                 [--resume PATH] [--checkpoint-every N] [--retries N] [--out PATH]\n\
         \x20                 [--store-dir DIR] [--store-cap BYTES] [--figures LIST] [--apps LIST]\n\
         \x20      caba-sweep store (scrub|gc|stats) --store-dir DIR [--store-cap BYTES] [--out PATH]\n\
         \n\
         --jobs N       total worker-thread budget (default: available parallelism)\n\
         --intra-jobs N worker threads INSIDE each simulation (default:\n\
                        CABA_INTRA_JOBS or 1); the cell-level fan-out becomes\n\
                        jobs / intra-jobs, so the thread budget is conserved.\n\
                        Results are bit-identical for any value.\n\
         --scale F      workload scale (default: CABA_BENCH_SCALE or 0.5; selftest: 0.05)\n\
         --baseline     also run the sweep fully serial (1 cell job, intra-jobs 1)\n\
                        and record the speedup\n\
         --ref-wall S   reference wall seconds from an earlier build (recorded\n\
                        as ref_wall_s / hot_path_speedup_vs_ref in the report)\n\
         --max-wall S   fail (exit 1) if the sweep's wall time exceeds S\n\
                        seconds — CI perf-regression gate\n\
         --resume PATH  journal finished cells to PATH and, if PATH already\n\
                        holds a journal for this sweep, re-run only missing\n\
                        cells (crash-resilient resume; panics are isolated\n\
                        per cell and retried)\n\
         --checkpoint-every N\n\
                        take a periodic in-memory machine snapshot every N\n\
                        cycles; enables time-travel hang forensics.\n\
                        N must be > 0 (omit the flag to disable)\n\
         --retries N    extra attempts per panicking cell under --resume\n\
                        (default 1; deterministic failures stop early)\n\
         --store-dir DIR\n\
                        durable content-addressed store: finished cells are\n\
                        persisted and looked up by content key, so a fresh\n\
                        process warm-starts bit-identically from an earlier\n\
                        (even killed) run's work\n\
         --store-cap BYTES\n\
                        after the sweep, garbage-collect the store down to\n\
                        BYTES via LRU eviction\n\
         --store-fault-seed N / --store-fault-rate F\n\
                        inject deterministic seeded I/O faults (torn writes,\n\
                        short reads, ENOSPC, failed renames/cleanups) under\n\
                        the store at per-op rate F — chaos testing; the\n\
                        sweep's results must be unaffected\n\
         --figures LIST comma-separated figure subset (default: fig07,fig10,fig12)\n\
         --apps LIST    comma-separated app-name filter applied to the cells\n\
         --selftest     verify parallel RunStats are bit-identical to serial per figure\n\
         --out PATH     report path (default: BENCH_sweep.json)\n\
         --table PATH   also write the deterministic figure table (the exact\n\
                        bytes caba-serve streams for the same cells)\n\
         \n\
         store scrub    verify every store entry's checksum; quarantine (never\n\
                        delete) corrupt entries and stale temps; write a JSON\n\
                        report to --out if given; exit 1 if anything was found\n\
         store gc       LRU-evict entries until the store fits --store-cap\n\
         store stats    print store inventory as JSON"
    );
    std::process::exit(2);
}

/// The `caba-sweep store (scrub|gc|stats)` maintenance subcommand.
fn store_command(verb: &str, rest: &[String]) -> ExitCode {
    let mut store_dir: Option<PathBuf> = None;
    let mut store_cap: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store-dir" => store_dir = it.next().map(PathBuf::from),
            "--store-cap" => store_cap = it.next().and_then(|v| v.parse().ok()),
            "--out" => out = it.next().cloned(),
            "--help" | "-h" => usage(),
            _ => {
                eprintln!("caba-sweep store: unknown flag {a}\n");
                usage();
            }
        }
    }
    let Some(dir) = store_dir else {
        eprintln!("caba-sweep store {verb}: --store-dir is required\n");
        usage();
    };
    let store = match Store::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("caba-sweep store {verb}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (json, ok) = match verb {
        "scrub" => match store.scrub() {
            Ok(report) => {
                eprintln!(
                    "scrub: {} ok, {} quarantined, {} skipped",
                    report.ok,
                    report.quarantined.len(),
                    report.skipped.len()
                );
                let clean = report.is_clean();
                (report.to_json(), clean)
            }
            Err(e) => {
                eprintln!("caba-sweep store scrub: {e}");
                return ExitCode::FAILURE;
            }
        },
        "gc" => {
            let Some(cap) = store_cap else {
                eprintln!("caba-sweep store gc: --store-cap is required\n");
                usage();
            };
            match store.gc(cap) {
                Ok(report) => {
                    eprintln!(
                        "gc: {} -> {} bytes, {} evicted, {} failed",
                        report.before_bytes,
                        report.after_bytes,
                        report.evicted.len(),
                        report.failed
                    );
                    (report.to_json(), report.failed == 0)
                }
                Err(e) => {
                    eprintln!("caba-sweep store gc: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "stats" => match store.stats() {
            Ok(stats) => (stats.to_json(), true),
            Err(e) => {
                eprintln!("caba-sweep store stats: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("caba-sweep store: unknown verb {verb:?} (scrub|gc|stats)\n");
            usage();
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = write_file_atomic(&path, json.as_bytes()) {
                eprintln!("caba-sweep store {verb}: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("report written to {path}");
        }
        None => print!("{json}"),
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        intra_jobs: env_intra_jobs(),
        ref_wall: None,
        max_wall: None,
        selftest: false,
        baseline: false,
        scale: None,
        out: "BENCH_sweep.json".to_string(),
        table: None,
        resume: None,
        checkpoint_every: 0,
        retries: 1,
        store_dir: None,
        store_cap: None,
        store_fault_seed: 0,
        store_fault_rate: 0.0,
        figures: Figure::DEFAULT_SWEEP.to_vec(),
        apps: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => args.jobs = parse_flag(&a, it.next()),
            "--intra-jobs" => args.intra_jobs = parse_flag(&a, it.next()),
            "--scale" => args.scale = Some(parse_flag(&a, it.next())),
            "--out" => args.out = it.next().unwrap_or_else(|| missing_value("--out")),
            "--table" => args.table = Some(it.next().unwrap_or_else(|| missing_value("--table"))),
            "--ref-wall" => args.ref_wall = Some(parse_flag(&a, it.next())),
            "--max-wall" => args.max_wall = Some(parse_flag(&a, it.next())),
            "--resume" => {
                args.resume = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| missing_value("--resume")),
                ));
            }
            "--checkpoint-every" => {
                args.checkpoint_every = parse_flag(&a, it.next());
                if args.checkpoint_every == 0 {
                    // An explicit 0 would silently never checkpoint —
                    // reject it rather than guess the intent.
                    eprintln!(
                        "caba-sweep: --checkpoint-every 0 would never take a checkpoint; \
                         omit the flag to disable checkpointing\n"
                    );
                    usage();
                }
            }
            "--retries" => args.retries = parse_flag(&a, it.next()),
            "--store-dir" => {
                args.store_dir = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| missing_value("--store-dir")),
                ));
            }
            "--store-cap" => args.store_cap = Some(parse_flag(&a, it.next())),
            "--store-fault-seed" => args.store_fault_seed = parse_flag(&a, it.next()),
            "--store-fault-rate" => args.store_fault_rate = parse_flag(&a, it.next()),
            "--figures" => {
                let list: String = it.next().unwrap_or_else(|| missing_value("--figures"));
                args.figures = list
                    .split(',')
                    .map(|s| {
                        s.trim().parse::<Figure>().unwrap_or_else(|e| {
                            eprintln!("caba-sweep: {e}\n");
                            usage();
                        })
                    })
                    .collect();
            }
            "--apps" => {
                let list: String = it.next().unwrap_or_else(|| missing_value("--apps"));
                args.apps = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--baseline" => args.baseline = true,
            "--selftest" => args.selftest = true,
            "--help" | "-h" => usage(),
            _ => {
                eprintln!("caba-sweep: unknown flag {a}\n");
                usage();
            }
        }
    }
    if args.jobs == 0 || args.intra_jobs == 0 {
        eprintln!("caba-sweep: --jobs and --intra-jobs must be nonzero\n");
        usage();
    }
    let cores = host_cores();
    if args.jobs > cores {
        eprintln!(
            "caba-sweep: --jobs {} exceeds available parallelism ({cores}); \
             clamping to {cores} (oversubscribed workers only add contention)",
            args.jobs
        );
        args.jobs = cores;
    }
    args
}

/// Parses a flag value, exiting with usage (code 2) on a missing or
/// malformed value rather than panicking.
fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let v = value.unwrap_or_else(|| missing_value(flag));
    v.parse().unwrap_or_else(|_| {
        eprintln!("caba-sweep: invalid value {v:?} for {flag}\n");
        usage();
    })
}

fn missing_value(flag: &str) -> ! {
    eprintln!("caba-sweep: {flag} requires a value\n");
    usage();
}

fn env_scale() -> f64 {
    std::env::var("CABA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

fn env_intra_jobs() -> usize {
    std::env::var("CABA_INTRA_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

fn main() -> ExitCode {
    // `caba-sweep store (scrub|gc|stats)` is a separate maintenance mode.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().is_some_and(|a| a == "store") {
        let Some(verb) = argv.get(1) else {
            eprintln!("caba-sweep store: missing verb (scrub|gc|stats)\n");
            usage();
        };
        return store_command(verb, &argv[2..]);
    }
    let args = parse_args();
    let (report, ok) = if args.selftest {
        selftest(&args)
    } else {
        match sweep(&args) {
            Ok(r) => (r, true),
            Err(e) => {
                eprintln!("caba-sweep: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Err(e) = write_file_atomic(&args.out, report.to_json().as_bytes()) {
        eprintln!("caba-sweep: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("report written to {}", args.out);
    if let Some(path) = &args.table {
        if let Err(e) = write_file_atomic(path, figure_table(&report.results).as_bytes()) {
            eprintln!("caba-sweep: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("figure table written to {path}");
    }
    if let Some(max) = args.max_wall {
        let wall = report.parallel_wall_s;
        if wall > max {
            eprintln!(
                "caba-sweep: PERF REGRESSION: sweep took {wall:.3}s, budget {max:.3}s \
                 (raise --max-wall only if the slowdown is intended)"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("perf gate OK: {wall:.3}s <= {max:.3}s budget");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("selftest FAILED: parallel sweep is not bit-identical to serial");
        ExitCode::FAILURE
    }
}

/// Splits the total thread budget between cell-level fan-out and intra-run
/// workers: `intra_jobs` threads live inside each simulation, so only
/// `jobs / intra_jobs` cells run concurrently.
fn cell_jobs(args: &Args) -> usize {
    (args.jobs / args.intra_jobs).max(1)
}

fn base_config(args: &Args, default_scale: f64) -> SweepConfig {
    let mut sc = SweepConfig {
        scale: args.scale.unwrap_or(default_scale),
        ..SweepConfig::default()
    };
    sc.cfg.intra_jobs = args.intra_jobs;
    sc.cfg.checkpoint_interval = args.checkpoint_every;
    sc
}

/// Opens the durable store per the CLI flags: plain, or over a seeded
/// [`FaultFs`] when chaos injection was requested.
fn open_store(args: &Args) -> Result<Option<Store>, Box<dyn std::error::Error>> {
    let Some(dir) = &args.store_dir else {
        return Ok(None);
    };
    let store = if args.store_fault_rate > 0.0 {
        eprintln!(
            "  store: {} (fault injection: seed {}, rate {})",
            dir.display(),
            args.store_fault_seed,
            args.store_fault_rate
        );
        Store::open_with_fs(
            dir,
            Box::new(FaultFs::new(
                args.store_fault_seed,
                FaultRates::uniform(args.store_fault_rate),
            )),
        )?
    } else {
        eprintln!("  store: {}", dir.display());
        Store::open(dir)?
    };
    Ok(Some(store))
}

/// The selected figures' cells, deduplicated and app-filtered.
fn selected_cells(args: &Args) -> Vec<SweepCell> {
    let groups: Vec<_> = args.figures.iter().map(|f| f.cells()).collect();
    let mut cells = dedup_cells(&groups);
    if let Some(apps) = &args.apps {
        cells.retain(|c| apps.iter().any(|a| a == c.app));
    }
    cells
}

/// Full figure sweep; optionally measures a serial baseline first.
fn sweep(args: &Args) -> Result<SweepReport, Box<dyn std::error::Error>> {
    let sc = base_config(args, env_scale());
    let cells = selected_cells(args);
    let cjobs = cell_jobs(args);
    let fig_names: Vec<String> = args.figures.iter().map(Figure::to_string).collect();
    eprintln!(
        "sweep: {} cells ({}) at scale {} with {} cell jobs x {} intra jobs",
        cells.len(),
        fig_names.join("+"),
        sc.scale,
        cjobs,
        args.intra_jobs
    );
    let store = open_store(args)?;
    let serial_wall_s = if args.baseline {
        eprintln!("  serial baseline ...");
        let mut serial_sc = sc;
        serial_sc.cfg.intra_jobs = 1;
        let t0 = Instant::now();
        let serial = run_cells(&serial_sc, &cells, 1);
        let w = t0.elapsed().as_secs_f64();
        eprintln!("  serial: {w:.2}s over {} cells", serial.len());
        Some(w)
    } else {
        None
    };
    let t0 = Instant::now();
    let results = if args.resume.is_some() || store.is_some() {
        let mut sweep = Sweep::new(&sc, cells.clone())
            .jobs(cjobs)
            .retries(args.retries);
        if let Some(manifest) = &args.resume {
            eprintln!("  journaling to {} (resume-capable)", manifest.display());
            sweep = sweep.journal(manifest);
        }
        if let Some(store) = &store {
            sweep = sweep.store(store);
        }
        sweep.run()?.results
    } else {
        run_cells(&sc, &cells, cjobs)
    };
    let parallel_wall_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "  parallel ({cjobs} x {} jobs): {parallel_wall_s:.2}s",
        args.intra_jobs
    );
    if let Some(s) = serial_wall_s {
        eprintln!("  speedup: {:.2}x", s / parallel_wall_s);
    }
    if let Some(store) = &store {
        eprintln!(
            "  store: {} hits, {} misses",
            store.hit_count(),
            store.miss_count()
        );
        if let Some(cap) = args.store_cap {
            match store.gc(cap) {
                Ok(gc) => eprintln!(
                    "  store gc: {} -> {} bytes ({} evicted)",
                    gc.before_bytes,
                    gc.after_bytes,
                    gc.evicted.len()
                ),
                Err(e) => eprintln!("  store gc failed: {e}"),
            }
        }
    }
    Ok(SweepReport {
        mode: "sweep",
        scale: sc.scale,
        jobs: args.jobs,
        intra_jobs: args.intra_jobs,
        host_cores: host_cores(),
        figures: fig_names,
        serial_wall_s,
        ref_wall_s: args.ref_wall,
        parallel_wall_s,
        deterministic: None,
        results,
    })
}

/// Per-figure determinism proof: serial and parallel runs of the same cell
/// list must produce bit-identical `RunStats` in the same order. Returns
/// the report and whether every figure matched.
fn selftest(args: &Args) -> (SweepReport, bool) {
    let sc = base_config(args, 0.05);
    // The serial reference is fully serial: one cell at a time, one thread
    // inside each simulation.
    let mut serial_sc = sc;
    serial_sc.cfg.intra_jobs = 1;
    let cjobs = cell_jobs(args);
    let mut all_results = Vec::new();
    let mut serial_total = 0.0f64;
    let mut parallel_total = 0.0f64;
    let mut ok = true;
    for fig in Figure::DEFAULT_SWEEP {
        let cells = fig.cells();
        eprintln!(
            "selftest {fig}: {} cells at scale {} ({cjobs} cell jobs x {} intra jobs vs serial)",
            cells.len(),
            sc.scale,
            args.intra_jobs
        );
        let t0 = Instant::now();
        let serial = run_cells(&serial_sc, &cells, 1);
        let sw = t0.elapsed().as_secs_f64();
        serial_total += sw;
        let t0 = Instant::now();
        let parallel = run_cells(&sc, &cells, cjobs);
        let pw = t0.elapsed().as_secs_f64();
        parallel_total += pw;
        let mut mismatches = 0usize;
        for (s, p) in serial.iter().zip(&parallel) {
            if s.cell != p.cell || s.stats != p.stats {
                eprintln!("  MISMATCH {:?}", s.cell);
                mismatches += 1;
            }
        }
        if mismatches > 0 {
            ok = false;
            eprintln!("  {fig}: NONDETERMINISTIC ({mismatches} cells differ)");
        } else {
            eprintln!("  {fig}: deterministic; serial {sw:.2}s, parallel {pw:.2}s");
        }
        all_results.extend(parallel);
    }
    if ok {
        eprintln!(
            "selftest OK: all figures bit-identical; serial {serial_total:.2}s vs parallel {parallel_total:.2}s ({:.2}x)",
            serial_total / parallel_total
        );
    }
    let report = SweepReport {
        mode: "selftest",
        scale: sc.scale,
        jobs: args.jobs,
        intra_jobs: args.intra_jobs,
        host_cores: host_cores(),
        figures: Figure::DEFAULT_SWEEP
            .iter()
            .map(Figure::to_string)
            .collect(),
        serial_wall_s: Some(serial_total),
        ref_wall_s: args.ref_wall,
        parallel_wall_s: parallel_total,
        deterministic: Some(ok),
        results: all_results,
    };
    (report, ok)
}
