//! Deterministic parallel sweep executor for figure regeneration.
//!
//! The paper's evaluation (Figures 7–13) is a matrix of `(application,
//! design, configuration)` cells, each an independent cycle-accurate run.
//! Runs share no state — `caba_workloads::run_app` builds a fresh [`Gpu`]
//! per cell — so the sweep is embarrassingly parallel. This crate fans the
//! cells out over `std::thread::scope` workers (no external dependencies;
//! the workspace keeps building offline) while keeping results
//! **bit-identical and identically ordered** to a serial sweep: workers
//! claim cell *indices* from a shared atomic counter and write each result
//! into its input slot, so downstream table generation sees the same
//! `RunStats` in the same order regardless of completion order or worker
//! count.
//!
//! [`Gpu`]: caba_sim::Gpu
//!
//! # Examples
//!
//! ```no_run
//! use caba_sweep::{fig07_cells, run_cells, SweepConfig};
//!
//! let sc = SweepConfig { scale: 0.05, ..SweepConfig::default() };
//! let cells = fig07_cells();
//! let results = run_cells(&sc, &cells, 8);
//! assert_eq!(results.len(), cells.len());
//! ```

pub mod builder;
pub mod cell;
pub mod fork;
pub mod resilient;

pub use builder::{ForkMeta, Sweep, SweepRun};
pub use cell::{run_cell, CellSpec, Figure, ParseDesignError, ParseFigureError};
#[allow(deprecated)]
pub use fork::run_forked_stored;
pub use fork::{run_forked, ForkError, ForkedCell, ForkedSweep};
#[allow(deprecated)]
pub use resilient::{cell_key, run_cells_journaled, run_cells_stored, sweep_key};
pub use resilient::{
    decode_result_payload, encode_result_payload, figure_table, figure_table_line,
    run_cell_resilient, CellFailure, FailureClass, ResilientOutcome, SweepError,
};

use caba_compress::Algorithm;
use caba_core::CabaController;
use caba_energy::DesignKind;
use caba_sim::{Design, GpuConfig, RunStats};
use caba_stats::json::fmt_f64 as json_f64;
use caba_workloads::eval_apps;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Identifies a design point in the run matrix (a cloneable stand-in for
/// [`Design`], which owns a controller and therefore is not `Clone`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignId {
    /// Uncompressed baseline.
    Base,
    /// HW-BDI-Mem: dedicated logic, memory-bandwidth compression only.
    HwBdiMem,
    /// HW-BDI: dedicated logic, interconnect + memory compression.
    HwBdi,
    /// CABA-BDI: assist warps.
    CabaBdi,
    /// Ideal-BDI: no compression overheads.
    IdealBdi,
    /// CABA-FPC.
    CabaFpc,
    /// CABA-C-Pack.
    CabaCPack,
    /// CABA-BestOfAll.
    CabaBest,
}

impl DesignId {
    /// Every design point, in declaration order — the [`FromStr`]
    /// parse domain.
    ///
    /// [`FromStr`]: std::str::FromStr
    pub const ALL: [DesignId; 8] = [
        DesignId::Base,
        DesignId::HwBdiMem,
        DesignId::HwBdi,
        DesignId::CabaBdi,
        DesignId::IdealBdi,
        DesignId::CabaFpc,
        DesignId::CabaCPack,
        DesignId::CabaBest,
    ];

    /// The five designs of Figures 7–9.
    pub const FIG7: [DesignId; 5] = [
        DesignId::Base,
        DesignId::HwBdiMem,
        DesignId::HwBdi,
        DesignId::CabaBdi,
        DesignId::IdealBdi,
    ];

    /// The four CABA algorithm variants of Figure 10.
    pub const FIG10: [DesignId; 4] = [
        DesignId::CabaFpc,
        DesignId::CabaBdi,
        DesignId::CabaCPack,
        DesignId::CabaBest,
    ];

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            DesignId::Base => "Base",
            DesignId::HwBdiMem => "HW-BDI-Mem",
            DesignId::HwBdi => "HW-BDI",
            DesignId::CabaBdi => "CABA-BDI",
            DesignId::IdealBdi => "Ideal-BDI",
            DesignId::CabaFpc => "CABA-FPC",
            DesignId::CabaCPack => "CABA-CPack",
            DesignId::CabaBest => "CABA-BestOfAll",
        }
    }

    /// Instantiates the design.
    pub fn make(self) -> Design {
        match self {
            DesignId::Base => Design::Base,
            DesignId::HwBdiMem => Design::HwMemOnly {
                alg: Algorithm::Bdi,
            },
            DesignId::HwBdi => Design::HwFull {
                alg: Algorithm::Bdi,
                ideal: false,
            },
            DesignId::IdealBdi => Design::HwFull {
                alg: Algorithm::Bdi,
                ideal: true,
            },
            DesignId::CabaBdi => Design::Caba(Box::new(CabaController::bdi())),
            DesignId::CabaFpc => Design::Caba(Box::new(CabaController::fpc())),
            DesignId::CabaCPack => Design::Caba(Box::new(CabaController::cpack())),
            DesignId::CabaBest => Design::Caba(Box::new(CabaController::best_of_all())),
        }
    }

    /// The energy-accounting kind.
    pub fn energy_kind(self) -> DesignKind {
        match self {
            DesignId::Base => DesignKind::Base,
            DesignId::HwBdiMem | DesignId::HwBdi => DesignKind::DedicatedLogic,
            DesignId::IdealBdi => DesignKind::Ideal,
            _ => DesignKind::Caba,
        }
    }
}

/// One sweep cell: an application under a design at a bandwidth scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Application name (resolvable via [`caba_workloads::app`]).
    pub app: &'static str,
    /// The design point.
    pub design: DesignId,
    /// Bandwidth scale applied to the machine configuration (1.0 = stock).
    pub bw_scale: f64,
}

impl SweepCell {
    fn key(&self) -> (&'static str, DesignId, u64) {
        (self.app, self.design, self.bw_scale.to_bits())
    }
}

/// Sweep-wide options shared by every cell.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Workload scale factor (grid/working-set size).
    pub scale: f64,
    /// The machine configuration (before per-cell bandwidth scaling).
    pub cfg: GpuConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            scale: 0.5,
            cfg: GpuConfig::isca2015_scaled(),
        }
    }
}

/// Result of one cell: the run's statistics plus executor-measured wall
/// time.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that produced this result.
    pub cell: SweepCell,
    /// The run's statistics (bit-identical to a serial run of the cell).
    pub stats: RunStats,
    /// Wall-clock seconds this cell took inside its worker.
    pub wall_s: f64,
}

/// Runs every cell and returns results in **input order**, regardless of
/// `jobs` or completion order.
///
/// Each worker claims the next unclaimed index from a shared atomic
/// counter (work-stealing over a static list), simulates the cell on its
/// own fresh [`caba_sim::Gpu`], and stores the result into the slot for
/// that index. With `jobs == 1` this degenerates to the serial loop.
///
/// # Panics
///
/// Panics (propagating out of the thread scope) if any cell's simulation
/// returns an error — a sweep with a hung or misconfigured cell has no
/// meaningful aggregate.
pub fn run_cells(sc: &SweepConfig, cells: &[SweepCell], jobs: usize) -> Vec<CellResult> {
    let jobs = jobs.clamp(1, cells.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let cell = cells[i];
                let result = run_cell(&CellSpec::new(sc, cell)).unwrap_or_else(|e| {
                    panic!(
                        "{} / {} @ {}x BW: {e}",
                        cell.app,
                        cell.design.label(),
                        cell.bw_scale
                    )
                });
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every cell was claimed and ran")
        })
        .collect()
}

/// The ported figure sweeps run by the default `caba-sweep` invocation.
#[deprecated(
    since = "0.1.0",
    note = "use the typed `Figure::DEFAULT_SWEEP` instead"
)]
pub const FIGURES: [&str; 3] = ["fig07", "fig10", "fig12"];

/// Cells of Figure 1: evaluation apps × ½×/1×/2× bandwidth on the
/// uncompressed baseline, from which the issue-slot taxonomy fractions are
/// reported (see `caba-sweep`'s `fig01` binary).
pub fn fig01_cells() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for a in eval_apps() {
        for bw in [0.5, 1.0, 2.0] {
            cells.push(SweepCell {
                app: a.name,
                design: DesignId::Base,
                bw_scale: bw,
            });
        }
    }
    cells
}

/// Cells of Figure 7 (and 8/9, which reuse the same runs): evaluation apps
/// × the five-design comparison at stock bandwidth.
pub fn fig07_cells() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for a in eval_apps() {
        for d in DesignId::FIG7 {
            cells.push(SweepCell {
                app: a.name,
                design: d,
                bw_scale: 1.0,
            });
        }
    }
    cells
}

/// Cells of Figure 10: evaluation apps × the CABA algorithm variants, plus
/// the Base cell each row normalizes against.
pub fn fig10_cells() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for a in eval_apps() {
        cells.push(SweepCell {
            app: a.name,
            design: DesignId::Base,
            bw_scale: 1.0,
        });
        for d in DesignId::FIG10 {
            cells.push(SweepCell {
                app: a.name,
                design: d,
                bw_scale: 1.0,
            });
        }
    }
    cells
}

/// Cells of Figure 12: evaluation apps × ½×/1×/2× bandwidth × {Base,
/// CABA-BDI}.
pub fn fig12_cells() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for a in eval_apps() {
        for bw in [0.5, 1.0, 2.0] {
            for d in [DesignId::Base, DesignId::CabaBdi] {
                cells.push(SweepCell {
                    app: a.name,
                    design: d,
                    bw_scale: bw,
                });
            }
        }
    }
    cells
}

/// Cells of a figure by name (`"fig01"`, `"fig07"`, `"fig10"`, `"fig12"`).
#[deprecated(
    since = "0.1.0",
    note = "parse a typed `Figure` and call `Figure::cells` instead"
)]
pub fn figure_cells(fig: &str) -> Option<Vec<SweepCell>> {
    fig.parse::<Figure>().ok().map(Figure::cells)
}

/// The union of several figures' cells with duplicates removed (first
/// occurrence wins), preserving deterministic order.
pub fn dedup_cells(groups: &[Vec<SweepCell>]) -> Vec<SweepCell> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for g in groups {
        for &c in g {
            if seen.insert(c.key()) {
                out.push(c);
            }
        }
    }
    out
}

/// The host's available parallelism (logical cores visible to this
/// process), or 1 when the query fails. Recorded in every report so a
/// `BENCH_sweep.json` from one machine is comparable to another's, and
/// used by the CLI to clamp `--jobs` before oversubscribing.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A machine-readable sweep report, serialized to `BENCH_sweep.json`.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// `"sweep"` or `"selftest"`.
    pub mode: &'static str,
    /// Workload scale the cells ran at.
    pub scale: f64,
    /// Worker count of the parallel run (total thread budget).
    pub jobs: usize,
    /// Intra-run worker threads per cell ([`GpuConfig::intra_jobs`]); the
    /// cell-level fan-out is `jobs / intra_jobs`.
    pub intra_jobs: usize,
    /// Logical cores the host exposed at run time ([`host_cores`]);
    /// contextualizes the wall-clock numbers across machines.
    pub host_cores: usize,
    /// Which figures' cells are covered.
    pub figures: Vec<String>,
    /// Serial (jobs = 1) total wall seconds, when measured.
    pub serial_wall_s: Option<f64>,
    /// Reference wall seconds for the same sweep on an earlier build
    /// (`--ref-wall`), for tracking hot-path wins across revisions.
    pub ref_wall_s: Option<f64>,
    /// Parallel total wall seconds.
    pub parallel_wall_s: f64,
    /// Whether the selftest proved parallel == serial (selftest mode).
    pub deterministic: Option<bool>,
    /// Per-cell results of the parallel run.
    pub results: Vec<CellResult>,
}

impl SweepReport {
    /// Total simulated cycles over all cells.
    pub fn total_sim_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.stats.cycles).sum()
    }

    /// Serial-vs-parallel wall-clock speedup, when a baseline was measured.
    pub fn speedup(&self) -> Option<f64> {
        self.serial_wall_s.map(|s| s / self.parallel_wall_s)
    }

    /// Renders the report as JSON (hand-rolled; no serde dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096 + 128 * self.results.len());
        s.push_str("{\n");
        s.push_str("  \"schema\": \"caba-sweep-v1\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!("  \"scale\": {},\n", json_f64(self.scale)));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"intra_jobs\": {},\n", self.intra_jobs));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        let figs: Vec<String> = self.figures.iter().map(|f| format!("\"{f}\"")).collect();
        s.push_str(&format!("  \"figures\": [{}],\n", figs.join(", ")));
        s.push_str(&format!("  \"num_cells\": {},\n", self.results.len()));
        let cycles = self.total_sim_cycles();
        s.push_str(&format!("  \"total_sim_cycles\": {cycles},\n"));
        if let Some(w) = self.serial_wall_s {
            s.push_str(&format!("  \"serial_wall_s\": {},\n", json_f64(w)));
            s.push_str(&format!(
                "  \"serial_sim_cycles_per_sec\": {},\n",
                json_f64(cycles as f64 / w)
            ));
        }
        s.push_str(&format!(
            "  \"parallel_wall_s\": {},\n",
            json_f64(self.parallel_wall_s)
        ));
        s.push_str(&format!(
            "  \"parallel_sim_cycles_per_sec\": {},\n",
            json_f64(cycles as f64 / self.parallel_wall_s)
        ));
        if let Some(sp) = self.speedup() {
            s.push_str(&format!("  \"speedup\": {},\n", json_f64(sp)));
        }
        if let Some(r) = self.ref_wall_s {
            s.push_str(&format!("  \"ref_wall_s\": {},\n", json_f64(r)));
            let best = self.serial_wall_s.unwrap_or(self.parallel_wall_s);
            s.push_str(&format!(
                "  \"hot_path_speedup_vs_ref\": {},\n",
                json_f64(r / best)
            ));
        }
        if let Some(d) = self.deterministic {
            s.push_str(&format!("  \"deterministic\": {d},\n"));
        }
        s.push_str("  \"cells\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"app\": \"{}\", \"design\": \"{}\", \"bw\": {}, \"wall_s\": {}, \"cycles_per_sec\": {}, \"summary\": {}}}{sep}\n",
                r.cell.app,
                r.cell.design.label(),
                json_f64(r.cell.bw_scale),
                json_f64(r.wall_s),
                json_f64(r.stats.cycles as f64 / r.wall_s.max(1e-9)),
                r.stats.summary().to_json(),
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_cells_are_deterministic_and_nonempty() {
        for fig in Figure::ALL {
            let a = fig.cells();
            let b = fig.cells();
            assert!(!a.is_empty(), "{fig}");
            assert_eq!(a, b, "{fig}");
        }
        assert!("fig99".parse::<Figure>().is_err());
    }

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        let union = dedup_cells(&[fig07_cells(), fig10_cells(), fig12_cells()]);
        let f7 = fig07_cells();
        assert_eq!(&union[..f7.len()], &f7[..], "fig07 cells lead the union");
        let mut seen = std::collections::HashSet::new();
        for c in &union {
            assert!(seen.insert(c.key()), "duplicate cell {c:?}");
        }
        // fig10 overlaps fig07 in Base and CABA-BDI; fig12 overlaps at 1x.
        let total = f7.len() + fig10_cells().len() + fig12_cells().len();
        assert!(union.len() < total);
    }

    #[test]
    fn report_renders_valid_shape() {
        let r = SweepReport {
            mode: "selftest",
            scale: 0.05,
            jobs: 4,
            intra_jobs: 2,
            host_cores: 8,
            figures: vec!["fig07".into()],
            serial_wall_s: Some(2.0),
            ref_wall_s: None,
            parallel_wall_s: 0.5,
            deterministic: Some(true),
            results: vec![CellResult {
                cell: SweepCell {
                    app: "CONS",
                    design: DesignId::Base,
                    bw_scale: 1.0,
                },
                stats: RunStats {
                    cycles: 100,
                    app_instructions: 250,
                    ..Default::default()
                },
                wall_s: 0.5,
            }],
        };
        let j = r.to_json();
        caba_stats::json::validate(&j).expect("report JSON parses");
        assert!(j.contains("\"speedup\": 4"), "{j}");
        assert!(j.contains("\"deterministic\": true"), "{j}");
        assert!(j.contains("\"host_cores\": 8"), "{j}");
        // Derived rates come from RunStats::summary(), nested per cell.
        assert!(j.contains("\"summary\": {\"cycles\": 100"), "{j}");
        assert!(j.contains("\"ipc\": 2.5"), "{j}");
        assert!(j.ends_with("]\n}\n"), "{j}");
    }

    #[test]
    fn parallel_results_match_serial_on_a_tiny_sweep() {
        let sc = SweepConfig {
            scale: 0.05,
            cfg: GpuConfig::small(),
        };
        let cells: Vec<SweepCell> = [
            ("CONS", DesignId::Base),
            ("BFS", DesignId::CabaBdi),
            ("MM", DesignId::HwBdi),
            ("LPS", DesignId::Base),
        ]
        .into_iter()
        .map(|(app, design)| SweepCell {
            app,
            design,
            bw_scale: 1.0,
        })
        .collect();
        let serial = run_cells(&sc, &cells, 1);
        let parallel = run_cells(&sc, &cells, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.cell, p.cell);
            assert_eq!(s.stats, p.stats, "{:?}", s.cell);
        }
    }
}
