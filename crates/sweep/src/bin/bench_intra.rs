//! `bench-intra` — wall-clock benchmark of intra-run sharding.
//!
//! Runs one heavy sweep cell (default: the largest fig07 cell, PVR under
//! CABA-BDI) once per requested `intra_jobs` value, checks every run's
//! `RunStats` are bit-identical to the serial run, and writes a
//! machine-readable `BENCH_intra.json`. The report records the host's
//! available parallelism so a 1-core container's numbers are not mistaken
//! for a scaling result.

use caba_sim::GpuConfig;
use caba_sweep::DesignId;
use caba_workloads::{app, run_app};
use std::time::Instant;

struct Args {
    app: String,
    design: DesignId,
    scale: f64,
    jobs: Vec<usize>,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-intra [--app NAME] [--design ID] [--scale F] [--jobs LIST] [--out PATH]\n\
         \n\
         --app NAME    workload (default: PVR, the largest fig07 cell)\n\
         --design ID   one of base|hw-bdi|caba-bdi (default: caba-bdi)\n\
         --scale F     workload scale (default: CABA_BENCH_SCALE or 0.5)\n\
         --jobs LIST   comma-separated intra_jobs values (default: 1,2,4)\n\
         --out PATH    report path (default: BENCH_intra.json)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        app: "PVR".to_string(),
        design: DesignId::CabaBdi,
        scale: std::env::var("CABA_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.5),
        jobs: vec![1, 2, 4],
        out: "BENCH_intra.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => args.app = it.next().unwrap_or_else(|| usage()),
            "--design" => {
                args.design = match it.next().as_deref() {
                    Some("base") => DesignId::Base,
                    Some("hw-bdi") => DesignId::HwBdi,
                    Some("caba-bdi") => DesignId::CabaBdi,
                    _ => usage(),
                }
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|x| x.parse().unwrap_or_else(|_| usage()))
                            .collect()
                    })
                    .unwrap_or_else(|| usage());
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    if args.jobs.is_empty() || args.jobs.contains(&0) {
        usage();
    }
    args
}

fn main() -> std::process::ExitCode {
    let args = parse_args();
    let Some(spec) = app(&args.app) else {
        eprintln!("bench-intra: unknown app {}", args.app);
        return std::process::ExitCode::FAILURE;
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "bench-intra: {} / {} at scale {} (host threads: {host_threads})",
        args.app,
        args.design.label(),
        args.scale
    );

    let mut rows = Vec::new();
    let mut serial: Option<(f64, caba_sim::RunStats)> = None;
    for &jobs in &args.jobs {
        let mut cfg = GpuConfig::isca2015_scaled();
        cfg.intra_jobs = jobs;
        let t0 = Instant::now();
        let stats = match run_app(&spec, cfg, args.design.make(), args.scale) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench-intra: {} @ intra_jobs={jobs}: {e}", args.app);
                return std::process::ExitCode::FAILURE;
            }
        };
        let wall = t0.elapsed().as_secs_f64();
        let (identical, speedup) = match &serial {
            None => (true, 1.0),
            Some((sw, ss)) => (*ss == stats, sw / wall),
        };
        if !identical {
            eprintln!("bench-intra: RunStats diverged at intra_jobs={jobs} — determinism bug");
            return std::process::ExitCode::FAILURE;
        }
        eprintln!(
            "  intra_jobs={jobs}: {wall:.3}s, {} cycles, {:.0} cycles/s, {speedup:.2}x vs serial",
            stats.cycles,
            stats.cycles as f64 / wall
        );
        if serial.is_none() {
            serial = Some((wall, stats.clone()));
        }
        rows.push((jobs, wall, stats.cycles, speedup));
    }

    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"caba-bench-intra-v1\",\n");
    j.push_str(&format!("  \"app\": \"{}\",\n", args.app));
    j.push_str(&format!("  \"design\": \"{}\",\n", args.design.label()));
    j.push_str(&format!("  \"scale\": {},\n", args.scale));
    j.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    j.push_str("  \"deterministic\": true,\n");
    j.push_str("  \"runs\": [\n");
    for (i, (jobs, wall, cycles, speedup)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        j.push_str(&format!(
            "    {{\"intra_jobs\": {jobs}, \"wall_s\": {wall:.6}, \"cycles\": {cycles}, \"cycles_per_sec\": {:.0}, \"speedup_vs_serial\": {speedup:.4}}}{sep}\n",
            *cycles as f64 / wall
        ));
    }
    j.push_str("  ]\n}\n");
    if let Err(e) = caba_store::write_file_atomic(std::path::Path::new(&args.out), j.as_bytes()) {
        eprintln!("bench-intra: writing {}: {e}", args.out);
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("report written to {}", args.out);
    std::process::ExitCode::SUCCESS
}
