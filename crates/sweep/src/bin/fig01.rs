//! `fig01` — Figure 1 issue-slot taxonomy emitter.
//!
//! Runs the Figure 1 cell matrix (evaluation apps × ½×/1×/2× bandwidth on
//! the baseline design), checks taxonomy conservation on every cell
//! (`Σ buckets == cycles × schedulers × SMs`), and writes a machine-readable
//! `BENCH_fig01.json` whose per-cell derived rates all come from
//! [`RunStats::summary`](caba_sim::RunStats::summary).
//!
//! ```sh
//! cargo run --release -p caba-sweep --bin fig01 -- \
//!     --scale 0.25 --apps CONS --check --trace fig01_trace.json
//! ```
//!
//! `--trace PATH` reruns the first cell with full observability
//! ([`TraceConfig::full`] + [`MetricsLevel::Full`]) and writes its Perfetto
//! trace to PATH; the metric snapshot lands in the report under
//! `"traced_cell"`. `--check` validates every emitted JSON document with the
//! in-repo checker and exits nonzero on malformed output.

use caba_sim::{Gpu, GpuConfig, MetricsLevel, TraceConfig};
use caba_stats::json;
use caba_sweep::{fig01_cells, run_cells, SweepCell, SweepConfig};
use caba_workloads::app;

struct Args {
    scale: f64,
    jobs: usize,
    intra_jobs: usize,
    apps: Option<Vec<String>>,
    trace: Option<String>,
    check: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: fig01 [--scale F] [--jobs N] [--intra-jobs N] [--apps A,B,..] \
         [--trace PATH] [--check] [--out PATH]\n\
         \n\
         --scale F      workload scale (default 0.25)\n\
         --jobs N       total worker-thread budget (default: available parallelism)\n\
         --intra-jobs N worker threads inside each simulation (default 1)\n\
         --apps A,B     restrict to a comma-separated subset of apps\n\
         --trace PATH   rerun the first cell fully observed and write its\n\
                        Perfetto trace (plus a metric snapshot in the report)\n\
         --check        validate all emitted JSON with the in-repo checker\n\
         --out PATH     report path (default: BENCH_fig01.json)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.25,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        intra_jobs: 1,
        apps: None,
        trace: None,
        check: false,
        out: "BENCH_fig01.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--intra-jobs" => {
                args.intra_jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--apps" => {
                args.apps = Some(
                    it.next()
                        .unwrap_or_else(|| usage())
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--trace" => args.trace = Some(it.next().unwrap_or_else(|| usage())),
            "--check" => args.check = true,
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.jobs == 0 || args.intra_jobs == 0 {
        usage();
    }
    args
}

/// Reruns `cell` with tracing and per-event metrics on; returns the metric
/// snapshot as JSON after writing the Perfetto trace to `path`.
fn run_traced_cell(cell: SweepCell, scale: f64, path: &str, check: bool) -> Result<String, String> {
    let spec = app(cell.app).ok_or_else(|| format!("unknown app {}", cell.app))?;
    let cfg = GpuConfig::isca2015_scaled()
        .with_bandwidth_scale(cell.bw_scale)
        .with_trace(TraceConfig::full(256))
        .with_metrics(MetricsLevel::Full);
    let mut gpu = Gpu::new(cfg, cell.design.make());
    spec.load_inputs(&mut gpu, scale);
    let stats = gpu
        .run(&spec.kernel(scale), 2_000_000_000)
        .map_err(|e| format!("traced cell {}: {e}", cell.app))?;
    let trace = gpu.take_trace().expect("tracing was enabled");
    let trace_json = trace.to_chrome_json();
    if check {
        json::validate(&trace_json).map_err(|e| format!("Perfetto trace JSON invalid: {e}"))?;
    }
    caba_store::write_file_atomic(std::path::Path::new(path), trace_json.as_bytes())
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!(
        "  traced {} @ {}x BW: {} samples, {} events -> {path}",
        cell.app,
        cell.bw_scale,
        trace.samples.len(),
        trace.events.len()
    );
    let snap = gpu.metrics_snapshot(&stats).expect("metrics were enabled");
    Ok(format!(
        "{{\"app\": \"{}\", \"bw\": {}, \"metrics\": {}}}",
        cell.app,
        json::fmt_f64(cell.bw_scale),
        snap.to_json()
    ))
}

fn main() -> std::process::ExitCode {
    let args = parse_args();
    let mut cells = fig01_cells();
    if let Some(apps) = &args.apps {
        cells.retain(|c| apps.iter().any(|a| a == c.app));
        if cells.is_empty() {
            eprintln!("no cells left after --apps filter");
            std::process::exit(2);
        }
    }
    let mut sc = SweepConfig {
        scale: args.scale,
        ..SweepConfig::default()
    };
    sc.cfg.intra_jobs = args.intra_jobs;
    let cjobs = (args.jobs / args.intra_jobs).max(1);
    eprintln!(
        "fig01: {} cells at scale {} with {cjobs} cell jobs x {} intra jobs",
        cells.len(),
        sc.scale,
        args.intra_jobs
    );
    let results = run_cells(&sc, &cells, cjobs);

    // Taxonomy conservation: every scheduler slot of every cycle must be in
    // exactly one Fig. 1 bucket.
    let slots_per_cycle = (sc.cfg.num_sms * sc.cfg.schedulers_per_sm) as u64;
    for r in &results {
        let expected = r.stats.cycles * slots_per_cycle;
        if r.stats.breakdown.total() != expected {
            eprintln!(
                "CONSERVATION VIOLATION {} @ {}x BW: buckets sum to {} but {} slots elapsed",
                r.cell.app,
                r.cell.bw_scale,
                r.stats.breakdown.total(),
                expected
            );
            std::process::exit(1);
        }
    }
    eprintln!(
        "  conservation OK: {} cells, {} slots/cycle",
        results.len(),
        slots_per_cycle
    );

    let traced = match args.trace.as_deref() {
        Some(path) => match run_traced_cell(cells[0], args.scale, path, args.check) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("fig01: {e}");
                return std::process::ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut s = String::with_capacity(4096 + 512 * results.len());
    s.push_str("{\n  \"schema\": \"caba-fig01-v1\",\n");
    s.push_str(&format!("  \"scale\": {},\n", json::fmt_f64(args.scale)));
    s.push_str(&format!("  \"num_cells\": {},\n", results.len()));
    if let Some(t) = traced {
        s.push_str(&format!("  \"traced_cell\": {t},\n"));
    }
    s.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"app\": \"{}\", \"bw\": {}, \"summary\": {}}}{sep}\n",
            r.cell.app,
            json::fmt_f64(r.cell.bw_scale),
            r.stats.summary().to_json()
        ));
    }
    s.push_str("  ]\n}\n");
    if args.check {
        if let Err(e) = json::validate(&s) {
            eprintln!("fig01: report JSON invalid: {e}");
            return std::process::ExitCode::FAILURE;
        }
        eprintln!("  JSON validity check OK");
    }
    if let Err(e) = caba_store::write_file_atomic(std::path::Path::new(&args.out), s.as_bytes()) {
        eprintln!("fig01: writing {}: {e}", args.out);
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("report written to {}", args.out);
    std::process::ExitCode::SUCCESS
}
