//! `bench-checkpoint` — checkpoint/restore economics benchmark.
//!
//! Measures three things and writes a machine-readable
//! `BENCH_checkpoint.json`:
//!
//! 1. **Snapshot cost**: bytes and wall time to [`Gpu::snapshot`] a warm
//!    machine, and wall time to [`Gpu::restore`] it.
//! 2. **Restore fidelity**: the restored machine resumes to a `RunStats`
//!    bit-identical to the unbroken run (exit nonzero otherwise).
//! 3. **Warm-start speedup**: a fig07-style differential sweep (Base /
//!    HW-BDI / CABA-BDI / Ideal-BDI per app) run cold versus forked from
//!    a shared Base warm-up checkpoint ([`caba_sweep::run_forked`]).
//!
//! [`Gpu::snapshot`]: caba_sim::Gpu::snapshot
//! [`Gpu::restore`]: caba_sim::Gpu::restore

use caba_sim::{Design, Gpu, RunError};
use caba_store::Store;
use caba_sweep::{run_cells, DesignId, Sweep, SweepCell, SweepConfig};
use caba_workloads::{app, prepare_app, DEFAULT_MAX_CYCLES};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    scale: f64,
    warmup: u64,
    apps: Vec<String>,
    jobs: usize,
    out: String,
    store_dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-checkpoint [--scale F] [--warmup N] [--apps A,B,..] [--jobs N] [--out PATH]\n\
         \n\
         --scale F        workload scale (default: CABA_BENCH_SCALE or 0.25)\n\
         --warmup N       shared warm-up prefix in cycles (default 20000)\n\
         --apps A,B       apps for the differential sweep (default CONS,BFS,MUM)\n\
         --jobs N         worker threads (default: available parallelism)\n\
         --out PATH       report path (default: BENCH_checkpoint.json)\n\
         --store-dir DIR  durable snapshot store: warm-up checkpoints are\n\
                          spilled here and reused on the next run"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: std::env::var("CABA_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.25),
        warmup: 20_000,
        apps: vec!["CONS".into(), "BFS".into(), "MUM".into()],
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        out: "BENCH_checkpoint.json".to_string(),
        store_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--warmup" => {
                args.warmup = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--apps" => {
                args.apps = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--store-dir" => {
                args.store_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.jobs == 0 || args.apps.is_empty() {
        usage();
    }
    args
}

/// Snapshot micro-benchmark on one warm Base machine: returns
/// `(bytes, save_wall_s, restore_wall_s)` after proving the restored
/// machine completes bit-identically to the unbroken one.
fn micro_bench(app_name: &str, sc: &SweepConfig, warmup: u64) -> Result<(usize, f64, f64), String> {
    let spec = app(app_name).ok_or_else(|| format!("unknown app {app_name}"))?;

    // Unbroken reference.
    let (mut full, kernel) = prepare_app(&spec, sc.cfg, Design::Base, sc.scale);
    let reference = full
        .run(&kernel, DEFAULT_MAX_CYCLES)
        .map_err(|e| format!("{app_name} reference run: {e}"))?;

    // Warm to the checkpoint.
    let (mut warm, kernel) = prepare_app(&spec, sc.cfg, Design::Base, sc.scale);
    match warm.run(&kernel, warmup) {
        Err(RunError::Timeout { .. }) => {}
        Ok(_) => {
            return Err(format!(
                "{app_name} finished inside {warmup} warm-up cycles; lower --warmup"
            ))
        }
        Err(e) => return Err(format!("{app_name} warm-up: {e}")),
    }

    let t0 = Instant::now();
    let snap = warm.snapshot(&kernel);
    let save_wall_s = t0.elapsed().as_secs_f64();

    let mut restored = Gpu::new(sc.cfg, Design::Base);
    let t0 = Instant::now();
    restored
        .restore(&kernel, &snap)
        .map_err(|e| format!("{app_name} restore: {e}"))?;
    let restore_wall_s = t0.elapsed().as_secs_f64();

    let resumed = restored
        .resume(&kernel, DEFAULT_MAX_CYCLES)
        .map_err(|e| format!("{app_name} resumed run: {e}"))?;
    if resumed != reference {
        return Err(format!(
            "{app_name}: resumed RunStats diverged from the unbroken run — determinism bug"
        ));
    }
    Ok((snap.len(), save_wall_s, restore_wall_s))
}

fn main() -> ExitCode {
    let args = parse_args();
    let apps: Vec<&'static str> = match args
        .apps
        .iter()
        .map(|a| app(a).map(|spec| spec.name))
        .collect::<Option<Vec<_>>>()
    {
        Some(v) => v,
        None => {
            eprintln!("bench-checkpoint: unknown app in --apps {:?}", args.apps);
            return ExitCode::FAILURE;
        }
    };
    let sc = SweepConfig {
        scale: args.scale,
        ..SweepConfig::default()
    };
    let designs = [
        DesignId::Base,
        DesignId::HwBdi,
        DesignId::CabaBdi,
        DesignId::IdealBdi,
    ];
    eprintln!(
        "bench-checkpoint: {} apps x {} designs at scale {}, warm-up {} cycles, {} jobs",
        apps.len(),
        designs.len(),
        sc.scale,
        args.warmup,
        args.jobs
    );

    // 1+2. Snapshot cost and restore fidelity on the first app.
    let (snapshot_bytes, save_wall_s, restore_wall_s) = match micro_bench(apps[0], &sc, args.warmup)
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-checkpoint: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  snapshot({}): {} bytes, save {:.1} ms, restore {:.1} ms, resume bit-identical",
        apps[0],
        snapshot_bytes,
        save_wall_s * 1e3,
        restore_wall_s * 1e3
    );

    // 3a. Cold differential sweep.
    let cells: Vec<SweepCell> = apps
        .iter()
        .flat_map(|&a| {
            designs.iter().map(move |&design| SweepCell {
                app: a,
                design,
                bw_scale: 1.0,
            })
        })
        .collect();
    let t0 = Instant::now();
    let cold = run_cells(&sc, &cells, args.jobs);
    let cold_wall_s = t0.elapsed().as_secs_f64();
    eprintln!("  cold sweep: {} cells in {cold_wall_s:.2}s", cold.len());

    // 3b. Forked sweep: shared Base warm-up per app, optionally spilled
    // to / warm-started from a durable store across processes.
    let store = match &args.store_dir {
        Some(dir) => match Store::open(dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("bench-checkpoint: opening store {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let t0 = Instant::now();
    let mut fork_sweep = Sweep::new(&sc, cells.clone())
        .jobs(args.jobs)
        .forked(args.warmup);
    if let Some(store) = &store {
        fork_sweep = fork_sweep.store(store);
    }
    let forked = match fork_sweep.run() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench-checkpoint: forked sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let meta = forked.forked.expect("forked mode always yields fork meta");
    let forked_wall_s = t0.elapsed().as_secs_f64();
    let forked_cells = meta.forked_cells;
    let speedup = cold_wall_s / forked_wall_s;
    eprintln!(
        "  forked sweep: {} cells ({forked_cells} from checkpoints, {} snapshot bytes, \
         {} store warm hits) in {forked_wall_s:.2}s — {speedup:.2}x vs cold",
        forked.results.len(),
        meta.snapshot_bytes,
        meta.warm_hits
    );

    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"caba-bench-checkpoint-v1\",\n");
    j.push_str(&format!("  \"scale\": {},\n", sc.scale));
    j.push_str(&format!("  \"warmup_cycles\": {},\n", args.warmup));
    j.push_str(&format!(
        "  \"apps\": [{}],\n",
        apps.iter()
            .map(|a| format!("\"{a}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!(
        "  \"designs\": [{}],\n",
        designs
            .iter()
            .map(|d| format!("\"{}\"", d.label()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!("  \"snapshot_bytes\": {snapshot_bytes},\n"));
    j.push_str(&format!("  \"save_wall_s\": {save_wall_s:.6},\n"));
    j.push_str(&format!("  \"restore_wall_s\": {restore_wall_s:.6},\n"));
    j.push_str("  \"restore_bit_identical\": true,\n");
    j.push_str(&format!("  \"cold_wall_s\": {cold_wall_s:.6},\n"));
    j.push_str(&format!("  \"forked_wall_s\": {forked_wall_s:.6},\n"));
    j.push_str(&format!("  \"forked_cells\": {forked_cells},\n"));
    j.push_str(&format!("  \"total_cells\": {},\n", forked.results.len()));
    j.push_str(&format!(
        "  \"forked_snapshot_bytes\": {},\n",
        meta.snapshot_bytes
    ));
    j.push_str(&format!("  \"store_warm_hits\": {},\n", meta.warm_hits));
    j.push_str(&format!("  \"warm_start_speedup\": {speedup:.4}\n"));
    j.push_str("}\n");
    if let Err(e) = caba_store::write_file_atomic(std::path::Path::new(&args.out), j.as_bytes()) {
        eprintln!("bench-checkpoint: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("report written to {}", args.out);
    ExitCode::SUCCESS
}
