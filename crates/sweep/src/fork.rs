//! Fork-from-checkpoint differential sweeps: warm one Base machine per
//! application, snapshot it, and fork the suffix into every design under
//! comparison — the warm-checkpoint methodology of sampled simulation.
//!
//! A differential sweep (Figure 7: Base vs HW-BDI vs CABA-BDI vs
//! Ideal-BDI) re-executes the same warm-up prefix once per design. Since
//! compression designs only diverge once memory traffic flows, the prefix
//! is shared work: this module runs it **once** on the Base design, takes
//! a [`Gpu::snapshot`], and [`Gpu::restore_fork`]s it into each design
//! point. Only Base snapshots are forkable (no compression state to
//! translate); a Base snapshot restored into a metadata-carrying design
//! keeps that design's fresh, empty metadata cache.
//!
//! Forked statistics are exact for Base (restore is bit-faithful) and a
//! warm-start *approximation* for the other designs — their prefix ran
//! uncompressed. Use [`run_cells`](crate::run_cells) when full-run
//! fidelity is required; use this for fast differential exploration and
//! the checkpoint benchmark.

use crate::cell::CellSpec;
use crate::{CellResult, DesignId, SweepCell, SweepConfig};
use caba_sim::{Design, Gpu, RestoreError, RunError};
use caba_store::{SnapKey, Store};
use caba_workloads::{app, prepare_app, DEFAULT_MAX_CYCLES};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Errors from a forked sweep.
#[derive(Debug)]
pub enum ForkError {
    /// An application name did not resolve.
    UnknownApp(&'static str),
    /// The warm-up or a forked suffix run failed.
    Run {
        /// The application involved.
        app: &'static str,
        /// The design whose run failed ("Base" for the warm-up).
        design: &'static str,
        /// The simulator error.
        source: RunError,
    },
    /// Restoring the warm snapshot into a design failed — a harness bug,
    /// since the snapshot was taken in-process moments earlier.
    Restore {
        /// The application involved.
        app: &'static str,
        /// The design being forked into.
        design: &'static str,
        /// The restore error.
        source: RestoreError,
    },
}

impl fmt::Display for ForkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForkError::UnknownApp(app) => write!(f, "unknown app {app}"),
            ForkError::Run {
                app,
                design,
                source,
            } => write!(f, "{app}/{design}: {source}"),
            ForkError::Restore {
                app,
                design,
                source,
            } => write!(f, "{app}/{design}: fork restore failed: {source}"),
        }
    }
}

impl std::error::Error for ForkError {}

/// One cell of a forked sweep.
#[derive(Debug, Clone)]
pub struct ForkedCell {
    /// The underlying result (stats + suffix wall time).
    pub result: CellResult,
    /// Whether this cell started from the warm checkpoint (`false` when
    /// the application completed inside the warm-up budget and the cell
    /// ran cold).
    pub forked: bool,
}

/// A completed forked sweep with its checkpoint economics.
#[derive(Debug, Clone)]
pub struct ForkedSweep {
    /// Warm-up budget per application, in cycles.
    pub warmup_cycles: u64,
    /// Total wall seconds spent warming Base machines (shared prefix,
    /// paid once per app instead of once per cell).
    pub warmup_wall_s: f64,
    /// Total bytes across all Base snapshots taken.
    pub snapshot_bytes: usize,
    /// Apps whose warm snapshot came out of the durable store instead of
    /// being recomputed ([`run_forked_stored`]) — the cross-process
    /// warm-start counter.
    pub warm_hits: usize,
    /// Per-cell results, apps-major in input order.
    pub cells: Vec<ForkedCell>,
}

impl ForkedSweep {
    /// The plain cell results, for report assembly.
    pub fn results(&self) -> Vec<CellResult> {
        self.cells.iter().map(|c| c.result.clone()).collect()
    }
}

/// Per-app outcome of the warm-up phase.
struct WarmApp {
    /// Warm snapshot, or `None` when the app finished inside the budget.
    snapshot: Option<Vec<u8>>,
    wall_s: f64,
}

/// Runs `apps` × `designs` (at bandwidth 1.0) with a shared warm-up
/// prefix of `warmup` cycles per application, forked from a Base
/// checkpoint into each design. Apps are processed in parallel across
/// `jobs` workers; results return apps-major in input order.
///
/// # Errors
///
/// [`ForkError::UnknownApp`] for unresolvable names, [`ForkError::Run`]
/// when the warm-up hangs or a forked suffix errors, and
/// [`ForkError::Restore`] if the in-process snapshot fails to restore.
pub fn run_forked(
    sc: &SweepConfig,
    apps: &[&'static str],
    designs: &[DesignId],
    warmup: u64,
    jobs: usize,
) -> Result<ForkedSweep, ForkError> {
    exec_forked(sc, apps, designs, warmup, jobs, None)
}

/// [`run_forked`] with an optional durable snapshot [`Store`]: each app's
/// warm Base snapshot is looked up by content key before re-warming, so a
/// *fresh process* pointed at the same store skips every warm-up an
/// earlier run already paid for. Snapshots are bit-exact, so warm-started
/// cells are bit-identical to recomputed ones. New snapshots are
/// persisted as they are taken; every store fault (failed read, rejected
/// snapshot, failed write) degrades to recomputing the warm-up.
#[deprecated(
    since = "0.1.0",
    note = "use `Sweep::new(sc, cells).forked(warmup).store(&store).run()` instead"
)]
pub fn run_forked_stored(
    sc: &SweepConfig,
    apps: &[&'static str],
    designs: &[DesignId],
    warmup: u64,
    jobs: usize,
    store: Option<&Store>,
) -> Result<ForkedSweep, ForkError> {
    exec_forked(sc, apps, designs, warmup, jobs, store)
}

/// Shared engine behind [`run_forked`], the deprecated
/// [`run_forked_stored`] wrapper, and the [`Sweep`](crate::Sweep)
/// builder's `.forked(..)` mode.
pub(crate) fn exec_forked(
    sc: &SweepConfig,
    apps: &[&'static str],
    designs: &[DesignId],
    warmup: u64,
    jobs: usize,
    store: Option<&Store>,
) -> Result<ForkedSweep, ForkError> {
    type AppSlot = Mutex<Option<Result<(WarmApp, Vec<ForkedCell>, bool), ForkError>>>;
    let jobs = jobs.clamp(1, apps.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<AppSlot> = apps.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= apps.len() {
                    break;
                }
                *slots[i].lock().expect("slot lock") =
                    Some(fork_one_app(sc, apps[i], designs, warmup, store));
            });
        }
    });

    let mut sweep = ForkedSweep {
        warmup_cycles: warmup,
        warmup_wall_s: 0.0,
        snapshot_bytes: 0,
        warm_hits: 0,
        cells: Vec::with_capacity(apps.len() * designs.len()),
    };
    for slot in slots {
        let (warm, cells, warm_hit) = slot
            .into_inner()
            .expect("slot lock")
            .expect("every app was claimed")?;
        sweep.warmup_wall_s += warm.wall_s;
        sweep.snapshot_bytes += warm.snapshot.as_ref().map_or(0, Vec::len);
        sweep.warm_hits += warm_hit as usize;
        sweep.cells.extend(cells);
    }
    Ok(sweep)
}

fn fork_one_app(
    sc: &SweepConfig,
    name: &'static str,
    designs: &[DesignId],
    warmup: u64,
    store: Option<&Store>,
) -> Result<(WarmApp, Vec<ForkedCell>, bool), ForkError> {
    let spec = app(name).ok_or(ForkError::UnknownApp(name))?;

    let t0 = Instant::now();
    let (mut base, kernel) = prepare_app(&spec, sc.cfg, Design::Base, sc.scale);
    let base_cell = SweepCell {
        app: name,
        design: DesignId::Base,
        bw_scale: 1.0,
    };
    let key = store.map(|_| CellSpec::new(sc, base_cell).warm_snap_key(&kernel, warmup));

    // Cross-process warm-start: an earlier run may have persisted this
    // exact warm snapshot. Validate by restoring into a probe machine
    // before trusting it — any rejection falls back to re-warming.
    let mut snapshot: Option<Vec<u8>> = None;
    let mut warm_hit = false;
    if let (Some(store), Some(key)) = (store, key.as_ref()) {
        match store.get_snapshot(key) {
            Ok(Some(bytes)) => {
                let mut probe = Gpu::new(sc.cfg, Design::Base);
                match probe.restore_fork(&kernel, &bytes) {
                    Ok(()) => {
                        snapshot = Some(bytes);
                        warm_hit = true;
                    }
                    Err(e) => eprintln!(
                        "caba-sweep: stored warm snapshot for {name} rejected ({e}); re-warming"
                    ),
                }
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("caba-sweep: warm snapshot read for {name} failed ({e}); re-warming")
            }
        }
    }

    // Shared prefix: warm one Base machine for `warmup` cycles. With a
    // store attached and periodic checkpointing enabled, the machine's
    // interval checkpoints spill through the sink as well, so future
    // runs with a *shorter* `--warmup` can still warm-start.
    // Interval checkpoints captured by the sink as `(cycle, bytes)`.
    type SpillBuf = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;
    if !warm_hit {
        let spilled: SpillBuf = Arc::new(Mutex::new(Vec::new()));
        if store.is_some() && sc.cfg.checkpoint_interval > 0 {
            let buf = Arc::clone(&spilled);
            base.set_checkpoint_sink(Box::new(move |cycle, bytes| {
                buf.lock().unwrap().push((cycle, bytes.to_vec()));
            }))
            .expect("checkpoint_interval verified nonzero");
        }
        let warm_outcome = base.run(&kernel, warmup);
        base.clear_checkpoint_sink();
        match warm_outcome {
            // Timeout at the budget leaves the machine at a clean cycle
            // boundary — exactly the snapshot point.
            Err(RunError::Timeout { .. }) => snapshot = Some(base.snapshot(&kernel)),
            Ok(_) => {}
            Err(source) => {
                return Err(ForkError::Run {
                    app: name,
                    design: "Base",
                    source,
                })
            }
        }
        if let (Some(store), Some(key)) = (store, key.as_ref()) {
            if let Some(snap) = snapshot.as_ref() {
                if let Err(e) = store.put_snapshot(key, snap) {
                    eprintln!("caba-sweep: warm snapshot write for {name} failed ({e})");
                }
            }
            for (cycle, bytes) in spilled.lock().unwrap().drain(..) {
                if cycle == warmup {
                    continue; // already stored above under the same key
                }
                let mid = SnapKey {
                    cycle,
                    ..key.clone()
                };
                if let Err(e) = store.put_snapshot(&mid, &bytes) {
                    eprintln!(
                        "caba-sweep: interval checkpoint write for {name} @ {cycle} failed ({e})"
                    );
                }
            }
        }
    }
    let warm = WarmApp {
        snapshot,
        wall_s: t0.elapsed().as_secs_f64(),
    };

    let mut cells = Vec::with_capacity(designs.len());
    for &design in designs {
        let cell = SweepCell {
            app: name,
            design,
            bw_scale: 1.0,
        };
        let t1 = Instant::now();
        let (stats, forked) = match &warm.snapshot {
            Some(snap) => {
                let mut gpu = Gpu::new(sc.cfg, design.make());
                gpu.restore_fork(&kernel, snap)
                    .map_err(|source| ForkError::Restore {
                        app: name,
                        design: design.label(),
                        source,
                    })?;
                let stats =
                    gpu.resume(&kernel, DEFAULT_MAX_CYCLES)
                        .map_err(|source| ForkError::Run {
                            app: name,
                            design: design.label(),
                            source,
                        })?;
                (stats, true)
            }
            // The app finished inside the warm-up budget: nothing to
            // fork, run the cell cold for full fidelity.
            None => {
                let (mut gpu, kernel) = prepare_app(&spec, sc.cfg, design.make(), sc.scale);
                let stats =
                    gpu.run(&kernel, DEFAULT_MAX_CYCLES)
                        .map_err(|source| ForkError::Run {
                            app: name,
                            design: design.label(),
                            source,
                        })?;
                (stats, false)
            }
        };
        cells.push(ForkedCell {
            result: CellResult {
                cell,
                stats,
                wall_s: t1.elapsed().as_secs_f64(),
            },
            forked,
        });
    }
    Ok((warm, cells, warm_hit))
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated wrappers stay covered until removal
mod tests {
    use super::*;
    use caba_sim::GpuConfig;
    use caba_workloads::run_app;

    fn tiny_sc() -> SweepConfig {
        SweepConfig {
            scale: 0.05,
            cfg: GpuConfig::small(),
        }
    }

    #[test]
    fn forked_base_matches_cold_base_exactly() {
        let sc = tiny_sc();
        let sweep = run_forked(&sc, &["CONS"], &[DesignId::Base], 500, 1).expect("forked sweep");
        let forked = &sweep.cells[0];
        assert!(forked.forked, "CONS outlives a 500-cycle warm-up");
        assert!(sweep.snapshot_bytes > 0);
        let spec = app("CONS").unwrap();
        let cold = run_app(&spec, sc.cfg, Design::Base, sc.scale).expect("cold run");
        // Base fork is a bit-faithful restore: identical statistics.
        assert_eq!(forked.result.stats, cold);
    }

    #[test]
    fn forked_designs_complete_and_retire_identical_work() {
        let sc = tiny_sc();
        let designs = [DesignId::Base, DesignId::HwBdi, DesignId::CabaBdi];
        let sweep = run_forked(&sc, &["CONS"], &designs, 500, 2).expect("forked sweep");
        assert_eq!(sweep.cells.len(), designs.len());
        let retired = sweep.cells[0].result.stats.threads_retired;
        for cell in &sweep.cells {
            assert!(cell.forked);
            assert_eq!(cell.result.stats.threads_retired, retired);
            assert!(cell.result.stats.cycles > sweep.warmup_cycles);
        }
    }

    #[test]
    fn short_apps_fall_back_to_cold_runs() {
        let sc = tiny_sc();
        // An absurdly long warm-up: every app completes inside it.
        let sweep =
            run_forked(&sc, &["CONS"], &[DesignId::CabaBdi], 100_000_000, 1).expect("sweep");
        assert!(!sweep.cells[0].forked);
        assert_eq!(sweep.snapshot_bytes, 0);
    }

    #[test]
    fn stored_warm_start_is_bit_identical_across_store_instances() {
        let sc = tiny_sc();
        let dir = caba_store::fsio::scratch_dir("fork-warm");
        let designs = [DesignId::Base, DesignId::CabaBdi];

        let store = Store::open(&dir).expect("store opens");
        let cold = run_forked_stored(&sc, &["CONS"], &designs, 500, 1, Some(&store))
            .expect("cold forked sweep");
        assert_eq!(cold.warm_hits, 0, "nothing to warm-start from yet");
        drop(store);

        // A fresh Store over the same directory models a fresh process:
        // the warm-up must come from disk, and every forked cell must be
        // bit-identical to the cold run.
        let store = Store::open(&dir).expect("store reopens");
        let warm = run_forked_stored(&sc, &["CONS"], &designs, 500, 1, Some(&store))
            .expect("warm forked sweep");
        assert_eq!(warm.warm_hits, 1, "the warm-up was restored, not re-run");
        assert_eq!(cold.cells.len(), warm.cells.len());
        for (c, w) in cold.cells.iter().zip(&warm.cells) {
            assert_eq!(c.forked, w.forked);
            assert_eq!(
                c.result.stats,
                w.result.stats,
                "store warm-start changed {}/{}",
                c.result.cell.app,
                c.result.cell.design.label()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_checkpoints_spill_and_warm_start_shorter_warmups() {
        let mut sc = tiny_sc();
        sc.cfg.checkpoint_interval = 200;
        let dir = caba_store::fsio::scratch_dir("fork-interval");

        // Warm to 500 cycles: interval checkpoints at 200 and 400 spill
        // through the Gpu sink into the store alongside the 500 snapshot.
        let store = Store::open(&dir).expect("store opens");
        let first = run_forked_stored(&sc, &["CONS"], &[DesignId::Base], 500, 1, Some(&store))
            .expect("first sweep");
        assert_eq!(first.warm_hits, 0);
        drop(store);

        // A later sweep with a *shorter* warm-up lands exactly on a
        // spilled interval checkpoint and warm-starts from it.
        let store = Store::open(&dir).expect("store reopens");
        let shorter = run_forked_stored(&sc, &["CONS"], &[DesignId::Base], 400, 1, Some(&store))
            .expect("shorter-warmup sweep");
        assert_eq!(
            shorter.warm_hits, 1,
            "the 400-cycle interval checkpoint hits"
        );
        // Base forks are bit-faithful: same completion stats either way.
        assert_eq!(shorter.cells[0].result.stats, first.cells[0].result.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaotic_store_never_changes_forked_results() {
        use caba_store::{FaultFs, FaultRates};
        let sc = tiny_sc();
        let clean = run_forked(&sc, &["CONS"], &[DesignId::Base, DesignId::CabaBdi], 500, 1)
            .expect("clean sweep");
        for seed in 0..4 {
            let dir = caba_store::fsio::scratch_dir(&format!("fork-chaos-{seed}"));
            let store = Store::open_with_fs(
                &dir,
                Box::new(FaultFs::new(seed, FaultRates::uniform(0.25))),
            )
            .expect("store opens");
            // Two passes: the second may warm-start or recompute depending
            // on which faults fired; the results must be identical either
            // way — faults only ever cost speed.
            for pass in 0..2 {
                let got = run_forked_stored(
                    &sc,
                    &["CONS"],
                    &[DesignId::Base, DesignId::CabaBdi],
                    500,
                    1,
                    Some(&store),
                )
                .expect("faulted sweep still completes");
                for (c, g) in clean.cells.iter().zip(&got.cells) {
                    assert_eq!(
                        c.result.stats, g.result.stats,
                        "seed {seed} pass {pass}: store fault leaked into results"
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
