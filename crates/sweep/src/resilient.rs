//! Crash-resilient sweep execution: per-cell panic isolation with bounded
//! retry, transient-vs-deterministic failure classification, and a
//! journaled resume manifest so an interrupted sweep re-runs only the
//! missing cells.
//!
//! # Failure model
//!
//! A sweep cell can fail two ways. A **simulator error** ([`RunError`]:
//! timeout, hang, audit failure) is deterministic by construction — the
//! simulator is bit-reproducible, so retrying is pointless and the error is
//! reported immediately. A **panic** escaping the cell (a harness bug, or a
//! transient host fault) is caught with [`std::panic::catch_unwind`] and
//! retried up to a bounded count; a cell that succeeds on retry is
//! classified *transient*, one that repeats the identical panic is
//! classified *deterministic*, and exhausted retries with varying messages
//! stay *undetermined*.
//!
//! # Resume manifest
//!
//! [`run_cells_journaled`] appends one line per finished cell to a journal
//! keyed by a content hash of the canonicalized [`GpuConfig`] (via
//! [`caba_sim::snapshot::config_hash`], which ignores observability /
//! checkpoint / worker knobs) plus the cell spec. Each line carries its own
//! checksum, so a line torn by a crash mid-write is skipped and that cell
//! simply re-runs. Restarting the same invocation re-runs *only* cells
//! absent from the journal; because every cell is bit-deterministic, the
//! resumed report is identical to an uninterrupted one.
//!
//! [`GpuConfig`]: caba_sim::GpuConfig

use crate::cell::{run_cell, CellSpec};
use crate::fork::ForkError;
use crate::{CellResult, SweepCell, SweepConfig};
use caba_sim::RunStats;
use caba_stats::snap::{checksum64, SnapshotReader, SnapshotState, SnapshotWriter};
use caba_store::{Store, StoreError};
use caba_workloads::app;
use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Why a cell could not produce statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureClass {
    /// A simulator error ([`RunError`](caba_sim::RunError)): deterministic
    /// by construction, never retried.
    SimError,
    /// The same panic repeated on retry: a deterministic harness bug.
    DeterministicPanic,
    /// Retries exhausted with differing messages: cause undetermined
    /// (possibly a transient host fault that kept moving).
    Undetermined,
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureClass::SimError => write!(f, "simulator error (deterministic)"),
            FailureClass::DeterministicPanic => write!(f, "repeated panic (deterministic)"),
            FailureClass::Undetermined => write!(f, "retries exhausted (undetermined)"),
        }
    }
}

/// A cell that failed every attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Classification of the failure.
    pub class: FailureClass,
    /// One message per attempt, oldest first.
    pub errors: Vec<String>,
}

/// The outcome of one cell under the resilient executor.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The cell.
    pub cell: SweepCell,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Statistics and wall seconds, or the classified failure.
    pub result: Result<(RunStats, f64), CellFailure>,
    /// Whether success came only after at least one caught panic — the
    /// signature of a transient fault.
    pub recovered: bool,
}

/// Errors from journaled sweep execution.
#[derive(Debug)]
pub enum SweepError {
    /// Reading or writing the manifest failed.
    Io {
        /// The manifest path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The manifest belongs to a different sweep (configuration or scale
    /// changed since it was written).
    ManifestMismatch {
        /// Key recorded in the manifest header.
        found: u64,
        /// Key of the requested sweep.
        expected: u64,
    },
    /// One or more cells failed every attempt. The journal retains every
    /// completed cell, so a later `--resume` re-runs only these.
    CellsFailed(Vec<(SweepCell, CellFailure)>),
    /// Opening the durable store failed ([`Sweep::store_dir`]).
    ///
    /// [`Sweep::store_dir`]: crate::Sweep::store_dir
    Store(StoreError),
    /// A forked sweep ([`Sweep::forked`]) failed.
    ///
    /// [`Sweep::forked`]: crate::Sweep::forked
    Fork(ForkError),
    /// The requested option combination is not executable (e.g. a forked
    /// sweep over non-stock bandwidth cells).
    InvalidOptions(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io { path, source } => {
                write!(f, "manifest {}: {source}", path.display())
            }
            SweepError::ManifestMismatch { found, expected } => write!(
                f,
                "manifest belongs to a different sweep (key {found:016x}, this sweep is \
                 {expected:016x}); delete it or point --resume elsewhere"
            ),
            SweepError::CellsFailed(cells) => {
                writeln!(f, "{} cell(s) failed every attempt:", cells.len())?;
                for (cell, failure) in cells {
                    writeln!(
                        f,
                        "  {} / {} @ {}x BW: {} — {}",
                        cell.app,
                        cell.design.label(),
                        cell.bw_scale,
                        failure.class,
                        failure.errors.last().map(String::as_str).unwrap_or("?")
                    )?;
                }
                Ok(())
            }
            SweepError::Store(e) => write!(f, "opening store: {e}"),
            SweepError::Fork(e) => write!(f, "forked sweep: {e}"),
            SweepError::InvalidOptions(msg) => write!(f, "invalid sweep options: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Content hash identifying a sweep: the canonicalized machine
/// configuration plus the workload scale. Cells journal under this key;
/// a manifest written for one sweep refuses to resume another.
#[deprecated(since = "0.1.0", note = "use `CellSpec::sweep_hash` instead")]
pub fn sweep_key(sc: &SweepConfig) -> u64 {
    sweep_hash_of(sc)
}

/// [`CellSpec::sweep_hash`] for a whole sweep's shared options (every
/// cell of one sweep shares the hash, so any representative spec works).
fn sweep_hash_of(sc: &SweepConfig) -> u64 {
    CellSpec {
        app: "",
        design: crate::DesignId::Base,
        bw_scale: 1.0,
        scale: sc.scale,
        cfg: sc.cfg,
    }
    .sweep_hash()
}

/// Content hash identifying one cell within a sweep.
#[deprecated(since = "0.1.0", note = "use `CellSpec::content_hash` instead")]
pub fn cell_key(sc: &SweepConfig, cell: &SweepCell) -> u64 {
    CellSpec::new(sc, *cell).content_hash()
}

/// Runs one cell with panic isolation and bounded retry (`retries` extra
/// attempts after the first). See the module docs for the classification
/// rules. A thin resilience layer over [`run_cell`].
pub fn run_cell_resilient(sc: &SweepConfig, cell: SweepCell, retries: u32) -> ResilientOutcome {
    // Unknown app names repeat forever; fail immediately and typed
    // instead of letting `run_cell`'s panic burn the retry budget.
    if app(cell.app).is_none() {
        return ResilientOutcome {
            cell,
            attempts: 1,
            result: Err(CellFailure {
                class: FailureClass::DeterministicPanic,
                errors: vec![format!("unknown app {}", cell.app)],
            }),
            recovered: false,
        };
    }
    let spec = CellSpec::new(sc, cell);
    let mut errors: Vec<String> = Vec::new();
    for attempt in 0..=retries {
        let outcome = catch_unwind(AssertUnwindSafe(|| run_cell(&spec)));
        match outcome {
            Ok(Ok(result)) => {
                return ResilientOutcome {
                    cell,
                    attempts: attempt + 1,
                    result: Ok((result.stats, result.wall_s)),
                    recovered: attempt > 0,
                };
            }
            Ok(Err(run_err)) => {
                // The simulator is bit-deterministic: a RunError will
                // repeat identically, so there is nothing to retry.
                errors.push(run_err.to_string());
                return ResilientOutcome {
                    cell,
                    attempts: attempt + 1,
                    result: Err(CellFailure {
                        class: FailureClass::SimError,
                        errors,
                    }),
                    recovered: false,
                };
            }
            Err(payload) => {
                let msg = panic_message(&payload);
                let repeated = errors.last().is_some_and(|prev| *prev == msg);
                errors.push(msg);
                if repeated {
                    // The identical panic twice in a row: deterministic.
                    return ResilientOutcome {
                        cell,
                        attempts: attempt + 1,
                        result: Err(CellFailure {
                            class: FailureClass::DeterministicPanic,
                            errors,
                        }),
                        recovered: false,
                    };
                }
            }
        }
    }
    let attempts = errors.len() as u32;
    ResilientOutcome {
        cell,
        attempts,
        result: Err(CellFailure {
            class: FailureClass::Undetermined,
            errors,
        }),
        recovered: false,
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ----- resume manifest -----------------------------------------------------

const MANIFEST_HEADER: &str = "caba-sweep-manifest-v1";

fn encode_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok())
        .collect()
}

/// Renders one journal line for a finished cell. The trailing checksum
/// covers the rest of the line, so a torn write is detected and skipped.
fn journal_line(key: u64, stats: &RunStats, wall_s: f64) -> String {
    let mut w = SnapshotWriter::new();
    stats.save(&mut w);
    let body = format!(
        "cell {key:016x} wall={:016x} stats={}",
        wall_s.to_bits(),
        encode_hex(&w.into_bytes())
    );
    format!("{body} sum={:016x}\n", checksum64(body.as_bytes()))
}

/// Parses one journal line; `None` for anything malformed (including a
/// line torn by a crash mid-write).
fn parse_journal_line(line: &str) -> Option<(u64, RunStats, f64)> {
    let (body, sum_field) = line.rsplit_once(" sum=")?;
    let sum = u64::from_str_radix(sum_field.trim(), 16).ok()?;
    if checksum64(body.as_bytes()) != sum {
        return None;
    }
    let rest = body.strip_prefix("cell ")?;
    let (key_s, rest) = rest.split_once(' ')?;
    let key = u64::from_str_radix(key_s, 16).ok()?;
    let rest = rest.strip_prefix("wall=")?;
    let (wall_s, rest) = rest.split_once(' ')?;
    let wall = f64::from_bits(u64::from_str_radix(wall_s, 16).ok()?);
    let stats_hex = rest.strip_prefix("stats=")?;
    let bytes = decode_hex(stats_hex)?;
    let mut r = SnapshotReader::new(&bytes);
    let stats = RunStats::load(&mut r).ok()?;
    r.finish().ok()?;
    Some((key, stats, wall))
}

/// Already-journaled results, keyed by cell hash.
fn read_manifest(
    path: &Path,
    expected_key: u64,
) -> Result<std::collections::HashMap<u64, (RunStats, f64)>, SweepError> {
    let mut done = std::collections::HashMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(done),
        Err(e) => {
            return Err(SweepError::Io {
                path: path.to_path_buf(),
                source: e,
            })
        }
    };
    let mut lines = text.lines();
    match lines.next() {
        None => return Ok(done),
        Some(header) => {
            let key = header
                .strip_prefix(MANIFEST_HEADER)
                .and_then(|r| r.trim().strip_prefix("key="))
                .and_then(|k| u64::from_str_radix(k, 16).ok());
            match key {
                Some(k) if k == expected_key => {}
                Some(k) => {
                    return Err(SweepError::ManifestMismatch {
                        found: k,
                        expected: expected_key,
                    })
                }
                // A torn header: treat as empty and rewrite from scratch.
                None => return Ok(done),
            }
        }
    }
    for line in lines {
        if let Some((key, stats, wall)) = parse_journal_line(line) {
            done.insert(key, (stats, wall));
        }
        // Malformed lines (torn by a crash) are skipped: the cell re-runs.
    }
    Ok(done)
}

/// Encodes a finished cell result — the run's [`RunStats`] plus its wall
/// time — into the payload format the durable result store holds.
pub fn encode_result_payload(stats: &RunStats, wall_s: f64) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.f64(wall_s);
    stats.save(&mut w);
    w.into_bytes()
}

/// Decodes a result payload written by [`encode_result_payload`]; `None`
/// on any decode failure (the store already checksummed the container, so
/// a failure here means version skew, and the cell simply re-runs).
pub fn decode_result_payload(bytes: &[u8]) -> Option<(RunStats, f64)> {
    let mut r = SnapshotReader::new(bytes);
    let wall = r.f64().ok()?;
    let stats = RunStats::load(&mut r).ok()?;
    r.finish().ok()?;
    Some((stats, wall))
}

/// Runs `cells` with panic isolation, bounded retry, and an append-only
/// resume journal at `manifest`: cells already journaled are not re-run,
/// and every newly finished cell is flushed to the journal immediately, so
/// a killed sweep resumes from where it died. Results return in **input
/// order** with journaled wall times for restored cells.
///
/// # Errors
///
/// [`SweepError::ManifestMismatch`] before any cell runs if the journal
/// belongs to a different sweep; [`SweepError::CellsFailed`] after the
/// sweep if any cell failed every attempt (completed cells stay
/// journaled); [`SweepError::Io`] on journal I/O failures.
#[deprecated(
    since = "0.1.0",
    note = "use `Sweep::new(sc, cells).journal(path).run()` instead"
)]
pub fn run_cells_journaled(
    sc: &SweepConfig,
    cells: &[SweepCell],
    jobs: usize,
    retries: u32,
    manifest: &Path,
) -> Result<Vec<CellResult>, SweepError> {
    exec_stored(sc, cells, jobs, retries, Some(manifest), None).map(|(results, _)| results)
}

/// The store-backed executor: panic isolation and bounded retry, plus an
/// optional resume journal and an optional durable result [`Store`].
#[deprecated(
    since = "0.1.0",
    note = "use `Sweep::new(sc, cells).journal(path).store(&store).run()` instead"
)]
pub fn run_cells_stored(
    sc: &SweepConfig,
    cells: &[SweepCell],
    jobs: usize,
    retries: u32,
    manifest: Option<&Path>,
    store: Option<&Store>,
) -> Result<Vec<CellResult>, SweepError> {
    exec_stored(sc, cells, jobs, retries, manifest, store).map(|(results, _)| results)
}

/// The one resilient executor every batch layer composes over
/// ([`run_cells_journaled`]/[`run_cells_stored`] wrappers and the
/// [`Sweep`](crate::Sweep) builder): panic isolation and bounded retry
/// around [`run_cell`], plus an optional resume journal and an optional
/// durable result [`Store`]. Returns the results in **input order**
/// together with the number of cells restored from the store.
///
/// Before running anything, every cell the journal does not cover is
/// looked up in the store by [`CellSpec::content_hash`] — results
/// persisted by an *earlier process* warm-start this one bit-identically
/// (each cell is deterministic, so a restored result equals a recomputed
/// one). Every newly finished cell is journaled and persisted to the
/// store as it completes.
///
/// Store faults degrade gracefully: a failed read means the cell
/// recomputes, a failed write means it will recompute next time — the
/// sweep's results are never affected, only its speed.
///
/// # Errors
///
/// As [`run_cells_journaled`].
pub(crate) fn exec_stored(
    sc: &SweepConfig,
    cells: &[SweepCell],
    jobs: usize,
    retries: u32,
    manifest: Option<&Path>,
    store: Option<&Store>,
) -> Result<(Vec<CellResult>, usize), SweepError> {
    let skey = sweep_hash_of(sc);
    let keys: Vec<u64> = cells
        .iter()
        .map(|c| CellSpec::new(sc, *c).content_hash())
        .collect();
    let mut done = match manifest {
        Some(path) => read_manifest(path, skey)?,
        None => std::collections::HashMap::new(),
    };
    let fresh = done.is_empty();

    // Cross-process warm-start: cells missing from the journal may still
    // be persisted in the durable store by an earlier run.
    let mut store_hits: Vec<u64> = Vec::new();
    if let Some(store) = store {
        for (i, cell) in cells.iter().enumerate() {
            if done.contains_key(&keys[i]) {
                continue;
            }
            match store.get_result(keys[i]) {
                Ok(Some(payload)) => {
                    if let Some((stats, wall)) = decode_result_payload(&payload) {
                        done.insert(keys[i], (stats, wall));
                        store_hits.push(keys[i]);
                    }
                }
                Ok(None) => {}
                Err(e) => eprintln!(
                    "caba-sweep: store read for {}/{} failed ({e}); recomputing",
                    cell.app,
                    cell.design.label()
                ),
            }
        }
    }

    let missing: Vec<usize> = (0..cells.len())
        .filter(|&i| !done.contains_key(&keys[i]))
        .collect();

    let journal = match manifest {
        Some(path) => {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| SweepError::Io {
                    path: path.to_path_buf(),
                    source: e,
                })?;
            if fresh {
                file.write_all(format!("{MANIFEST_HEADER} key={skey:016x}\n").as_bytes())
                    .map_err(|e| SweepError::Io {
                        path: path.to_path_buf(),
                        source: e,
                    })?;
            }
            // Backfill store-restored cells so the journal alone is a
            // complete record of what is finished.
            for key in &store_hits {
                let (stats, wall) = &done[key];
                let _ = file.write_all(journal_line(*key, stats, *wall).as_bytes());
            }
            let _ = file.flush();
            Some(Mutex::new(file))
        }
        None => None,
    };

    let jobs = jobs.clamp(1, missing.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ResilientOutcome>>> =
        missing.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= missing.len() {
                    break;
                }
                let i = missing[slot];
                let outcome = run_cell_resilient(sc, cells[i], retries);
                if let Ok((stats, wall)) = &outcome.result {
                    if let Some(journal) = &journal {
                        let line = journal_line(keys[i], stats, *wall);
                        let mut f = journal.lock().expect("journal lock");
                        // Write+flush as one unit per cell; a crash tears
                        // at most the final line, which resume skips.
                        let _ = f.write_all(line.as_bytes()).and_then(|()| f.flush());
                    }
                    if let Some(store) = store {
                        let label = CellSpec::new(sc, cells[i]).label();
                        if let Err(e) =
                            store.put_result(keys[i], &label, &encode_result_payload(stats, *wall))
                        {
                            eprintln!("caba-sweep: store write for {label} failed ({e})");
                        }
                    }
                }
                *slots[slot].lock().expect("slot lock") = Some(outcome);
            });
        }
    });

    let mut by_index: std::collections::HashMap<usize, ResilientOutcome> = missing
        .iter()
        .zip(slots)
        .map(|(&i, m)| {
            (
                i,
                m.into_inner()
                    .expect("slot lock")
                    .expect("every missing cell was claimed"),
            )
        })
        .collect();

    let mut failed = Vec::new();
    let mut results = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        if let Some((stats, wall_s)) = done.get(&keys[i]) {
            results.push(CellResult {
                cell: *cell,
                stats: stats.clone(),
                wall_s: *wall_s,
            });
        } else {
            let outcome = by_index.remove(&i).expect("missing cell has an outcome");
            match outcome.result {
                Ok((stats, wall_s)) => results.push(CellResult {
                    cell: *cell,
                    stats,
                    wall_s,
                }),
                Err(failure) => failed.push((*cell, failure)),
            }
        }
    }
    if failed.is_empty() {
        Ok((results, store_hits.len()))
    } else {
        Err(SweepError::CellsFailed(failed))
    }
}

/// One line of the deterministic figure table for a finished cell:
/// app, design, bandwidth, and every derived rate from
/// [`RunStats::summary`] — no wall times, so the line is a pure function
/// of the cell's (bit-deterministic) statistics. [`figure_table`] and the
/// `caba-serve` streaming figure endpoint both emit exactly these bytes,
/// which is what makes the served table byte-identical to the offline one.
pub fn figure_table_line(cell: &SweepCell, stats: &RunStats) -> String {
    format!(
        "{}\t{}\t{}\t{}\n",
        cell.app,
        cell.design.label(),
        cell.bw_scale,
        stats.summary().to_json()
    )
}

/// The deterministic figure table derived from sweep results: one line per
/// cell ([`figure_table_line`]), and no wall times. Two sweeps over the
/// same cells produce byte-identical tables — including a journaled sweep
/// resumed after a kill, a store-warm-started fresh process, or the table
/// served over HTTP by `caba-serve`.
pub fn figure_table(results: &[CellResult]) -> String {
    let mut s = String::with_capacity(128 * results.len());
    for r in results {
        s.push_str(&figure_table_line(&r.cell, &r.stats));
    }
    s
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated wrappers stay covered until removal
mod tests {
    use super::*;
    use crate::DesignId;
    use caba_sim::snapshot::config_hash;
    use caba_sim::GpuConfig;

    fn tiny_sc() -> SweepConfig {
        SweepConfig {
            scale: 0.05,
            cfg: GpuConfig::small(),
        }
    }

    fn tiny_cells() -> Vec<SweepCell> {
        [
            ("CONS", DesignId::Base),
            ("CONS", DesignId::CabaBdi),
            ("BFS", DesignId::Base),
        ]
        .into_iter()
        .map(|(app, design)| SweepCell {
            app,
            design,
            bw_scale: 1.0,
        })
        .collect()
    }

    #[test]
    fn keys_are_stable_and_config_sensitive() {
        let sc = tiny_sc();
        let cells = tiny_cells();
        assert_eq!(cell_key(&sc, &cells[0]), cell_key(&sc, &cells[0]));
        assert_ne!(cell_key(&sc, &cells[0]), cell_key(&sc, &cells[1]));
        let mut other = sc;
        other.cfg.mshrs += 1;
        assert_ne!(cell_key(&sc, &cells[0]), cell_key(&other, &cells[0]));
        // Worker-count and observability knobs are canonicalized away.
        let mut tolerated = sc;
        tolerated.cfg.intra_jobs = 4;
        tolerated.cfg.checkpoint_interval = 500;
        assert_eq!(sweep_key(&sc), sweep_key(&tolerated));
    }

    /// Satellite pin: the resume journal (historically `cell_key`), the
    /// durable store, and the `caba-serve` service all key cells by
    /// [`CellSpec::content_hash`] — one derivation, provably shared, and
    /// byte-compatible with the pre-refactor formula so stores written by
    /// earlier builds stay warm.
    #[test]
    fn keys_agree_across_journal_store_and_server() {
        let sc = tiny_sc();
        for cell in tiny_cells() {
            let spec = CellSpec::new(&sc, cell);
            assert_eq!(cell_key(&sc, &cell), spec.content_hash());
            assert_eq!(sweep_key(&sc), spec.sweep_hash());
            // The pre-refactor formulas, spelled out literally.
            let legacy_sweep = checksum64(
                format!("{:016x}|{:016x}", config_hash(&sc.cfg), sc.scale.to_bits()).as_bytes(),
            );
            let legacy_cell = checksum64(
                format!(
                    "{:016x}|{}|{}|{:016x}",
                    legacy_sweep,
                    cell.app,
                    cell.design.label(),
                    cell.bw_scale.to_bits()
                )
                .as_bytes(),
            );
            assert_eq!(spec.sweep_hash(), legacy_sweep);
            assert_eq!(spec.content_hash(), legacy_cell);
        }
    }

    #[test]
    fn journal_lines_round_trip_and_reject_corruption() {
        let stats = RunStats {
            cycles: 12345,
            l2_hits: 17,
            ..Default::default()
        };
        let line = journal_line(0xABCD, &stats, 1.5);
        let (key, back, wall) = parse_journal_line(line.trim_end()).expect("line parses");
        assert_eq!(key, 0xABCD);
        assert_eq!(back, stats);
        assert_eq!(wall, 1.5);
        // Any flipped character is rejected.
        let mut bad = line.trim_end().to_string();
        let mid = bad.len() / 2;
        bad.replace_range(
            mid..mid + 1,
            if &bad[mid..mid + 1] == "0" { "1" } else { "0" },
        );
        assert!(parse_journal_line(&bad).is_none());
        // A torn (truncated) line is rejected.
        assert!(parse_journal_line(&line[..line.len() / 2]).is_none());
    }

    #[test]
    fn resilient_cell_classifies_unknown_app_as_deterministic() {
        let sc = tiny_sc();
        let cell = SweepCell {
            app: "NOPE",
            design: DesignId::Base,
            bw_scale: 1.0,
        };
        let out = run_cell_resilient(&sc, cell, 3);
        let failure = out.result.expect_err("unknown app fails");
        assert_eq!(failure.class, FailureClass::DeterministicPanic);
        assert_eq!(out.attempts, 1, "deterministic failures are not retried");
    }

    #[test]
    fn sim_errors_are_not_retried() {
        // A 1-cycle... impossible; instead force a timeout via an absurd
        // watchdog-free budget? run_app uses DEFAULT_MAX_CYCLES, so a
        // deterministic RunError is hard to provoke from here; covered by
        // the integration test instead. Keep the classifier honest on the
        // panic path: a panic that repeats identically stops early.
        let sc = tiny_sc();
        let cell = SweepCell {
            app: "NOPE2",
            design: DesignId::Base,
            bw_scale: 1.0,
        };
        let out = run_cell_resilient(&sc, cell, 5);
        assert!(out.result.is_err());
        assert!(out.attempts <= 2, "identical panics stop the retry loop");
    }

    #[test]
    fn journaled_sweep_resumes_without_rerunning() {
        let sc = tiny_sc();
        let cells = tiny_cells();
        let dir = std::env::temp_dir();
        let manifest = dir.join(format!("caba-test-manifest-{:x}.txt", sweep_key(&sc)));
        let _ = std::fs::remove_file(&manifest);

        // Full run from scratch.
        let full = run_cells_journaled(&sc, &cells, 2, 0, &manifest).expect("sweep runs");
        let full_table = figure_table(&full);

        // Kill simulation: drop the last journal line (plus a torn tail)
        // and resume. Only the dropped cell re-runs; the table is
        // byte-identical.
        let text = std::fs::read_to_string(&manifest).expect("manifest exists");
        let mut lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            1 + cells.len(),
            "header plus one line per cell"
        );
        lines.pop();
        let mut truncated = lines.join("\n");
        truncated.push_str("\ncell 0123torn");
        std::fs::write(&manifest, truncated).expect("truncate manifest");

        let resumed = run_cells_journaled(&sc, &cells, 2, 0, &manifest).expect("resume runs");
        assert_eq!(
            figure_table(&resumed),
            full_table,
            "resumed table is byte-identical"
        );

        // A different sweep refuses the manifest.
        let mut other = sc;
        other.scale = 0.1;
        let err = run_cells_journaled(&other, &cells, 1, 0, &manifest).unwrap_err();
        assert!(matches!(err, SweepError::ManifestMismatch { .. }));
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn result_payload_round_trips_and_rejects_trailing_bytes() {
        let stats = RunStats {
            cycles: 777,
            dram_bursts: 13,
            ..Default::default()
        };
        let bytes = encode_result_payload(&stats, 2.25);
        let (back, wall) = decode_result_payload(&bytes).expect("payload decodes");
        assert_eq!(back, stats);
        assert_eq!(wall, 2.25);
        let mut long = bytes.clone();
        long.push(0);
        assert!(
            decode_result_payload(&long).is_none(),
            "trailing bytes rejected"
        );
        assert!(decode_result_payload(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn store_warm_starts_a_fresh_process_and_backfills_the_journal() {
        use caba_store::Store;
        let sc = tiny_sc();
        let cells = tiny_cells();
        let dir = caba_store::fsio::scratch_dir("resilient-warm");

        let store = Store::open(&dir).expect("store opens");
        let full =
            run_cells_stored(&sc, &cells, 2, 0, None, Some(&store)).expect("stored sweep runs");
        let table = figure_table(&full);
        assert_eq!(store.hit_count(), 0);
        drop(store);

        // A fresh Store over the same directory models a fresh process
        // with no journal: every cell restores from disk, and the journal
        // is backfilled into a complete standalone record.
        let store = Store::open(&dir).expect("store reopens");
        let manifest = dir.join("resume.journal");
        let restored = run_cells_stored(&sc, &cells, 2, 0, Some(&manifest), Some(&store))
            .expect("warm-started sweep runs");
        assert_eq!(
            figure_table(&restored),
            table,
            "warm start is bit-identical"
        );
        assert_eq!(
            store.hit_count() as usize,
            cells.len(),
            "every cell hit the store"
        );
        let text = std::fs::read_to_string(&manifest).expect("journal exists");
        assert_eq!(
            text.lines().count(),
            1 + cells.len(),
            "header plus one backfilled line per restored cell"
        );

        // The backfilled journal alone (store detached) also resumes.
        let journal_only =
            run_cells_journaled(&sc, &cells, 2, 0, &manifest).expect("journal-only resume");
        assert_eq!(figure_table(&journal_only), table);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faultfs_torn_journal_line_is_tolerated_on_resume() {
        use caba_store::{FaultFs, FaultRates, StoreFs};
        let sc = tiny_sc();
        let cells = tiny_cells();
        let manifest =
            std::env::temp_dir().join(format!("caba-test-torn-journal-{:x}.txt", sweep_key(&sc)));
        let _ = std::fs::remove_file(&manifest);

        let full = run_cells_journaled(&sc, &cells, 2, 0, &manifest).expect("sweep runs");
        let table = figure_table(&full);

        // Re-append the final journal line through a FaultFs whose torn
        // write is certain: the crash artifact is produced by the real
        // injection path, not hand truncation.
        let text = std::fs::read_to_string(&manifest).expect("manifest exists");
        let mut lines: Vec<&str> = text.lines().collect();
        let last = lines.pop().expect("at least one cell line").to_string();
        std::fs::write(&manifest, format!("{}\n", lines.join("\n"))).expect("rewrite");
        let ffs = FaultFs::new(
            11,
            FaultRates {
                torn_write: 1.0,
                ..FaultRates::none()
            },
        );
        let err = ffs
            .append_sync(&manifest, format!("{last}\n").as_bytes())
            .expect_err("the tear is certain");
        assert!(err.to_string().contains("torn write"));

        // Resume over the torn journal: the torn tail is skipped (or, if
        // the kept prefix happened to be the whole line, restored) and the
        // table is byte-identical either way.
        let resumed = run_cells_journaled(&sc, &cells, 2, 0, &manifest).expect("resume runs");
        assert_eq!(figure_table(&resumed), table);
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn faultfs_torn_manifest_header_resets_instead_of_mismatching() {
        use caba_store::{FaultFs, FaultRates, StoreFs};
        let sc = tiny_sc();
        let cells = tiny_cells();
        let manifest =
            std::env::temp_dir().join(format!("caba-test-torn-header-{:x}.txt", sweep_key(&sc)));
        let _ = std::fs::remove_file(&manifest);

        let full = run_cells_journaled(&sc, &cells, 2, 0, &manifest).expect("sweep runs");
        let table = figure_table(&full);
        let header = std::fs::read_to_string(&manifest)
            .expect("manifest exists")
            .lines()
            .next()
            .expect("header line")
            .to_string();

        // An intact header for this sweep still mismatches another sweep.
        let mut other = sc;
        other.scale = 0.1;
        let err = run_cells_stored(&other, &cells, 1, 0, Some(&manifest), None).unwrap_err();
        assert!(matches!(err, SweepError::ManifestMismatch { .. }));

        // Tear the header with real injection, picking the first seed
        // whose kept prefix ends inside the magic string so no key can
        // parse at all. That journal must read as empty — a fresh start,
        // not a mismatch and not a crash.
        std::fs::remove_file(&manifest).expect("clear manifest");
        for seed in 0.. {
            let ffs = FaultFs::new(
                seed,
                FaultRates {
                    torn_write: 1.0,
                    ..FaultRates::none()
                },
            );
            let _ = ffs.write_sync(&manifest, format!("{header}\n").as_bytes());
            let kept = std::fs::metadata(&manifest).map(|m| m.len()).unwrap_or(0);
            if kept > 0 && kept < MANIFEST_HEADER.len() as u64 {
                break;
            }
        }
        let rerun = run_cells_journaled(&sc, &cells, 2, 0, &manifest)
            .expect("torn header reads as an empty journal");
        assert_eq!(figure_table(&rerun), table);
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn chaotic_store_degrades_to_recompute_never_corrupts() {
        use caba_store::{FaultFs, FaultRates, Store};
        let sc = tiny_sc();
        let cells = tiny_cells();
        let clean = crate::run_cells(&sc, &cells, 2);
        let table = figure_table(&clean);
        for seed in 0..4 {
            let dir = caba_store::fsio::scratch_dir(&format!("resilient-chaos-{seed}"));
            let store = Store::open_with_fs(
                &dir,
                Box::new(FaultFs::new(seed, FaultRates::uniform(0.25))),
            )
            .expect("store opens");
            for pass in 0..2 {
                let got = run_cells_stored(&sc, &cells, 2, 0, None, Some(&store))
                    .expect("faulted store never fails the sweep");
                assert_eq!(
                    figure_table(&got),
                    table,
                    "seed {seed} pass {pass}: store fault leaked into results"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
