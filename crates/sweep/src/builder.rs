//! The one way to run a sweep: a builder that composes the journaling,
//! store-memoization, fork-from-warm-Base, and retry layers over the
//! single [`run_cell`](crate::run_cell) kernel entry point, replacing the
//! four parallel entry points (`run_cells`, `run_cells_journaled`,
//! `run_cells_stored`, `run_forked_stored`) this crate accumulated.
//!
//! ```no_run
//! use caba_sweep::{Figure, Sweep, SweepConfig};
//!
//! let sc = SweepConfig::default();
//! let run = Sweep::new(&sc, Figure::Fig07.cells())
//!     .jobs(4)
//!     .store_dir("/var/tmp/caba-store")
//!     .journal("/var/tmp/fig07.journal")
//!     .run()
//!     .expect("sweep");
//! println!("{} cells, {} from the store", run.results.len(), run.store_hits);
//! ```

use crate::fork::{exec_forked, ForkedSweep};
use crate::resilient::exec_stored;
use crate::{CellResult, DesignId, SweepCell, SweepConfig, SweepError};
use caba_store::Store;
use std::path::PathBuf;

/// Checkpoint economics of a forked sweep ([`Sweep::forked`]), mirroring
/// [`ForkedSweep`] minus the per-cell results (those live in
/// [`SweepRun::results`], reordered to the builder's input order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForkMeta {
    /// Warm-up budget per application, in cycles.
    pub warmup_cycles: u64,
    /// Total wall seconds spent warming Base machines.
    pub warmup_wall_s: f64,
    /// Total bytes across all Base snapshots taken.
    pub snapshot_bytes: usize,
    /// Apps whose warm snapshot came out of the durable store instead of
    /// being recomputed.
    pub warm_hits: usize,
    /// Cells that actually started from the warm checkpoint (the rest ran
    /// cold because their app finished inside the warm-up budget).
    pub forked_cells: usize,
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Per-cell results, in the builder's input order.
    pub results: Vec<CellResult>,
    /// Cells restored from the durable result store instead of simulated
    /// (always 0 in forked mode, where the store holds snapshots instead;
    /// see [`ForkMeta::warm_hits`]).
    pub store_hits: usize,
    /// Checkpoint economics when [`Sweep::forked`] was used.
    pub forked: Option<ForkMeta>,
}

impl SweepRun {
    /// The deterministic figure table for these results
    /// ([`figure_table`](crate::figure_table)).
    pub fn table(&self) -> String {
        crate::figure_table(&self.results)
    }
}

/// Builder over the resilient sweep executor. Construct with
/// [`Sweep::new`], layer options, then [`run`](Sweep::run).
///
/// | layer | method | effect |
/// |---|---|---|
/// | parallelism | [`jobs`](Sweep::jobs) | worker threads (default: host cores) |
/// | retry | [`retries`](Sweep::retries) | extra attempts after a caught panic |
/// | resume | [`journal`](Sweep::journal) | append-only manifest; re-runs only missing cells |
/// | memoize | [`store`](Sweep::store) / [`store_dir`](Sweep::store_dir) | durable result store; only misses simulate |
/// | fork | [`forked`](Sweep::forked) | shared warm-up prefix per app, forked into each design |
pub struct Sweep<'a> {
    sc: SweepConfig,
    cells: Vec<SweepCell>,
    jobs: usize,
    retries: u32,
    journal: Option<PathBuf>,
    store: Option<&'a Store>,
    store_dir: Option<PathBuf>,
    forked: Option<u64>,
}

impl<'a> Sweep<'a> {
    /// A sweep over `cells` under the shared options `sc`, with default
    /// layers: host-core parallelism, no retries, no journal, no store.
    pub fn new(sc: &SweepConfig, cells: Vec<SweepCell>) -> Self {
        Sweep {
            sc: *sc,
            cells,
            jobs: crate::host_cores(),
            retries: 0,
            journal: None,
            store: None,
            store_dir: None,
            forked: None,
        }
    }

    /// Worker threads (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Extra attempts after a caught panic (simulator errors never retry).
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Append-only resume journal: cells already journaled are not re-run,
    /// newly finished cells flush immediately.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Memoize results (or, in forked mode, warm snapshots) in an
    /// already-open durable [`Store`]. Mutually exclusive with
    /// [`store_dir`](Sweep::store_dir).
    pub fn store(mut self, store: &'a Store) -> Self {
        self.store = Some(store);
        self
    }

    /// Like [`store`](Sweep::store), but opens the store at `dir` inside
    /// [`run`](Sweep::run) (failing with [`SweepError::Store`]).
    pub fn store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Fork-from-warm-Base mode ([`crate::fork`]): warm each app's Base
    /// machine for `warmup` cycles once, then fork the suffix into every
    /// design. Requires stock-bandwidth cells (`bw_scale == 1.0`) and no
    /// journal; results stay in input order.
    pub fn forked(mut self, warmup: u64) -> Self {
        self.forked = Some(warmup);
        self
    }

    /// Executes the sweep.
    ///
    /// # Errors
    ///
    /// [`SweepError::InvalidOptions`] for inconsistent layering (both
    /// store forms, forked + journal, forked over scaled-bandwidth
    /// cells); [`SweepError::Store`] if [`store_dir`](Sweep::store_dir)
    /// fails to open; otherwise as the underlying executor
    /// ([`SweepError::CellsFailed`], [`SweepError::ManifestMismatch`],
    /// [`SweepError::Io`], [`SweepError::Fork`]).
    pub fn run(self) -> Result<SweepRun, SweepError> {
        if self.store.is_some() && self.store_dir.is_some() {
            return Err(SweepError::InvalidOptions(
                "pass either .store(&store) or .store_dir(dir), not both".into(),
            ));
        }
        let opened = match &self.store_dir {
            Some(dir) => Some(Store::open(dir).map_err(SweepError::Store)?),
            None => None,
        };
        let store: Option<&Store> = self.store.or(opened.as_ref());

        match self.forked {
            None => {
                let (results, store_hits) = exec_stored(
                    &self.sc,
                    &self.cells,
                    self.jobs,
                    self.retries,
                    self.journal.as_deref(),
                    store,
                )?;
                Ok(SweepRun {
                    results,
                    store_hits,
                    forked: None,
                })
            }
            Some(warmup) => self.run_forked(warmup, store),
        }
    }

    fn run_forked(&self, warmup: u64, store: Option<&Store>) -> Result<SweepRun, SweepError> {
        if self.journal.is_some() {
            return Err(SweepError::InvalidOptions(
                "forked sweeps do not support a resume journal".into(),
            ));
        }
        if let Some(cell) = self.cells.iter().find(|c| c.bw_scale != 1.0) {
            return Err(SweepError::InvalidOptions(format!(
                "forked sweeps require stock bandwidth; cell {}/{} has bw_scale {}",
                cell.app,
                cell.design.label(),
                cell.bw_scale
            )));
        }
        // The fork engine runs apps × designs; derive both matrices from
        // the cell list, unique in first-appearance order.
        let mut apps: Vec<&'static str> = Vec::new();
        let mut designs: Vec<DesignId> = Vec::new();
        for c in &self.cells {
            if !apps.contains(&c.app) {
                apps.push(c.app);
            }
            if !designs.contains(&c.design) {
                designs.push(c.design);
            }
        }
        let sweep: ForkedSweep = exec_forked(&self.sc, &apps, &designs, warmup, self.jobs, store)
            .map_err(SweepError::Fork)?;

        let meta = ForkMeta {
            warmup_cycles: sweep.warmup_cycles,
            warmup_wall_s: sweep.warmup_wall_s,
            snapshot_bytes: sweep.snapshot_bytes,
            warm_hits: sweep.warm_hits,
            forked_cells: sweep.cells.iter().filter(|c| c.forked).count(),
        };
        // Re-emit in the builder's input order (the engine returns
        // apps-major over the derived matrices, which may be a superset
        // when the input was not a full cross product).
        let results = self
            .cells
            .iter()
            .map(|c| {
                sweep
                    .cells
                    .iter()
                    .find(|fc| fc.result.cell == *c)
                    .expect("fork engine covers every requested cell")
                    .result
                    .clone()
            })
            .collect();
        Ok(SweepRun {
            results,
            store_hits: 0,
            forked: Some(meta),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{figure_table, run_cells, run_forked};
    use caba_sim::GpuConfig;

    fn tiny_sc() -> SweepConfig {
        SweepConfig {
            scale: 0.05,
            cfg: GpuConfig::small(),
        }
    }

    fn tiny_cells() -> Vec<SweepCell> {
        [
            ("CONS", DesignId::Base, 1.0),
            ("CONS", DesignId::CabaBdi, 1.0),
            ("BFS", DesignId::Base, 1.0),
        ]
        .into_iter()
        .map(|(app, design, bw_scale)| SweepCell {
            app,
            design,
            bw_scale,
        })
        .collect()
    }

    #[test]
    fn builder_matches_the_plain_executor_bit_for_bit() {
        let sc = tiny_sc();
        let cells = tiny_cells();
        let plain = run_cells(&sc, &cells, 2);
        let built = Sweep::new(&sc, cells).jobs(2).run().expect("sweep runs");
        assert_eq!(built.store_hits, 0);
        assert!(built.forked.is_none());
        assert_eq!(figure_table(&built.results), figure_table(&plain));
    }

    #[test]
    fn store_dir_layer_warm_starts_a_second_run() {
        let sc = tiny_sc();
        let cells = tiny_cells();
        let dir = caba_store::fsio::scratch_dir("builder-warm");

        let cold = Sweep::new(&sc, cells.clone())
            .jobs(2)
            .store_dir(&dir)
            .run()
            .expect("cold sweep");
        assert_eq!(cold.store_hits, 0);

        let warm = Sweep::new(&sc, cells.clone())
            .jobs(2)
            .store_dir(&dir)
            .run()
            .expect("warm sweep");
        assert_eq!(warm.store_hits, cells.len(), "every cell restored");
        assert_eq!(figure_table(&warm.results), figure_table(&cold.results));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forked_layer_matches_run_forked_in_input_order() {
        let sc = tiny_sc();
        // Input deliberately NOT apps-major: the builder must reorder the
        // engine's apps-major output back to this.
        let cells = vec![
            SweepCell {
                app: "CONS",
                design: DesignId::CabaBdi,
                bw_scale: 1.0,
            },
            SweepCell {
                app: "CONS",
                design: DesignId::Base,
                bw_scale: 1.0,
            },
        ];
        let built = Sweep::new(&sc, cells.clone())
            .jobs(1)
            .forked(500)
            .run()
            .expect("forked sweep");
        let meta = built.forked.expect("fork meta present");
        assert_eq!(meta.warmup_cycles, 500);
        assert_eq!(meta.forked_cells, 2, "CONS outlives a 500-cycle warm-up");
        for (got, want) in built.results.iter().zip(&cells) {
            assert_eq!(got.cell, *want, "input order preserved");
        }
        let reference = run_forked(&sc, &["CONS"], &[DesignId::CabaBdi, DesignId::Base], 500, 1)
            .expect("reference fork");
        for (got, want) in built.results.iter().zip(&reference.cells) {
            assert_eq!(got.stats, want.result.stats);
        }
    }

    #[test]
    fn inconsistent_layers_fail_typed() {
        let sc = tiny_sc();
        let store = Store::open(caba_store::fsio::scratch_dir("builder-both")).unwrap();
        let err = Sweep::new(&sc, tiny_cells())
            .store(&store)
            .store_dir("/tmp/elsewhere")
            .run()
            .unwrap_err();
        assert!(matches!(err, SweepError::InvalidOptions(_)), "{err}");

        let err = Sweep::new(&sc, tiny_cells())
            .forked(500)
            .journal("/tmp/j")
            .run()
            .unwrap_err();
        assert!(matches!(err, SweepError::InvalidOptions(_)), "{err}");

        let mut cells = tiny_cells();
        cells[0].bw_scale = 2.0;
        let err = Sweep::new(&sc, cells).forked(500).run().unwrap_err();
        assert!(
            matches!(err, SweepError::InvalidOptions(ref msg) if msg.contains("bw_scale 2")),
            "{err}"
        );
    }
}
