//! An event-based GPU energy model — the GPUWattch + CACTI stand-in used to
//! regenerate Figure 9 (normalized energy) and the §6.2 power analysis.
//!
//! The paper models "the static and dynamic energy of the cores, caches,
//! DRAM, and all buses (both on-chip and off-chip), as well as the energy
//! overheads related to compression: metadata (MD) cache and
//! compression/decompression logic". We charge a per-event energy for each
//! of those components from the [`RunStats`] a simulation produces. The
//! constants are in the published ballpark for a 40 nm-class GPU (GPUWattch,
//! Leng et al., ISCA 2013) but we claim only the *shape*: energy savings
//! are dominated by reduced DRAM traffic and shorter execution, CABA adds
//! core-side instruction energy that dedicated hardware does not, and the
//! MD cache/compression logic overheads are small.
//!
//! # Examples
//!
//! ```
//! use caba_energy::{energy, DesignKind};
//! use caba_sim::RunStats;
//!
//! let stats = RunStats { cycles: 1000, app_instructions: 2000, ..Default::default() };
//! let e = energy(&stats, DesignKind::Base);
//! assert!(e.total_nj() > 0.0);
//! ```

use caba_sim::RunStats;

/// How compression work is implemented, for overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignKind {
    /// No compression machinery at all.
    Base,
    /// Dedicated compression/decompression logic (HW-BDI, HW-BDI-Mem).
    DedicatedLogic,
    /// Assist warps on the cores (CABA-*). Instruction energy is already
    /// charged via `assist_instructions`.
    Caba,
    /// Ideal: compression with zero energy overhead.
    Ideal,
}

/// Per-event energy constants in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Per issued instruction (pipeline + register file), nJ.
    pub per_instruction: f64,
    /// Per L1 access.
    pub per_l1_access: f64,
    /// Per L2 access.
    pub per_l2_access: f64,
    /// Per shared-memory access.
    pub per_shared_access: f64,
    /// Per 32-byte interconnect flit.
    pub per_flit: f64,
    /// Per 32-byte DRAM burst (I/O + array).
    pub per_dram_burst: f64,
    /// Per DRAM row activation.
    pub per_activate: f64,
    /// Core static energy per SM-cycle.
    pub core_static_per_sm_cycle: f64,
    /// DRAM static energy per channel-cycle.
    pub dram_static_per_channel_cycle: f64,
    /// Per MD-cache lookup (8 KB cache, CACTI-style).
    pub per_md_lookup: f64,
    /// Per line (de)compressed in dedicated logic (Synopsys-style estimate
    /// the paper scaled to 32 nm).
    pub per_hw_codec_line: f64,
    /// SMs (for static energy).
    pub num_sms: f64,
    /// DRAM channels (for static energy).
    pub num_channels: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            per_instruction: 0.30,
            per_l1_access: 0.06,
            per_l2_access: 0.18,
            per_shared_access: 0.04,
            per_flit: 0.20,
            per_dram_burst: 5.0,
            per_activate: 2.0,
            core_static_per_sm_cycle: 0.20,
            dram_static_per_channel_cycle: 0.30,
            per_md_lookup: 0.01,
            per_hw_codec_line: 0.10,
            num_sms: 15.0,
            num_channels: 6.0,
        }
    }
}

/// Energy broken down by component, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core dynamic energy (instructions, both app and assist).
    pub core_dynamic: f64,
    /// Cache and shared-memory dynamic energy.
    pub caches: f64,
    /// Interconnect energy.
    pub icnt: f64,
    /// DRAM dynamic energy (bursts + activations).
    pub dram_dynamic: f64,
    /// DRAM static energy (scales with execution time).
    pub dram_static: f64,
    /// Core static energy (scales with execution time).
    pub core_static: f64,
    /// Compression overheads: MD cache + dedicated codec logic.
    pub compression_overhead: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.core_dynamic
            + self.caches
            + self.icnt
            + self.dram_dynamic
            + self.dram_static
            + self.core_static
            + self.compression_overhead
    }

    /// DRAM energy (dynamic + static) — the paper reports a 29.5% average
    /// DRAM power reduction for CABA-BDI.
    pub fn dram_nj(&self) -> f64 {
        self.dram_dynamic + self.dram_static
    }

    /// Average power in nanojoules/cycle (∝ watts at fixed frequency);
    /// `cycles` must come from the same run.
    pub fn avg_power(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total_nj() / cycles as f64
        }
    }
}

/// Computes the energy of one run with default parameters.
pub fn energy(stats: &RunStats, kind: DesignKind) -> EnergyBreakdown {
    energy_with(stats, kind, &EnergyParams::default())
}

/// Computes the energy of one run with explicit parameters.
pub fn energy_with(stats: &RunStats, kind: DesignKind, p: &EnergyParams) -> EnergyBreakdown {
    let instructions = (stats.app_instructions + stats.assist_instructions) as f64;
    let core_dynamic = instructions * p.per_instruction;
    let caches = (stats.l1_hits + stats.l1_misses) as f64 * p.per_l1_access
        + (stats.l2_hits + stats.l2_misses) as f64 * p.per_l2_access
        + stats.shared_accesses as f64 * p.per_shared_access;
    let icnt = stats.icnt_flits as f64 * p.per_flit;
    let dram_dynamic =
        stats.dram_bursts as f64 * p.per_dram_burst + stats.dram_activates as f64 * p.per_activate;
    let dram_static = stats.cycles as f64 * p.num_channels * p.dram_static_per_channel_cycle;
    let core_static = stats.cycles as f64 * p.num_sms * p.core_static_per_sm_cycle;
    let compression_overhead = match kind {
        DesignKind::Base | DesignKind::Ideal => 0.0,
        DesignKind::DedicatedLogic => {
            stats.md_lookups as f64 * p.per_md_lookup
                + (stats.lines_compressed + stats.lines_decompressed) as f64 * p.per_hw_codec_line
        }
        // CABA's codec energy is the assist instructions (already charged in
        // core_dynamic); only the MD cache remains.
        DesignKind::Caba => stats.md_lookups as f64 * p.per_md_lookup,
    };
    EnergyBreakdown {
        core_dynamic,
        caches,
        icnt,
        dram_dynamic,
        dram_static,
        core_static,
        compression_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_stats() -> RunStats {
        RunStats {
            cycles: 10_000,
            app_instructions: 50_000,
            l1_hits: 5_000,
            l1_misses: 5_000,
            l2_hits: 2_000,
            l2_misses: 3_000,
            icnt_flits: 20_000,
            dram_bursts: 12_000,
            dram_activates: 1_500,
            shared_accesses: 100,
            ..Default::default()
        }
    }

    #[test]
    fn totals_are_positive_and_additive() {
        let e = energy(&base_stats(), DesignKind::Base);
        let sum = e.core_dynamic
            + e.caches
            + e.icnt
            + e.dram_dynamic
            + e.dram_static
            + e.core_static
            + e.compression_overhead;
        assert!(e.total_nj() > 0.0);
        assert!((e.total_nj() - sum).abs() < 1e-9);
        assert!(e.avg_power(10_000) > 0.0);
        assert_eq!(e.avg_power(0), 0.0);
    }

    #[test]
    fn fewer_bursts_and_cycles_save_energy() {
        let base = energy(&base_stats(), DesignKind::Base);
        let mut improved = base_stats();
        improved.dram_bursts /= 2;
        improved.cycles = 7_000;
        improved.icnt_flits /= 2;
        let better = energy(&improved, DesignKind::Base);
        assert!(better.total_nj() < base.total_nj());
        assert!(better.dram_nj() < base.dram_nj());
    }

    #[test]
    fn caba_charges_assist_instructions_not_codec_lines() {
        let mut s = base_stats();
        s.assist_instructions = 10_000;
        s.lines_compressed = 1_000;
        s.lines_decompressed = 2_000;
        s.md_lookups = 5_000;
        let caba = energy(&s, DesignKind::Caba);
        let hw = energy(&s, DesignKind::DedicatedLogic);
        // Same stats: CABA pays instruction energy; HW pays codec energy.
        assert!(caba.core_dynamic == hw.core_dynamic);
        assert!(hw.compression_overhead > caba.compression_overhead);
        let ideal = energy(&s, DesignKind::Ideal);
        assert_eq!(ideal.compression_overhead, 0.0);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let mut slow = base_stats();
        slow.cycles *= 2;
        let e_fast = energy(&base_stats(), DesignKind::Base);
        let e_slow = energy(&slow, DesignKind::Base);
        assert!((e_slow.core_static - 2.0 * e_fast.core_static).abs() < 1e-9);
        assert!((e_slow.dram_static - 2.0 * e_fast.dram_static).abs() < 1e-9);
    }

    #[test]
    fn custom_params_respected() {
        let p = EnergyParams {
            per_instruction: 0.0,
            core_static_per_sm_cycle: 0.0,
            ..Default::default()
        };
        let e = energy_with(&base_stats(), DesignKind::Base, &p);
        assert_eq!(e.core_dynamic, 0.0);
        assert_eq!(e.core_static, 0.0);
        assert!(e.dram_dynamic > 0.0);
    }
}
