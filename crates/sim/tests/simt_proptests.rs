//! Property tests on the SIMT reconvergence stack and the scoreboard,
//! driven by the in-repo deterministic property harness
//! (`caba_stats::prop`).

use caba_isa::Reg;
use caba_sim::Warp;
use caba_stats::prop;
use caba_stats::Rng64;

/// Random structured branch/advance/exit sequences keep the stack
/// well-formed: masks are nonempty, nested masks are subsets of the masks
/// below them (checked indirectly through active_mask), and the warp ends
/// either done or with a valid PC.
#[test]
fn simt_stack_stays_well_formed() {
    prop::check(0x51317_57ACC, 128, |rng: &mut Rng64| {
        let nops = 1 + rng.range_u64(59) as usize;
        let mut w = Warp::new(4, u32::MAX);
        for _ in 0..nops {
            if w.done {
                break;
            }
            let active = w.active_mask();
            assert!(active != 0, "active warp must have live lanes");
            match rng.range_u64(4) {
                0 => w.advance_pc(),
                1 => {
                    // Forward divergent branch: half the active lanes jump.
                    let taken = active & 0x5555_5555;
                    let next = w.pc() + 1;
                    let target = w.pc() + 3;
                    let reconv = w.pc() + 5;
                    if taken != 0 && taken != active {
                        w.take_branch(taken, target, next, reconv);
                    } else {
                        w.take_branch(active, target, next, reconv);
                    }
                }
                2 => {
                    // Exit one active lane.
                    let lane = active.trailing_zeros();
                    w.exit_lanes(1 << lane);
                }
                _ => {
                    // Uniform jump backward (bounded).
                    let target = w.pc().saturating_sub(2);
                    w.take_branch(active, target, w.pc() + 1, w.pc() + 1);
                }
            }
            assert!(w.simt_depth() <= 64, "stack must stay bounded");
        }
    });
}

/// Scoreboard: pending bits are exact — marking then clearing any sequence
/// of registers leaves exactly the un-cleared ones pending, and
/// `pending_regs` enumerates precisely that set.
#[test]
fn scoreboard_is_exact() {
    prop::check(0x5_C0EB_0A2D, 128, |rng: &mut Rng64| {
        let marks: Vec<u16> = (0..rng.range_u64(40))
            .map(|_| rng.range_u64(80) as u16)
            .collect();
        let clears: Vec<u16> = (0..rng.range_u64(40))
            .map(|_| rng.range_u64(80) as u16)
            .collect();
        let mut w = Warp::new(80, u32::MAX);
        for &r in &marks {
            w.mark_pending(Reg(r));
        }
        for &r in &clears {
            w.clear_pending(Reg(r));
        }
        use std::collections::HashSet;
        let expected: HashSet<u16> = marks
            .iter()
            .copied()
            .filter(|r| !clears.contains(r))
            .collect();
        for r in 0..80u16 {
            assert_eq!(w.is_pending(Reg(r)), expected.contains(&r), "r{r}");
        }
        assert_eq!(w.any_pending(), !expected.is_empty());
        let enumerated: HashSet<u16> = w.pending_regs().map(|r| r.0).collect();
        assert_eq!(enumerated, expected, "pending_regs must enumerate the set");
    });
}
