//! Property tests on the SIMT reconvergence stack and the scoreboard.

use caba_sim::Warp;
use caba_isa::Reg;
use proptest::prelude::*;

proptest! {
    /// Random structured branch/advance/exit sequences keep the stack
    /// well-formed: masks are nonempty, nested masks are subsets of the
    /// masks below them (checked indirectly through active_mask), and the
    /// warp ends either done or with a valid PC.
    #[test]
    fn simt_stack_stays_well_formed(ops in proptest::collection::vec(0u8..4, 1..60)) {
        let mut w = Warp::new(4, u32::MAX);
        let mut pc_guess = 0usize;
        for op in ops {
            if w.done {
                break;
            }
            let active = w.active_mask();
            prop_assert!(active != 0, "active warp must have live lanes");
            match op {
                0 => w.advance_pc(),
                1 => {
                    // Forward divergent branch: half the active lanes jump.
                    let taken = active & 0x5555_5555;
                    let next = w.pc() + 1;
                    let target = w.pc() + 3;
                    let reconv = w.pc() + 5;
                    if taken != 0 && taken != active {
                        w.take_branch(taken, target, next, reconv);
                    } else {
                        w.take_branch(active, target, next, reconv);
                    }
                }
                2 => {
                    // Exit one active lane.
                    let lane = active.trailing_zeros();
                    w.exit_lanes(1 << lane);
                }
                _ => {
                    // Uniform jump backward (bounded).
                    let target = w.pc().saturating_sub(2);
                    w.take_branch(active, target, w.pc() + 1, w.pc() + 1);
                }
            }
            pc_guess = pc_guess.max(w.pc());
            prop_assert!(w.simt_depth() <= 64, "stack must stay bounded");
        }
    }

    /// Scoreboard: pending bits are exact — marking then clearing any
    /// sequence of registers leaves exactly the un-cleared ones pending.
    #[test]
    fn scoreboard_is_exact(marks in proptest::collection::vec(0u16..80, 0..40),
                           clears in proptest::collection::vec(0u16..80, 0..40)) {
        let mut w = Warp::new(80, u32::MAX);
        for &r in &marks {
            w.mark_pending(Reg(r));
        }
        for &r in &clears {
            w.clear_pending(Reg(r));
        }
        use std::collections::HashSet;
        let expected: HashSet<u16> = marks
            .iter()
            .copied()
            .filter(|r| !clears.contains(r))
            .collect();
        for r in 0..80u16 {
            prop_assert_eq!(w.is_pending(Reg(r)), expected.contains(&r), "r{}", r);
        }
        prop_assert_eq!(w.any_pending(), !expected.is_empty());
    }
}
