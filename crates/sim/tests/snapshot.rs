//! Checkpoint/restore integration tests: a snapshot taken mid-run, restored
//! into a fresh GPU, and resumed must be bit-identical to an unbroken run —
//! across designs, under fault injection, and for any worker count — and a
//! corrupted container must be rejected with a typed error, never loaded.

use caba_compress::Algorithm;
use caba_isa::{
    AluOp, CmpOp, Kernel, LaunchDims, Pred, ProgramBuilder, Reg, Space, Special, Src, Width,
};
use caba_sim::fault::corrupt_snapshot;
use caba_sim::{Design, FaultConfig, FaultMode, Gpu, GpuConfig, RestoreError, RunError, RunStats};
use caba_stats::checksum64;

const MAX: u64 = 2_000_000;

/// out[i] = in[i] * 2, one element per thread.
fn scale_kernel(n: u32, in_base: u64, out_base: u64) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
    b.alu(AluOp::Shl, v, Src::Reg(v), Src::Imm(1));
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(1)));
    b.st(Space::Global, Width::B4, Src::Reg(v), Src::Reg(addr), 0);
    b.exit();
    let blocks = n.div_ceil(64);
    Kernel::new("scale", b.build(), LaunchDims::new(blocks, 64))
        .with_params(vec![in_base, out_base])
}

fn load_input(gpu: &mut Gpu, n: u32, base: u64) {
    for i in 0..n {
        gpu.mem_mut().write_u32(base + i as u64 * 4, 0x100 + i);
    }
}

fn check_output(gpu: &Gpu, n: u32, base: u64) {
    for i in 0..n {
        assert_eq!(
            gpu.mem().read_u32(base + i as u64 * 4),
            (0x100 + i) * 2,
            "element {i}"
        );
    }
}

const N: u32 = 1024;
const IN: u64 = 0x1_0000;
const OUT: u64 = 0x4_0000;

fn unbroken(cfg: GpuConfig, design: Design, kernel: &Kernel) -> (RunStats, Gpu) {
    let mut gpu = Gpu::new(cfg, design);
    load_input(&mut gpu, N, IN);
    let stats = gpu.run(kernel, MAX).expect("unbroken run completes");
    (stats, gpu)
}

/// Runs to a timeout at `split` cycles, snapshots, restores into a fresh
/// GPU built with `resume_cfg`, and resumes to completion.
fn split_and_resume(
    cfg: GpuConfig,
    resume_cfg: GpuConfig,
    design: Design,
    kernel: &Kernel,
    split: u64,
) -> (RunStats, Gpu) {
    let resumed_design = design.fork();
    let mut g1 = Gpu::new(cfg, design);
    load_input(&mut g1, N, IN);
    let err = g1.run(kernel, split).unwrap_err();
    assert!(
        matches!(err, RunError::Timeout { cycles, .. } if cycles == split),
        "split run must time out at the snapshot point, got: {err}"
    );
    // No load_input on the restored GPU: functional memory (inputs and all
    // intermediate state) comes from the snapshot alone.
    let bytes = g1.snapshot(kernel);
    let mut g2 = Gpu::new(resume_cfg, resumed_design);
    g2.restore(kernel, &bytes).expect("snapshot restores");
    assert_eq!(g2.cycle(), split);
    let stats = g2.resume(kernel, MAX).expect("resumed run completes");
    (stats, g2)
}

fn designs() -> Vec<Design> {
    vec![
        Design::Base,
        Design::HwMemOnly {
            alg: Algorithm::Bdi,
        },
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: true,
        },
    ]
}

#[test]
fn restore_resume_matches_unbroken_run_across_designs() {
    let cfg = GpuConfig::small();
    let kernel = scale_kernel(N, IN, OUT);
    for design in designs() {
        let label = design.label();
        let (full, _) = unbroken(cfg, design.fork(), &kernel);
        let split = full.cycles / 2;
        let (resumed, g2) = split_and_resume(cfg, cfg, design, &kernel, split);
        assert_eq!(
            resumed, full,
            "{label}: resumed stats must be bit-identical"
        );
        check_output(&g2, N, OUT);
    }
}

#[test]
fn in_place_resume_after_timeout_matches_unbroken_run() {
    let cfg = GpuConfig::small();
    let kernel = scale_kernel(N, IN, OUT);
    let (full, _) = unbroken(cfg, Design::Base, &kernel);
    let mut gpu = Gpu::new(cfg, Design::Base);
    load_input(&mut gpu, N, IN);
    assert!(matches!(
        gpu.run(&kernel, full.cycles / 3),
        Err(RunError::Timeout { .. })
    ));
    let resumed = gpu.resume(&kernel, MAX).expect("resume completes");
    assert_eq!(resumed, full);
    check_output(&gpu, N, OUT);
}

#[test]
fn restore_resume_is_exact_under_fault_injection() {
    let mut cfg = GpuConfig::small();
    cfg.fault = FaultConfig::recover(0xFA57_CAB4, 0.02);
    let kernel = scale_kernel(N, IN, OUT);
    let (full, _) = unbroken(cfg, Design::Base, &kernel);
    assert!(
        full.flit_retransmissions > 0,
        "fault injection must actually fire for this test to mean anything"
    );
    let (resumed, _) = split_and_resume(cfg, cfg, Design::Base, &kernel, full.cycles / 2);
    assert_eq!(
        resumed, full,
        "restored fault-injector RNG streams must continue exactly"
    );
}

#[test]
fn snapshot_restores_across_worker_counts() {
    let cfg = GpuConfig::small();
    let kernel = scale_kernel(N, IN, OUT);
    let (full, _) = unbroken(cfg, Design::Base, &kernel);
    let split = full.cycles / 2;
    for (take_jobs, resume_jobs) in [(1, 2), (2, 4), (4, 1)] {
        let mut take_cfg = cfg;
        take_cfg.intra_jobs = take_jobs;
        let mut resume_cfg = cfg;
        resume_cfg.intra_jobs = resume_jobs;
        let (resumed, _) = split_and_resume(take_cfg, resume_cfg, Design::Base, &kernel, split);
        assert_eq!(
            resumed, full,
            "snapshot at intra_jobs={take_jobs} resumed at intra_jobs={resume_jobs}"
        );
    }
}

#[test]
fn periodic_checkpoint_restores_to_identical_completion() {
    let mut cfg = GpuConfig::small();
    cfg.checkpoint_interval = 64;
    let kernel = scale_kernel(N, IN, OUT);
    let (full, gpu) = unbroken(cfg, Design::Base, &kernel);
    let (at, bytes) = gpu.last_checkpoint().expect("periodic checkpoints taken");
    assert!(at > 0 && at.is_multiple_of(64));
    let bytes = bytes.to_vec();
    let mut g2 = Gpu::new(cfg, Design::Base);
    g2.restore(&kernel, &bytes)
        .expect("periodic snapshot restores");
    assert_eq!(g2.cycle(), at);
    let resumed = g2.resume(&kernel, MAX).expect("resumed run completes");
    assert_eq!(resumed, full);
    check_output(&g2, N, OUT);
}

#[test]
fn corrupted_snapshot_is_rejected_never_loaded() {
    let cfg = GpuConfig::small();
    let kernel = scale_kernel(N, IN, OUT);
    let mut g1 = Gpu::new(cfg, Design::Base);
    load_input(&mut g1, N, IN);
    let _ = g1.run(&kernel, 500);
    let pristine = g1.snapshot(&kernel);
    for seed in 0..64 {
        let mut bad = pristine.clone();
        let flipped = corrupt_snapshot(&mut bad, seed);
        assert!(flipped.is_some());
        let mut g2 = Gpu::new(cfg, Design::Base);
        assert_eq!(
            g2.restore(&kernel, &bad),
            Err(RestoreError::ChecksumMismatch),
            "seed {seed}: a bit-flipped snapshot must be rejected by checksum"
        );
        // The rejected restore must not have touched the machine.
        assert_eq!(g2.cycle(), 0);
    }
    // The pristine bytes still restore — the rejections above were real.
    let mut g2 = Gpu::new(cfg, Design::Base);
    g2.restore(&kernel, &pristine)
        .expect("pristine snapshot restores");
}

#[test]
fn truncated_snapshot_is_rejected() {
    let cfg = GpuConfig::small();
    let kernel = scale_kernel(N, IN, OUT);
    let mut g1 = Gpu::new(cfg, Design::Base);
    load_input(&mut g1, N, IN);
    let _ = g1.run(&kernel, 500);
    let bytes = g1.snapshot(&kernel);
    for len in [0, 7, 8, bytes.len() / 2, bytes.len() - 1] {
        let mut g2 = Gpu::new(cfg, Design::Base);
        assert!(
            g2.restore(&kernel, &bytes[..len]).is_err(),
            "truncation to {len} bytes must be rejected"
        );
    }
}

#[test]
fn header_mismatches_are_typed() {
    let cfg = GpuConfig::small();
    let kernel = scale_kernel(N, IN, OUT);
    let mut g1 = Gpu::new(cfg, Design::Base);
    load_input(&mut g1, N, IN);
    let _ = g1.run(&kernel, 500);
    let bytes = g1.snapshot(&kernel);

    // Different machine shape → ConfigHashMismatch.
    let mut other_cfg = cfg;
    other_cfg.mshrs += 1;
    let mut g = Gpu::new(other_cfg, Design::Base);
    assert_eq!(
        g.restore(&kernel, &bytes),
        Err(RestoreError::ConfigHashMismatch)
    );

    // Tolerated knobs (observability, checkpointing, workers, watchdog)
    // do NOT reject.
    let mut tolerant_cfg = cfg;
    tolerant_cfg.intra_jobs = 4;
    tolerant_cfg.checkpoint_interval = 123;
    tolerant_cfg.observability = caba_sim::ObservabilityConfig {
        trace: Some(caba_sim::TraceConfig::full(1)),
        metrics: caba_sim::MetricsLevel::Counters,
    };
    let mut g = Gpu::new(tolerant_cfg, Design::Base);
    g.restore(&kernel, &bytes)
        .expect("tolerated knobs must not reject a restore");

    // Different design point → DesignMismatch.
    let mut g = Gpu::new(
        cfg,
        Design::HwMemOnly {
            alg: Algorithm::Bdi,
        },
    );
    assert!(matches!(
        g.restore(&kernel, &bytes),
        Err(RestoreError::DesignMismatch { .. })
    ));

    // Different program → KernelMismatch.
    let mut b = ProgramBuilder::new();
    b.global_thread_id(Reg(0));
    b.exit();
    let other_kernel = Kernel::new("other", b.build(), LaunchDims::new(1, 64));
    let mut g = Gpu::new(cfg, Design::Base);
    assert_eq!(
        g.restore(&other_kernel, &bytes),
        Err(RestoreError::KernelMismatch)
    );

    // Unknown format version (re-sealed so the checksum passes, proving
    // the version gate itself) → VersionMismatch.
    let mut vbytes = bytes.clone();
    let body_len = vbytes.len() - 8;
    vbytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let sum = checksum64(&vbytes[..body_len]);
    vbytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    let mut g = Gpu::new(cfg, Design::Base);
    assert_eq!(
        g.restore(&kernel, &vbytes),
        Err(RestoreError::VersionMismatch { found: 99 })
    );
}

#[test]
fn base_snapshot_forks_into_other_designs() {
    let cfg = GpuConfig::small();
    let kernel = scale_kernel(N, IN, OUT);
    let (full, _) = unbroken(cfg, Design::Base, &kernel);
    let mut warm = Gpu::new(cfg, Design::Base);
    load_input(&mut warm, N, IN);
    assert!(matches!(
        warm.run(&kernel, full.cycles / 2),
        Err(RunError::Timeout { .. })
    ));
    let bytes = warm.snapshot(&kernel);
    for design in designs() {
        let label = design.label();
        let mut g = Gpu::new(cfg, design);
        g.restore_fork(&kernel, &bytes)
            .unwrap_or_else(|e| panic!("{label}: fork restore failed: {e}"));
        let stats = g
            .resume(&kernel, MAX)
            .unwrap_or_else(|e| panic!("{label}: forked run failed: {e}"));
        assert_eq!(stats.threads_retired, full.threads_retired, "{label}");
        check_output(&g, N, OUT);
    }
    // Only Base snapshots are forkable: a compressed design's snapshot
    // carries design state the target cannot absorb.
    let mut hw = Gpu::new(
        cfg,
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
    );
    load_input(&mut hw, N, IN);
    assert!(matches!(hw.run(&kernel, 64), Err(RunError::Timeout { .. })));
    let hw_bytes = hw.snapshot(&kernel);
    let mut g = Gpu::new(cfg, Design::Base);
    assert!(matches!(
        g.restore_fork(&kernel, &hw_bytes),
        Err(RestoreError::DesignMismatch { .. })
    ));
}

/// One 64-thread block, two warps: warp 1 consumes a load before the block
/// barrier, warp 0 goes straight to it. With every crossbar packet silently
/// dropped, the machine wedges at the barrier.
fn barrier_hang_kernel(in_base: u64) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    b.setp(Pred(0), CmpOp::GeU, Src::Reg(gid), Src::Imm(32));
    b.if_then(Pred(0), true, |b| {
        b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
        b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
        b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
        b.alu(AluOp::Add, v, Src::Reg(v), Src::Imm(1));
    });
    b.bar();
    b.exit();
    Kernel::new("barrier-hang", b.build(), LaunchDims::new(1, 64)).with_params(vec![in_base])
}

#[test]
fn hang_forensics_attaches_replay_trace() {
    let mut cfg = GpuConfig::small();
    cfg.watchdog_window = 2_000;
    cfg.audit_interval = 0;
    cfg.checkpoint_interval = 500;
    cfg.fault = FaultConfig {
        enabled: true,
        seed: 9,
        mode: FaultMode::Silent,
        drop_flit_rate: 1.0,
        ..FaultConfig::disabled()
    };
    let mut gpu = Gpu::new(cfg, Design::Base);
    load_input(&mut gpu, 64, IN);
    let err = gpu.run(&barrier_hang_kernel(IN), 1_000_000).unwrap_err();
    let RunError::Hang { ref report, .. } = err else {
        panic!("expected a hang, got: {err}");
    };
    let path = report
        .trace_path
        .as_ref()
        .expect("periodic checkpoints enable time-travel forensics");
    let trace = std::fs::read_to_string(path).expect("forensics trace file exists");
    assert!(
        trace.trim_start().starts_with('['),
        "forensics trace is Chrome-trace JSON"
    );
    assert!(!trace.trim().is_empty());
    assert!(
        err.to_string().contains("forensics trace:"),
        "the hang report names the trace file"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn hang_without_checkpoints_has_no_trace() {
    let mut cfg = GpuConfig::small();
    cfg.watchdog_window = 2_000;
    cfg.audit_interval = 0;
    cfg.fault = FaultConfig {
        enabled: true,
        seed: 9,
        mode: FaultMode::Silent,
        drop_flit_rate: 1.0,
        ..FaultConfig::disabled()
    };
    let mut gpu = Gpu::new(cfg, Design::Base);
    load_input(&mut gpu, 64, IN);
    let err = gpu.run(&barrier_hang_kernel(IN), 1_000_000).unwrap_err();
    let RunError::Hang { ref report, .. } = err else {
        panic!("expected a hang, got: {err}");
    };
    assert_eq!(report.trace_path, None);
}

/// Serialize → restore → re-serialize must be byte-identical: restoring a
/// snapshot and immediately re-snapshotting the machine reproduces the
/// container bit for bit, for every design. This transitively pins the
/// round-trip property of every `SnapshotState` impl the machine embeds
/// (SMs, warps, hazard memos, caches, partitions, fault injector, stats).
#[test]
fn restore_resnapshot_is_byte_identical() {
    let cfg = GpuConfig::small();
    let kernel = scale_kernel(N, IN, OUT);
    for design in designs() {
        let label = design.label();
        let restored_design = design.fork();
        let mut g1 = Gpu::new(cfg, design);
        load_input(&mut g1, N, IN);
        g1.run(&kernel, 100).unwrap_err();
        let first = g1.snapshot(&kernel);
        let mut g2 = Gpu::new(cfg, restored_design);
        g2.restore(&kernel, &first).expect("snapshot restores");
        let second = g2.snapshot(&kernel);
        assert_eq!(first, second, "{label}: re-snapshot drifted");
    }
}

/// `RunStats` round-trips through its `SnapshotState` encoding
/// byte-identically, both for a real mid-run sample and under randomized
/// counter perturbations.
#[test]
fn run_stats_round_trip_is_byte_identical() {
    use caba_stats::{prop, SnapshotReader, SnapshotState, SnapshotWriter};
    let cfg = GpuConfig::small();
    let kernel = scale_kernel(N, IN, OUT);
    let (full, _) = unbroken(cfg, Design::Base, &kernel);
    prop::check(0x5EED_0006, prop::DEFAULT_CASES, |rng| {
        let mut stats = full.clone();
        // Perturb the plain counters the RNG can reach without knowing the
        // struct layout; the breakdown stays the real measured one.
        stats.cycles = rng.next_u64();
        stats.app_instructions = rng.next_u64();
        stats.threads_retired = rng.next_u64();
        stats.dram_bursts = rng.next_u64();
        stats.l2_hits = rng.next_u64();
        stats.l2_misses = rng.next_u64();
        stats.icnt_flits = rng.next_u64();
        stats.flit_retransmissions = rng.next_u64();
        let mut w = SnapshotWriter::new();
        stats.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back = RunStats::load(&mut r).expect("stats load");
        r.finish().expect("no trailing bytes");
        assert_eq!(back, stats);
        let mut w2 = SnapshotWriter::new();
        back.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    });
}

#[test]
fn checkpoint_sink_spills_every_interval_checkpoint() {
    use std::sync::{Arc, Mutex};
    let mut cfg = GpuConfig::small();
    cfg.checkpoint_interval = 64;
    let kernel = scale_kernel(N, IN, OUT);
    let (full, _) = unbroken(cfg, Design::Base, &kernel);

    type SpillBuf = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;
    let spilled: SpillBuf = Arc::new(Mutex::new(Vec::new()));
    let mut gpu = Gpu::new(cfg, Design::Base);
    load_input(&mut gpu, N, IN);
    let buf = Arc::clone(&spilled);
    gpu.set_checkpoint_sink(Box::new(move |cycle, bytes| {
        buf.lock().unwrap().push((cycle, bytes.to_vec()));
    }))
    .expect("interval is nonzero");
    let stats = gpu.run(&kernel, MAX).expect("run completes");
    assert_eq!(stats, full, "a record-only sink cannot perturb the run");

    let spilled = spilled.lock().unwrap();
    assert!(
        !spilled.is_empty(),
        "interval checkpoints must reach the sink"
    );
    for (cycle, bytes) in spilled.iter() {
        assert!(
            cycle.is_multiple_of(64),
            "sink fired off-interval at {cycle}"
        );
        // Every spilled container is a complete, restorable snapshot.
        let mut g2 = Gpu::new(cfg, Design::Base);
        g2.restore(&kernel, bytes)
            .expect("spilled checkpoint restores");
        assert_eq!(g2.cycle(), *cycle);
    }
    // The final spill matches the machine's own last_checkpoint.
    let (at, last) = gpu.last_checkpoint().expect("checkpoints were taken");
    let (sc, sb) = spilled.last().unwrap();
    assert_eq!((*sc, &sb[..]), (at, last));
}

#[test]
fn checkpoint_sink_with_zero_interval_is_a_typed_error() {
    use caba_sim::ConfigError;
    let cfg = GpuConfig::small(); // checkpoint_interval = 0 by default
    assert_eq!(cfg.checkpoint_interval, 0);
    let mut gpu = Gpu::new(cfg, Design::Base);
    let err = gpu
        .set_checkpoint_sink(Box::new(|_, _| {}))
        .expect_err("a sink that can never fire is a caller bug");
    assert_eq!(
        err,
        ConfigError::Zero {
            field: "checkpoint_interval"
        }
    );
}
