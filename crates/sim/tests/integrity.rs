//! Integration tests for the simulation integrity layer: watchdog hang
//! forensics, structural invariant audits, and deterministic fault
//! injection in both recovery and silent-corruption modes.

use caba_compress::Algorithm;
use caba_isa::{
    AluOp, CmpOp, Kernel, LaunchDims, Pred, ProgramBuilder, Reg, Space, Special, Src, Width,
};
use caba_sim::{
    Component, Design, FaultConfig, FaultMode, Gpu, GpuConfig, RunError, RunStats, WarpState,
};
use caba_stats::prop;

/// out[i] = in[i] * 2 for n elements (one element per thread).
fn scale_kernel(n: u32, in_base: u64, out_base: u64) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
    b.alu(AluOp::Shl, v, Src::Reg(v), Src::Imm(1));
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(1)));
    b.st(Space::Global, Width::B4, Src::Reg(v), Src::Reg(addr), 0);
    b.exit();
    let blocks = n.div_ceil(64);
    Kernel::new("scale", b.build(), LaunchDims::new(blocks, 64))
        .with_params(vec![in_base, out_base])
}

fn load_input(gpu: &mut Gpu, n: u32, base: u64) {
    for i in 0..n {
        gpu.mem_mut().write_u32(base + i as u64 * 4, 0x100 + i);
    }
}

fn check_output(gpu: &Gpu, n: u32, base: u64) {
    for i in 0..n {
        assert_eq!(
            gpu.mem().read_u32(base + i as u64 * 4),
            (0x100 + i) * 2,
            "element {i}"
        );
    }
}

/// One 64-thread block, two warps. Warp 1 loads a value and consumes it
/// before the block barrier; warp 0 goes straight to the barrier. If warp
/// 1's load is lost, warp 0 waits forever — the canonical
/// lost-request-meets-barrier deadlock.
fn barrier_divergent_kernel(in_base: u64) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    b.setp(Pred(0), CmpOp::GeU, Src::Reg(gid), Src::Imm(32));
    b.if_then(Pred(0), true, |b| {
        b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
        b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
        b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
        // Consume the load so warp 1 blocks on the fill *before* the
        // barrier, leaving warp 0 stranded there.
        b.alu(AluOp::Add, v, Src::Reg(v), Src::Imm(1));
    });
    b.bar();
    b.exit();
    Kernel::new("barrier-hang", b.build(), LaunchDims::new(1, 64)).with_params(vec![in_base])
}

/// A silently dropped request plus a block barrier wedges the machine; the
/// watchdog must declare a hang long before the cycle budget and attach a
/// report that names both the stranded barrier warp and the lost read.
#[test]
fn watchdog_reports_barrier_hang_with_lost_request() {
    let mut cfg = GpuConfig::small();
    cfg.watchdog_window = 2_000;
    cfg.audit_interval = 0; // exercise the watchdog path alone
    cfg.fault = FaultConfig {
        enabled: true,
        seed: 9,
        mode: FaultMode::Silent,
        drop_flit_rate: 1.0,
        ..FaultConfig::disabled()
    };
    let mut gpu = Gpu::new(cfg, Design::Base);
    load_input(&mut gpu, 64, 0x1_0000);
    let err = gpu
        .run(&barrier_divergent_kernel(0x1_0000), 1_000_000)
        .unwrap_err();

    let RunError::Hang {
        cycles,
        window,
        ref report,
    } = err
    else {
        panic!("expected a watchdog hang, got: {err}");
    };
    assert_eq!(window, 2_000);
    assert!(
        cycles < 50_000,
        "watchdog should fire shortly after the wedge, not at {cycles}"
    );
    assert_eq!(report.live_warps(), 2, "both warps still resident");
    assert_eq!(report.warps_at_barrier(), 1, "warp 0 stuck at the barrier");
    assert!(
        report.sms.iter().flat_map(|s| &s.warps).any(|w| matches!(
            w.state,
            WarpState::DataDependence {
                outstanding_loads: 1..
            }
        )),
        "warp 1 should be blocked on its lost load: {report}"
    );
    let (age, sm, line) = report
        .oldest_request
        .expect("the dropped read stays on the ledger");
    assert!(age > 0, "the lost read must have aged");
    assert_eq!(sm, 0, "single-block grid runs on SM 0");
    assert!(line >= 0x1_0000, "line {line:#x} should be in the input");

    let text = err.to_string();
    assert!(
        text.contains("at barrier"),
        "forensics name the barrier: {text}"
    );
    assert!(text.contains("oldest in-flight read"), "{text}");
}

/// With injection disabled, turning audits on must not change simulated
/// behavior at all: same timing, same traffic, zero violations.
#[test]
fn audits_are_invisible_on_a_healthy_run() {
    let n = 1024;
    let run = |audit_interval: u64| {
        let mut cfg = GpuConfig::small();
        cfg.audit_interval = audit_interval;
        let mut gpu = Gpu::new(
            cfg,
            Design::HwFull {
                alg: Algorithm::Bdi,
                ideal: false,
            },
        );
        load_input(&mut gpu, n, 0x1_0000);
        let stats = gpu
            .run(&scale_kernel(n, 0x1_0000, 0x8_0000), 1_000_000)
            .unwrap_or_else(|e| panic!("audit_interval={audit_interval}: {e}"));
        check_output(&gpu, n, 0x8_0000);
        stats
    };
    // Small runs finish in a few hundred cycles, so audit densely.
    let plain = run(0);
    let audited = run(32);
    assert_eq!(plain.audits_run, 0);
    assert!(audited.audits_run > 0, "audits must actually have run");
    for (name, a, b) in [
        ("cycles", plain.cycles, audited.cycles),
        (
            "app_instructions",
            plain.app_instructions,
            audited.app_instructions,
        ),
        (
            "assist_instructions",
            plain.assist_instructions,
            audited.assist_instructions,
        ),
        (
            "threads_retired",
            plain.threads_retired,
            audited.threads_retired,
        ),
        ("dram_bursts", plain.dram_bursts, audited.dram_bursts),
        ("icnt_flits", plain.icnt_flits, audited.icnt_flits),
        ("md_lookups", plain.md_lookups, audited.md_lookups),
    ] {
        assert_eq!(a, b, "audits changed `{name}`");
    }
}

/// In recovery mode every fault class fires, every one is counted, and the
/// run still completes with bit-correct output under full auditing.
#[test]
fn recover_mode_completes_correctly_and_counts_every_fault_class() {
    let n = 2048;
    let mut cfg = GpuConfig::small();
    cfg.audit_interval = 128;
    cfg.fault = FaultConfig {
        corrupt_line_rate: 0.25,
        dram_delay_rate: 0.2,
        ..FaultConfig::recover(0xFA11, 0.05)
    };
    let mut gpu = Gpu::new(
        cfg,
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
    );
    load_input(&mut gpu, n, 0x1_0000);
    let stats = gpu
        .run(&scale_kernel(n, 0x1_0000, 0x8_0000), 4_000_000)
        .expect("recovery mode must complete");
    check_output(&gpu, n, 0x8_0000);

    assert!(stats.audits_run > 0, "audits ran through the whole run");
    assert!(stats.flits_dropped > 0, "crossbar drops fired");
    assert_eq!(
        stats.flit_retransmissions, stats.flits_dropped,
        "every dropped packet was retransmitted"
    );
    assert!(stats.dram_delay_faults > 0, "DRAM delays fired");
    assert!(stats.lines_corrupted > 0, "fill corruptions fired");
    assert_eq!(
        stats.corruptions_detected, stats.lines_corrupted,
        "every corruption was detected by round-trip verification"
    );
    assert_eq!(
        stats.corruption_refetches, stats.lines_corrupted,
        "every detected corruption triggered a refetch"
    );
}

/// Silently dropped packets must be caught by the conservation audit, with
/// each violation attributed to the crossbar direction that lost the
/// packet.
#[test]
fn silent_packet_drops_are_caught_naming_the_crossbar() {
    let mut cfg = GpuConfig::small();
    cfg.audit_interval = 64;
    cfg.fault = FaultConfig {
        enabled: true,
        seed: 0xD209,
        mode: FaultMode::Silent,
        drop_flit_rate: 0.1,
        ..FaultConfig::disabled()
    };
    let mut gpu = Gpu::new(cfg, Design::Base);
    load_input(&mut gpu, 1024, 0x1_0000);
    let err = gpu
        .run(&scale_kernel(1024, 0x1_0000, 0x8_0000), 1_000_000)
        .unwrap_err();
    let RunError::AuditFailed { cycle, violations } = err else {
        panic!("expected an audit failure, got: {err}");
    };
    assert!(cycle % 64 == 0, "audits run on the configured interval");
    assert!(!violations.is_empty());
    for v in &violations {
        assert!(
            matches!(
                v.component,
                Component::CrossbarRequest | Component::CrossbarResponse
            ),
            "drop must be pinned on a crossbar, not {}: {v}",
            v.component
        );
        assert!(v.detail.contains("line"), "detail names the line: {v}");
    }
}

/// Silently corrupted compressed lines must be caught by the round-trip
/// audit and attributed to the compression map.
#[test]
fn silent_corruption_is_caught_naming_the_compression_map() {
    let mut cfg = GpuConfig::small();
    cfg.audit_interval = 32;
    // Paranoid in-line checks would assert before the audit gets a chance
    // to report; this test is about the audit path.
    cfg.paranoid_assist_checks = false;
    cfg.fault = FaultConfig {
        enabled: true,
        seed: 0xC0FF,
        mode: FaultMode::Silent,
        corrupt_line_rate: 1.0,
        ..FaultConfig::disabled()
    };
    let mut gpu = Gpu::new(
        cfg,
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
    );
    load_input(&mut gpu, 1024, 0x1_0000);
    let err = gpu
        .run(&scale_kernel(1024, 0x1_0000, 0x8_0000), 1_000_000)
        .unwrap_err();
    let RunError::AuditFailed { violations, .. } = err else {
        panic!("expected an audit failure, got: {err}");
    };
    assert!(!violations.is_empty());
    assert!(
        violations
            .iter()
            .all(|v| v.component == Component::CompressionMap),
        "corruption must be pinned on the compression map: {violations:?}"
    );
}

/// The same seed produces bit-identical runs — timing, traffic, and every
/// fault counter — across repeated executions.
#[test]
fn fault_schedules_are_deterministic_per_seed() {
    fn fingerprint(s: &RunStats) -> [u64; 10] {
        [
            s.cycles,
            s.app_instructions,
            s.assist_instructions,
            s.threads_retired,
            s.dram_bursts,
            s.icnt_flits,
            s.flits_dropped,
            s.flit_retransmissions,
            s.dram_delay_faults,
            s.lines_corrupted,
        ]
    }
    prop::check(0xDE7E, 4, |rng| {
        let seed = rng.next_u64();
        let run = || {
            let mut cfg = GpuConfig::small();
            cfg.audit_interval = 128;
            cfg.fault = FaultConfig::recover(seed, 0.05);
            let mut gpu = Gpu::new(
                cfg,
                Design::HwFull {
                    alg: Algorithm::Bdi,
                    ideal: false,
                },
            );
            load_input(&mut gpu, 512, 0x1_0000);
            let stats = gpu
                .run(&scale_kernel(512, 0x1_0000, 0x8_0000), 2_000_000)
                .expect("recovery mode completes");
            check_output(&gpu, 512, 0x8_0000);
            stats
        };
        assert_eq!(
            fingerprint(&run()),
            fingerprint(&run()),
            "seed {seed:#x} must replay identically"
        );
    });
}

/// Invalid configurations are rejected as typed errors by `Gpu::try_new`
/// instead of surfacing as mid-run panics.
#[test]
fn try_new_rejects_invalid_configs() {
    let mut cfg = GpuConfig::small();
    cfg.fault = FaultConfig::recover(1, 1.5);
    let err = Gpu::try_new(cfg, Design::Base).map(|_| ()).unwrap_err();
    assert!(err.to_string().contains("outside [0, 1]"), "{err}");

    let mut cfg = GpuConfig::small();
    cfg.fault = FaultConfig::recover(1, 0.01);
    cfg.fault.dram_delay_cycles = cfg.watchdog_window;
    assert!(Gpu::try_new(cfg, Design::Base).is_err());

    assert!(Gpu::try_new(GpuConfig::small(), Design::Base).is_ok());
}

/// Full observability (event tracing + per-event metrics) is record-only:
/// an observed run under fault injection is bit-identical to a blind one,
/// the new taxonomy-conservation audit passes throughout, and the trace
/// carries the injected faults as instant events.
#[test]
fn observability_is_record_only_and_audits_conserve_slots() {
    use caba_sim::{MetricsLevel, TraceConfig, TraceEventKind};

    let n = 2048;
    let mut cfg = GpuConfig::small();
    cfg.audit_interval = 64;
    cfg.fault = FaultConfig {
        corrupt_line_rate: 0.25,
        dram_delay_rate: 0.2,
        ..FaultConfig::recover(0xFA11, 0.05)
    };
    let run = |cfg: GpuConfig| {
        let mut gpu = Gpu::new(
            cfg,
            Design::HwFull {
                alg: Algorithm::Bdi,
                ideal: false,
            },
        );
        load_input(&mut gpu, n, 0x1_0000);
        let stats = gpu
            .run(&scale_kernel(n, 0x1_0000, 0x8_0000), 4_000_000)
            .expect("recovery mode completes under full observability");
        check_output(&gpu, n, 0x8_0000);
        (stats, gpu)
    };

    let (blind, _) = run(cfg);
    let observed_cfg = cfg
        .with_trace(TraceConfig::full(16))
        .with_metrics(MetricsLevel::Full);
    let (stats, mut gpu) = run(observed_cfg);
    assert_eq!(blind, stats, "observability changed architectural state");

    // Conservation held at every audit (the run would have failed
    // otherwise) and at the end of the run.
    assert!(stats.audits_run > 0);
    let slots = (cfg.num_sms * cfg.schedulers_per_sm) as u64;
    assert_eq!(stats.breakdown.total(), stats.cycles * slots);

    // Every injected fault class shows up as instant events.
    let trace = gpu.take_trace().expect("tracing was on");
    assert!(!trace.samples.is_empty());
    let has = |f: fn(&TraceEventKind) -> bool| trace.events.iter().any(|e| f(&e.kind));
    assert!(
        has(|k| matches!(
            k,
            TraceEventKind::XbarDrop {
                retransmitted: true
            }
        )),
        "crossbar drops must be traced"
    );
    assert!(
        has(|k| matches!(k, TraceEventKind::FillCorrupt { .. })),
        "detected corruptions must be traced"
    );
    assert!(
        has(|k| matches!(k, TraceEventKind::DramDelay { .. })),
        "DRAM delay faults must be traced"
    );
    assert!(
        caba_stats::json::validate(&trace.to_chrome_json()).is_ok(),
        "fault-event trace must serialize to valid JSON"
    );

    // The metric snapshot exists and agrees with the stats it derives from.
    let snap = gpu.metrics_snapshot(&stats).expect("metrics were on");
    assert_eq!(snap.get("run.cycles"), Some(stats.cycles));
    assert_eq!(
        snap.get("issued-app"),
        Some(stats.breakdown.count(caba_stats::StallKind::IssuedApp))
    );
}
