//! End-to-end simulator tests: functional correctness of full kernel runs
//! and first-order timing sanity across design points.

use caba_compress::Algorithm;
use caba_isa::{
    AluOp, CmpOp, Kernel, LaunchDims, Pred, ProgramBuilder, Reg, Space, Special, Src, Width,
};
use caba_sim::{Design, Gpu, GpuConfig, RunError};

/// out[i] = in[i] * 2 for n elements (one element per thread).
fn scale_kernel(n: u32, in_base: u64, out_base: u64) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    // addr = in_base + gid*4
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
    b.alu(AluOp::Shl, v, Src::Reg(v), Src::Imm(1));
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(1)));
    b.st(Space::Global, Width::B4, Src::Reg(v), Src::Reg(addr), 0);
    b.exit();
    let blocks = n.div_ceil(64);
    Kernel::new("scale", b.build(), LaunchDims::new(blocks, 64))
        .with_params(vec![in_base, out_base])
}

fn load_input(gpu: &mut Gpu, n: u32, base: u64) {
    for i in 0..n {
        gpu.mem_mut().write_u32(base + i as u64 * 4, 0x100 + i);
    }
}

fn check_output(gpu: &Gpu, n: u32, base: u64) {
    for i in 0..n {
        assert_eq!(
            gpu.mem().read_u32(base + i as u64 * 4),
            (0x100 + i) * 2,
            "element {i}"
        );
    }
}

#[test]
fn scale_kernel_correct_on_base() {
    let n = 512;
    let mut gpu = Gpu::new(GpuConfig::small(), Design::Base);
    load_input(&mut gpu, n, 0x1_0000);
    let stats = gpu
        .run(&scale_kernel(n, 0x1_0000, 0x2_0000), 500_000)
        .unwrap();
    check_output(&gpu, n, 0x2_0000);
    assert!(stats.cycles > 0);
    assert!(stats.app_instructions >= (n as u64 / 32) * 9);
    assert_eq!(stats.assist_instructions, 0);
    assert_eq!(stats.threads_retired, n as u64);
    assert!(stats.dram_bursts > 0);
    assert!(stats.icnt_flits > 0);
}

#[test]
fn scale_kernel_correct_on_hw_designs() {
    for design in [
        Design::HwMemOnly {
            alg: Algorithm::Bdi,
        },
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: true,
        },
    ] {
        let n = 512;
        let label = design.label();
        let mut gpu = Gpu::new(GpuConfig::small(), design);
        load_input(&mut gpu, n, 0x1_0000);
        gpu.run(&scale_kernel(n, 0x1_0000, 0x2_0000), 500_000)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        check_output(&gpu, n, 0x2_0000);
    }
}

#[test]
fn compressed_design_moves_fewer_bursts() {
    // The input data (small sequential integers) is highly BDI-compressible,
    // so HW-BDI must transfer fewer DRAM bursts than Base for the same
    // kernel.
    let n = 2048;
    let mut base_gpu = Gpu::new(GpuConfig::small(), Design::Base);
    load_input(&mut base_gpu, n, 0x1_0000);
    let base = base_gpu
        .run(&scale_kernel(n, 0x1_0000, 0x8_0000), 1_000_000)
        .unwrap();

    let mut hw_gpu = Gpu::new(
        GpuConfig::small(),
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
    );
    load_input(&mut hw_gpu, n, 0x1_0000);
    let hw = hw_gpu
        .run(&scale_kernel(n, 0x1_0000, 0x8_0000), 1_000_000)
        .unwrap();

    assert!(
        hw.dram_bursts < base.dram_bursts,
        "hw {} vs base {}",
        hw.dram_bursts,
        base.dram_bursts
    );
    assert!(hw.icnt_flits < base.icnt_flits);
    assert!(hw.md_lookups > 0, "MD cache consulted");
}

/// Loop kernel: sums array elements with a do-while loop.
#[test]
fn loop_kernel_runs_to_completion() {
    let mut b = ProgramBuilder::new();
    let (gid, i, acc, addr, v) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    let iters = 16u64;
    b.global_thread_id(gid);
    b.movi(i, 0);
    b.movi(acc, 0);
    b.do_while(|b| {
        // addr = param0 + ((gid*iters + i) % 4096)*4
        b.alu(AluOp::Mul, addr, Src::Reg(gid), Src::Imm(iters));
        b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Reg(i));
        b.alu(AluOp::Rem, addr, Src::Reg(addr), Src::Imm(4096));
        b.alu(AluOp::Shl, addr, Src::Reg(addr), Src::Imm(2));
        b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
        b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
        b.alu(AluOp::Add, acc, Src::Reg(acc), Src::Reg(v));
        b.alu(AluOp::Add, i, Src::Reg(i), Src::Imm(1));
        b.setp(Pred(0), CmpOp::LtU, Src::Reg(i), Src::Imm(iters));
        Pred(0)
    });
    // out[gid] = acc
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(1)));
    b.st(Space::Global, Width::B4, Src::Reg(acc), Src::Reg(addr), 0);
    b.exit();
    let kernel = Kernel::new("loop", b.build(), LaunchDims::new(4, 64))
        .with_params(vec![0x1_0000, 0x9_0000]);

    let mut gpu = Gpu::new(GpuConfig::small(), Design::Base);
    for i in 0..4096u64 {
        gpu.mem_mut().write_u32(0x1_0000 + i * 4, 1);
    }
    gpu.run(&kernel, 2_000_000).unwrap();
    // Each thread summed `iters` ones.
    for t in 0..(4 * 64) {
        assert_eq!(
            gpu.mem().read_u32(0x9_0000 + t * 4),
            iters as u32,
            "thread {t}"
        );
    }
}

/// Divergent kernel: threads with even gid write 1, odd write 2.
#[test]
fn divergent_kernel_is_correct() {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.global_thread_id(gid);
    b.alu(AluOp::And, v, Src::Reg(gid), Src::Imm(1));
    b.setp(Pred(0), CmpOp::Eq, Src::Reg(v), Src::Imm(0));
    b.if_then(Pred(0), true, |b| {
        b.movi(v, 1);
    });
    b.if_then(Pred(0), false, |b| {
        b.movi(v, 2);
    });
    b.alu(AluOp::Shl, addr, Src::Reg(gid), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    b.st(Space::Global, Width::B4, Src::Reg(v), Src::Reg(addr), 0);
    b.exit();
    let kernel =
        Kernel::new("diverge", b.build(), LaunchDims::new(2, 64)).with_params(vec![0xA_0000]);
    let mut gpu = Gpu::new(GpuConfig::small(), Design::Base);
    gpu.run(&kernel, 200_000).unwrap();
    for t in 0..128u64 {
        let expect = if t % 2 == 0 { 1 } else { 2 };
        assert_eq!(gpu.mem().read_u32(0xA_0000 + t * 4), expect, "thread {t}");
    }
}

/// Barrier kernel: phase 1 writes shared memory, phase 2 reads a neighbour's
/// value — only correct if the barrier orders the phases.
#[test]
fn barrier_orders_block_phases() {
    let mut b = ProgramBuilder::new();
    let (tid, addr, v) = (Reg(0), Reg(1), Reg(2));
    b.mov(tid, Src::Sp(Special::Tid));
    // shared[tid] = tid
    b.alu(AluOp::Shl, addr, Src::Reg(tid), Src::Imm(2));
    b.st(Space::Shared, Width::B4, Src::Reg(tid), Src::Reg(addr), 0);
    b.bar();
    // v = shared[(tid+1) % 64]
    b.alu(AluOp::Add, v, Src::Reg(tid), Src::Imm(1));
    b.alu(AluOp::Rem, v, Src::Reg(v), Src::Imm(64));
    b.alu(AluOp::Shl, addr, Src::Reg(v), Src::Imm(2));
    b.ld(Space::Shared, Width::B4, v, Src::Reg(addr), 0);
    // out[ctaid*64 + tid] = v
    b.global_thread_id(addr);
    b.alu(AluOp::Shl, addr, Src::Reg(addr), Src::Imm(2));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    b.st(Space::Global, Width::B4, Src::Reg(v), Src::Reg(addr), 0);
    b.exit();
    let kernel = Kernel::new("barrier", b.build(), LaunchDims::new(3, 64))
        .with_params(vec![0xB_0000])
        .with_shared_bytes(256);
    let mut gpu = Gpu::new(GpuConfig::small(), Design::Base);
    let stats = gpu.run(&kernel, 500_000).unwrap();
    for blk in 0..3u64 {
        for t in 0..64u64 {
            let got = gpu.mem().read_u32(0xB_0000 + (blk * 64 + t) * 4);
            assert_eq!(got as u64, (t + 1) % 64, "block {blk} thread {t}");
        }
    }
    assert!(stats.shared_accesses > 0);
}

#[test]
fn timeout_reported_for_insufficient_budget() {
    let n = 512;
    let mut gpu = Gpu::new(GpuConfig::small(), Design::Base);
    load_input(&mut gpu, n, 0x1_0000);
    let err = gpu
        .run(&scale_kernel(n, 0x1_0000, 0x2_0000), 10)
        .unwrap_err();
    assert!(
        matches!(err, RunError::Timeout { cycles: 10, .. }),
        "expected a 10-cycle timeout, got: {err}"
    );
    // Even a plain timeout carries the forensic snapshot.
    let report = err.report().expect("timeout carries a hang report");
    assert_eq!(report.cycle, 10);
    assert!(
        report.live_warps() > 0,
        "work was resident when time ran out"
    );
}

#[test]
fn halved_bandwidth_hurts_memory_bound_kernel() {
    let n = 4096;
    // Random-ish (incompressible) data so compression can't mask the sweep.
    let run_with = |scale: f64| {
        let cfg = GpuConfig::small().with_bandwidth_scale(scale);
        let mut gpu = Gpu::new(cfg, Design::Base);
        let mut x = 7u64;
        for i in 0..n {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(0xB);
            gpu.mem_mut().write_u32(0x1_0000 + i as u64 * 4, x as u32);
        }
        gpu.run(&scale_kernel(n, 0x1_0000, 0x40_0000), 4_000_000)
            .unwrap()
    };
    let half = run_with(0.5);
    let full = run_with(1.0);
    let twice = run_with(2.0);
    assert!(
        half.cycles > full.cycles,
        "half {} vs full {}",
        half.cycles,
        full.cycles
    );
    assert!(
        twice.cycles <= full.cycles,
        "twice {} vs full {}",
        twice.cycles,
        full.cycles
    );
    // Utilization must rank the same way.
    assert!(half.bandwidth_utilization() >= full.bandwidth_utilization() * 0.8);
}

#[test]
fn stall_breakdown_covers_all_cycles() {
    let n = 1024;
    let mut gpu = Gpu::new(GpuConfig::small(), Design::Base);
    load_input(&mut gpu, n, 0x1_0000);
    let stats = gpu
        .run(&scale_kernel(n, 0x1_0000, 0x2_0000), 1_000_000)
        .unwrap();
    // Breakdown records one slot per scheduler per SM per cycle.
    let cfg = GpuConfig::small();
    let slots = (cfg.num_sms * cfg.schedulers_per_sm) as u64;
    assert_eq!(stats.breakdown.total(), stats.cycles * slots);
    assert!(stats.breakdown.fraction(caba_stats::StallKind::IssuedApp) > 0.0);
    // Issued slots are exactly the app-issued slots on a non-CABA design.
    assert_eq!(
        stats.breakdown.issued(),
        stats.breakdown.count(caba_stats::StallKind::IssuedApp)
    );
}

#[test]
fn tracing_records_samples() {
    let n = 1024;
    let cfg = GpuConfig::small().with_trace(caba_sim::TraceConfig::sampled(32));
    let mut gpu = Gpu::new(cfg, Design::Base);
    load_input(&mut gpu, n, 0x1_0000);
    let stats = gpu
        .run(&scale_kernel(n, 0x1_0000, 0x2_0000), 1_000_000)
        .unwrap();
    let trace = gpu.take_trace().expect("tracing enabled");
    assert!(!trace.samples.is_empty());
    assert!(trace.samples.len() as u64 <= stats.cycles / 32 + 1);
    // Samples are in cycle order and cover per-SM counters.
    for w in trace.samples.windows(2) {
        assert!(w[0].cycle < w[1].cycle);
    }
    for s in &trace.samples {
        assert_eq!(s.app_issued.len(), cfg.num_sms);
        assert_eq!(s.stalls.len(), cfg.num_sms);
    }
    // Sampled stall deltas sum back to the run-total breakdown.
    let sampled: u64 = trace
        .samples
        .iter()
        .flat_map(|s| &s.stalls)
        .map(|b| b.total())
        .sum();
    assert!(sampled <= stats.breakdown.total());
    // The per-interval issue counts sum back to the run totals.
    let total: u64 = trace
        .samples
        .iter()
        .map(|s| s.app_issued.iter().sum::<u64>())
        .sum();
    assert!(total <= stats.app_instructions);
    let json = trace.to_chrome_json();
    assert!(json.contains("DRAM BW"));
    // Tracing is one-shot.
    assert!(gpu.take_trace().is_none());
}
