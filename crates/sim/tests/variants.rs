//! Design-variant and failure-injection tests: cache-compression modes
//! (Fig. 13), interconnect traffic differences between HW-BDI-Mem and
//! HW-BDI, and degenerate configurations that stress the throttling paths.

use caba_compress::Algorithm;
use caba_isa::{AluOp, Kernel, LaunchDims, ProgramBuilder, Reg, Space, Special, Src, Width};
use caba_sim::{Design, Gpu, GpuConfig};

/// Streaming read-heavy kernel over `n` 4-byte elements.
fn read_kernel(n: u32) -> Kernel {
    let mut b = ProgramBuilder::new();
    let (gid, addr, v, acc) = (Reg(0), Reg(1), Reg(2), Reg(3));
    b.global_thread_id(gid);
    b.movi(acc, 0);
    b.alu(AluOp::Mul, addr, Src::Reg(gid), Src::Imm(8));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
    for r in 0..4 {
        b.ld(Space::Global, Width::B8, v, Src::Reg(addr), 0);
        b.alu(AluOp::Xor, acc, Src::Reg(acc), Src::Reg(v));
        if r < 3 {
            b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Imm(n as u64));
        }
    }
    b.alu(AluOp::Mul, addr, Src::Reg(gid), Src::Imm(4));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(1)));
    b.st(Space::Global, Width::B4, Src::Reg(acc), Src::Reg(addr), 0);
    b.exit();
    let threads = (n / 8).max(256);
    Kernel::new("read", b.build(), LaunchDims::new(threads / 256, 256))
        .with_params(vec![0x10_0000, 0x800_0000])
}

fn load_compressible(gpu: &mut Gpu, words: u32) {
    for i in 0..words as u64 {
        gpu.mem_mut()
            .write_u32(0x10_0000 + i * 4, 0x1234_0000 + (i % 90) as u32);
    }
}

fn run(cfg: GpuConfig, design: Design, n: u32) -> caba_sim::RunStats {
    let mut gpu = Gpu::new(cfg, design);
    load_compressible(&mut gpu, n);
    gpu.run(&read_kernel(n), 50_000_000).expect("completes")
}

const N: u32 = 96 * 1024; // 384 KB of 4-byte words

#[test]
fn hw_mem_only_moves_full_lines_on_the_interconnect() {
    let cfg = GpuConfig::small();
    let mem_only = run(
        cfg,
        Design::HwMemOnly {
            alg: Algorithm::Bdi,
        },
        N,
    );
    let full = run(
        cfg,
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
        N,
    );
    // Same DRAM compression...
    let burst_ratio = mem_only.dram_bursts as f64 / full.dram_bursts as f64;
    assert!(
        (0.8..1.2).contains(&burst_ratio),
        "burst ratio {burst_ratio}"
    );
    // ...but HW-BDI-Mem sends uncompressed flits across the crossbar.
    assert!(
        mem_only.icnt_flits > full.icnt_flits,
        "mem-only {} vs full {}",
        mem_only.icnt_flits,
        full.icnt_flits
    );
}

#[test]
fn compressed_l2_with_extra_tags_raises_hit_rate() {
    // Fig. 13 (L2-4x): quadrupled tags + compressed residency lets more
    // lines fit the same data budget.
    let base_cfg = GpuConfig::small();
    let mut big_cfg = base_cfg;
    big_cfg.l2 = big_cfg.l2.with_tag_factor(4);
    let design = || Design::HwFull {
        alg: Algorithm::Bdi,
        ideal: false,
    };
    let plain = run(base_cfg, design(), N);
    let tagged = run(big_cfg, design(), N);
    assert!(
        tagged.l2_hit_rate() >= plain.l2_hit_rate(),
        "tagged {} vs plain {}",
        tagged.l2_hit_rate(),
        plain.l2_hit_rate()
    );
    assert!(tagged.dram_bursts <= plain.dram_bursts);
}

#[test]
fn compressed_l1_pays_decompression_on_hits() {
    // Fig. 13 (L1-2x) downside: frequent L1 hits now pay a decompression
    // penalty. With a hit-heavy kernel the penalty must be visible.
    let mut b = ProgramBuilder::new();
    let (gid, addr, v, acc, i) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    b.global_thread_id(gid);
    b.movi(acc, 0);
    b.movi(i, 0);
    // 16 repeated loads of the same (compressible) line region.
    for _ in 0..16 {
        b.alu(AluOp::And, addr, Src::Reg(gid), Src::Imm(31));
        b.alu(AluOp::Mul, addr, Src::Reg(addr), Src::Imm(4));
        b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
        b.ld(Space::Global, Width::B4, v, Src::Reg(addr), 0);
        b.alu(AluOp::Add, acc, Src::Reg(acc), Src::Reg(v));
    }
    b.alu(AluOp::Mul, addr, Src::Reg(gid), Src::Imm(4));
    b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(1)));
    b.st(Space::Global, Width::B4, Src::Reg(acc), Src::Reg(addr), 0);
    b.exit();
    let _ = i;
    let kernel = Kernel::new("hits", b.build(), LaunchDims::new(32, 256))
        .with_params(vec![0x10_0000, 0x800_0000]);

    let mut cfg_plain = GpuConfig::small();
    cfg_plain.l1_compressed = false;
    let mut cfg_comp = GpuConfig::small();
    cfg_comp.l1 = cfg_comp.l1.with_tag_factor(2);
    cfg_comp.l1_compressed = true;
    cfg_comp.l1_hit_decompress_penalty = 20;

    let design = || Design::HwFull {
        alg: Algorithm::Bdi,
        ideal: false,
    };
    let mut g1 = Gpu::new(cfg_plain, design());
    load_compressible(&mut g1, 1024);
    let plain = g1.run(&kernel, 50_000_000).unwrap();
    let mut g2 = Gpu::new(cfg_comp, design());
    load_compressible(&mut g2, 1024);
    let comp = g2.run(&kernel, 50_000_000).unwrap();
    assert!(plain.l1_hit_rate() > 0.5, "kernel must be hit-heavy");
    assert!(
        comp.cycles > plain.cycles,
        "compressed-L1 {} vs plain {}",
        comp.cycles,
        plain.cycles
    );
}

#[test]
fn tiny_mshr_and_lsu_still_complete() {
    // Failure injection: starved structural resources must throttle, not
    // deadlock.
    let mut cfg = GpuConfig::small();
    cfg.mshrs = 2;
    cfg.lsu_queue = 2;
    let stats = run(cfg, Design::Base, 16 * 1024);
    assert!(stats.cycles > 0);
    assert!(stats.threads_retired > 0);
}

#[test]
fn zero_latency_icnt_and_tiny_dram_queue_complete() {
    let mut cfg = GpuConfig::small();
    cfg.icnt_latency = 0;
    cfg.dram.queue_capacity = 2;
    let stats = run(cfg, Design::Base, 16 * 1024);
    assert!(stats.cycles > 0);
}

#[test]
fn single_sm_single_channel_machine_works() {
    let mut cfg = GpuConfig::small();
    cfg.num_sms = 1;
    cfg.num_channels = 1;
    let stats = run(
        cfg,
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
        16 * 1024,
    );
    assert!(stats.cycles > 0);
    assert!(stats.dram_bursts > 0);
}
