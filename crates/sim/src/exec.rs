//! Functional execution of one instruction for one warp.
//!
//! Values are computed at issue time against the functional memory
//! ([`FuncMem`]); the timing model independently schedules scoreboard
//! release. The outcome reports everything the timing model needs: which
//! global lines were touched (already coalesced), whether shared memory was
//! accessed, and control-flow effects.

use crate::warp::Warp;
use caba_isa::exec::{eval_alu, eval_cmp, eval_falu, eval_sfu, truncate};
use caba_isa::{Instr, Op, PBoolOp, Space, Special, Src, WARP_SIZE};
use caba_mem::{line_base, SharedMem};

/// Per-warp launch context for special values.
#[derive(Debug, Clone)]
pub struct ThreadCtx<'a> {
    /// Threads per block.
    pub block_dim: u32,
    /// Blocks in the grid.
    pub grid_dim: u32,
    /// Kernel parameters.
    pub params: &'a [u64],
    /// This warp's block index.
    pub ctaid: u32,
    /// This warp's index within its block.
    pub warp_in_block: u32,
    /// Base address of this block's shared-memory window (shared-space
    /// addresses are offsets into it).
    pub shared_base: u64,
}

impl ThreadCtx<'_> {
    fn special(&self, s: Special, lane: usize) -> u64 {
        match s {
            Special::Tid => (self.warp_in_block as u64 * WARP_SIZE as u64) + lane as u64,
            Special::Ctaid => self.ctaid as u64,
            Special::Ntid => self.block_dim as u64,
            Special::Nctaid => self.grid_dim as u64,
            Special::Lane => lane as u64,
            Special::WarpInBlock => self.warp_in_block as u64,
            Special::Param(i) => self.params.get(i as usize).copied().unwrap_or(0),
        }
    }
}

/// Everything the timing model needs to know about an executed instruction.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Coalesced global line addresses read (deduplicated, in first-touch
    /// order) — each is one LSU line operation.
    pub lines_read: Vec<u64>,
    /// Coalesced global line addresses written.
    pub lines_written: Vec<u64>,
    /// True for shared-space (scratchpad) accesses.
    pub shared_access: bool,
    /// Destination register, when the instruction writes one.
    pub dst: Option<caba_isa::Reg>,
    /// Lanes exited this cycle.
    pub exited: bool,
    /// The warp reached a barrier.
    pub at_barrier: bool,
}

fn src_value(warp: &Warp, ctx: &ThreadCtx<'_>, s: Src, lane: usize) -> u64 {
    match s {
        Src::Reg(r) => warp.reg(r, lane),
        Src::Imm(v) => v,
        Src::Sp(sp) => ctx.special(sp, lane),
    }
}

fn push_line(lines: &mut Vec<u64>, addr: u64) {
    let base = line_base(addr);
    if !lines.contains(&base) {
        lines.push(base);
    }
}

/// Executes `instr` functionally for `warp`, updating registers, predicates,
/// control flow, and `mem`.
///
/// Returns the [`ExecOutcome`] the timing model consumes. The caller is
/// responsible for charging latencies and, for global accesses, for driving
/// the memory hierarchy with `lines_read`/`lines_written`.
pub fn execute(
    warp: &mut Warp,
    instr: &Instr,
    ctx: &ThreadCtx<'_>,
    mem: &mut SharedMem<'_>,
) -> ExecOutcome {
    let mut out = ExecOutcome::default();
    let exec = warp.exec_mask(instr);
    let active = warp.active_mask();

    let lanes = |mask: u32| (0..WARP_SIZE).filter(move |&l| mask >> l & 1 == 1);

    match instr.op {
        Op::Alu { op, dst, a, b } => {
            for l in lanes(exec) {
                let va = src_value(warp, ctx, a, l);
                let vb = src_value(warp, ctx, b, l);
                warp.set_reg(dst, l, eval_alu(op, va, vb));
            }
            out.dst = Some(dst);
            warp.advance_pc();
        }
        Op::FAlu { op, dst, a, b } => {
            for l in lanes(exec) {
                let va = src_value(warp, ctx, a, l);
                let vb = src_value(warp, ctx, b, l);
                warp.set_reg(dst, l, eval_falu(op, va, vb));
            }
            out.dst = Some(dst);
            warp.advance_pc();
        }
        Op::Sfu { op, dst, a } => {
            for l in lanes(exec) {
                let va = src_value(warp, ctx, a, l);
                warp.set_reg(dst, l, eval_sfu(op, va));
            }
            out.dst = Some(dst);
            warp.advance_pc();
        }
        Op::SetP { pred, cmp, a, b } => {
            for l in lanes(exec) {
                let va = src_value(warp, ctx, a, l);
                let vb = src_value(warp, ctx, b, l);
                warp.set_pred(pred, l, eval_cmp(cmp, va, vb));
            }
            warp.advance_pc();
        }
        Op::PBool { dst, op, a, b } => {
            for l in lanes(exec) {
                let va = warp.pred(a, l);
                let vb = warp.pred(b, l);
                let r = match op {
                    PBoolOp::And => va && vb,
                    PBoolOp::Or => va || vb,
                    PBoolOp::AndNot => va && !vb,
                    PBoolOp::Not => !va,
                    PBoolOp::Mov => va,
                };
                warp.set_pred(dst, l, r);
            }
            warp.advance_pc();
        }
        Op::VoteAll { dst, src } => {
            // Warp-wide AND over executing lanes — the global predicate
            // register of §4.1.2.
            let all = lanes(exec).all(|l| warp.pred(src, l));
            for l in lanes(exec) {
                warp.set_pred(dst, l, all);
            }
            warp.advance_pc();
        }
        Op::VoteAny { dst, src } => {
            let any = lanes(exec).any(|l| warp.pred(src, l));
            for l in lanes(exec) {
                warp.set_pred(dst, l, any);
            }
            warp.advance_pc();
        }
        Op::Ballot { dst, src } => {
            let mut mask = 0u32;
            for l in lanes(exec) {
                if warp.pred(src, l) {
                    mask |= 1 << l;
                }
            }
            for l in lanes(exec) {
                warp.set_reg(dst, l, mask as u64);
            }
            out.dst = Some(dst);
            warp.advance_pc();
        }
        Op::FindFirst { dst, src } => {
            let first = lanes(exec).find(|&l| warp.pred(src, l));
            for l in lanes(exec) {
                warp.set_pred(dst, l, Some(l) == first);
            }
            warp.advance_pc();
        }
        Op::Selp { dst, a, b, pred } => {
            for l in lanes(exec) {
                let v = if warp.pred(pred, l) {
                    src_value(warp, ctx, a, l)
                } else {
                    src_value(warp, ctx, b, l)
                };
                warp.set_reg(dst, l, v);
            }
            out.dst = Some(dst);
            warp.advance_pc();
        }
        Op::Ld {
            space,
            width,
            dst,
            addr,
            offset,
        } => {
            let n = width.bytes() as usize;
            for l in lanes(exec) {
                let base = src_value(warp, ctx, addr, l).wrapping_add_signed(offset);
                let ea = match space {
                    Space::Global => base,
                    Space::Shared => ctx.shared_base.wrapping_add(base),
                };
                let v = mem.read_le(ea, n);
                warp.set_reg(dst, l, v);
                if space == Space::Global {
                    push_line(&mut out.lines_read, ea);
                    if n > 1 {
                        push_line(&mut out.lines_read, ea + n as u64 - 1);
                    }
                }
            }
            out.shared_access = space == Space::Shared;
            out.dst = Some(dst);
            warp.advance_pc();
        }
        Op::St {
            space,
            width,
            src,
            addr,
            offset,
        } => {
            let n = width.bytes() as usize;
            for l in lanes(exec) {
                let base = src_value(warp, ctx, addr, l).wrapping_add_signed(offset);
                let ea = match space {
                    Space::Global => base,
                    Space::Shared => ctx.shared_base.wrapping_add(base),
                };
                let v = truncate(src_value(warp, ctx, src, l), n as u64);
                mem.write_le(ea, n, v);
                if space == Space::Global {
                    push_line(&mut out.lines_written, ea);
                    if n > 1 {
                        push_line(&mut out.lines_written, ea + n as u64 - 1);
                    }
                }
            }
            out.shared_access = space == Space::Shared;
            warp.advance_pc();
        }
        Op::LdPacked { k, dst, base } => {
            // Base comes from the first executing lane (warp-uniform).
            let first = lanes(exec).next();
            if let Some(fl) = first {
                let b = src_value(warp, ctx, base, fl);
                for l in lanes(exec) {
                    let ea = b + (l as u64) * k as u64;
                    warp.set_reg(dst, l, mem.read_le(ea, k as usize));
                }
                push_line(&mut out.lines_read, b);
                push_line(&mut out.lines_read, b + (WARP_SIZE as u64) * k as u64 - 1);
            }
            out.dst = Some(dst);
            warp.advance_pc();
        }
        Op::StPacked { k, src, base } => {
            let first = lanes(exec).next();
            if let Some(fl) = first {
                let b = src_value(warp, ctx, base, fl);
                for l in lanes(exec) {
                    let ea = b + (l as u64) * k as u64;
                    let v = truncate(src_value(warp, ctx, src, l), k as u64);
                    mem.write_le(ea, k as usize, v);
                }
                push_line(&mut out.lines_written, b);
                push_line(
                    &mut out.lines_written,
                    b + (WARP_SIZE as u64) * k as u64 - 1,
                );
            }
            warp.advance_pc();
        }
        Op::Bra { target, reconv } => {
            let next = warp.pc() + 1;
            // Guard lanes take the branch; exec already folds the guard in.
            let taken = if instr.guard.is_some() { exec } else { active };
            warp.take_branch(taken, target, next, reconv);
        }
        Op::Bar => {
            out.at_barrier = true;
            warp.at_barrier = true;
            warp.advance_pc();
        }
        Op::Exit => {
            out.exited = true;
            warp.exit_lanes(exec);
            if !warp.done && exec != active {
                // Non-exiting lanes continue past the Exit.
                warp.advance_pc();
            }
        }
        Op::Nop => {
            warp.advance_pc();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::FULL_MASK;
    use caba_isa::{AluOp, CmpOp, Pred, Reg, Width};
    use caba_mem::FuncMem;

    fn ctx(params: &[u64]) -> ThreadCtx<'_> {
        ThreadCtx {
            block_dim: 64,
            grid_dim: 4,
            params,
            ctaid: 2,
            warp_in_block: 1,
            shared_base: 0x8000_0000,
        }
    }

    fn alu(op: AluOp, dst: u16, a: Src, b: Src) -> Instr {
        Instr::new(Op::Alu {
            op,
            dst: Reg(dst),
            a,
            b,
        })
    }

    #[test]
    fn specials_resolve_per_lane() {
        let mut w = Warp::new(4, FULL_MASK);
        let mut m = FuncMem::new();
        let c = ctx(&[0xAA, 0xBB]);
        execute(
            &mut w,
            &alu(AluOp::Mov, 0, Src::Sp(Special::Tid), Src::Imm(0)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        // warp_in_block=1 -> tids 32..64
        assert_eq!(w.reg(Reg(0), 0), 32);
        assert_eq!(w.reg(Reg(0), 31), 63);
        execute(
            &mut w,
            &alu(AluOp::Mov, 1, Src::Sp(Special::Param(1)), Src::Imm(0)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        assert_eq!(w.reg(Reg(1), 5), 0xBB);
        execute(
            &mut w,
            &alu(AluOp::Mov, 2, Src::Sp(Special::Lane), Src::Imm(0)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        assert_eq!(w.reg(Reg(2), 9), 9);
        assert_eq!(w.pc(), 3);
    }

    #[test]
    fn guarded_lanes_skip() {
        let mut w = Warp::new(2, FULL_MASK);
        let mut m = FuncMem::new();
        let c = ctx(&[]);
        w.set_pred(Pred(0), 3, true);
        let i = Instr::guarded(
            Op::Alu {
                op: AluOp::Mov,
                dst: Reg(0),
                a: Src::Imm(9),
                b: Src::Imm(0),
            },
            Pred(0),
            true,
        );
        execute(&mut w, &i, &c, &mut SharedMem::Direct(&mut m));
        assert_eq!(w.reg(Reg(0), 3), 9);
        assert_eq!(w.reg(Reg(0), 4), 0);
    }

    #[test]
    fn coalesced_load_touches_one_line() {
        let mut w = Warp::new(2, FULL_MASK);
        let mut m = FuncMem::new();
        for l in 0..32u64 {
            m.write_u32(0x1000 + l * 4, l as u32 * 10);
        }
        let c = ctx(&[]);
        // addr reg = 0x1000 + lane*4
        execute(
            &mut w,
            &alu(AluOp::Mov, 0, Src::Sp(Special::Lane), Src::Imm(0)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        execute(
            &mut w,
            &alu(AluOp::Shl, 0, Src::Reg(Reg(0)), Src::Imm(2)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        execute(
            &mut w,
            &alu(AluOp::Add, 0, Src::Reg(Reg(0)), Src::Imm(0x1000)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        let out = execute(
            &mut w,
            &Instr::new(Op::Ld {
                space: Space::Global,
                width: Width::B4,
                dst: Reg(1),
                addr: Src::Reg(Reg(0)),
                offset: 0,
            }),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        assert_eq!(out.lines_read, vec![0x1000]);
        assert_eq!(w.reg(Reg(1), 7), 70);
        assert_eq!(out.dst, Some(Reg(1)));
    }

    #[test]
    fn scattered_load_touches_many_lines() {
        let mut w = Warp::new(2, FULL_MASK);
        let mut m = FuncMem::new();
        let c = ctx(&[]);
        // addr = lane * 1024 -> 32 distinct lines
        execute(
            &mut w,
            &alu(AluOp::Mov, 0, Src::Sp(Special::Lane), Src::Imm(0)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        execute(
            &mut w,
            &alu(AluOp::Shl, 0, Src::Reg(Reg(0)), Src::Imm(10)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        let out = execute(
            &mut w,
            &Instr::new(Op::Ld {
                space: Space::Global,
                width: Width::B4,
                dst: Reg(1),
                addr: Src::Reg(Reg(0)),
                offset: 0,
            }),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        assert_eq!(out.lines_read.len(), 32);
    }

    #[test]
    fn shared_accesses_use_shared_window_and_no_lines() {
        let mut w = Warp::new(2, 1); // single lane
        let mut m = FuncMem::new();
        let c = ctx(&[]);
        let st = Instr::new(Op::St {
            space: Space::Shared,
            width: Width::B4,
            src: Src::Imm(77),
            addr: Src::Imm(16),
            offset: 0,
        });
        let out = execute(&mut w, &st, &c, &mut SharedMem::Direct(&mut m));
        assert!(out.shared_access);
        assert!(out.lines_written.is_empty());
        assert_eq!(m.read_u32(0x8000_0000 + 16), 77);
        let ld = Instr::new(Op::Ld {
            space: Space::Shared,
            width: Width::B4,
            dst: Reg(0),
            addr: Src::Imm(16),
            offset: 0,
        });
        let out = execute(&mut w, &ld, &c, &mut SharedMem::Direct(&mut m));
        assert!(out.shared_access);
        assert_eq!(w.reg(Reg(0), 0), 77);
    }

    #[test]
    fn packed_ops_round_trip() {
        let mut w = Warp::new(3, FULL_MASK);
        let mut m = FuncMem::new();
        let c = ctx(&[]);
        // Each lane holds lane*3 in r0; store 2 bytes per lane at 0x2000.
        execute(
            &mut w,
            &alu(AluOp::Mov, 0, Src::Sp(Special::Lane), Src::Imm(0)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        execute(
            &mut w,
            &alu(AluOp::Mul, 0, Src::Reg(Reg(0)), Src::Imm(3)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        let st = Instr::new(Op::StPacked {
            k: 2,
            src: Src::Reg(Reg(0)),
            base: Src::Imm(0x2000),
        });
        let out = execute(&mut w, &st, &c, &mut SharedMem::Direct(&mut m));
        assert_eq!(out.lines_written, vec![0x2000]);
        let ld = Instr::new(Op::LdPacked {
            k: 2,
            dst: Reg(1),
            base: Src::Imm(0x2000),
        });
        execute(&mut w, &ld, &c, &mut SharedMem::Direct(&mut m));
        for l in 0..32 {
            assert_eq!(w.reg(Reg(1), l), (l as u64) * 3);
        }
    }

    #[test]
    fn vote_all_is_warp_wide_and() {
        let mut w = Warp::new(1, FULL_MASK);
        let mut m = FuncMem::new();
        let c = ctx(&[]);
        // P0 true except lane 13.
        for l in 0..32 {
            w.set_pred(Pred(0), l, l != 13);
        }
        execute(
            &mut w,
            &Instr::new(Op::VoteAll {
                dst: Pred(1),
                src: Pred(0),
            }),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        assert!(!w.pred(Pred(1), 0));
        execute(
            &mut w,
            &Instr::new(Op::VoteAny {
                dst: Pred(2),
                src: Pred(0),
            }),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        assert!(w.pred(Pred(2), 20));
    }

    #[test]
    fn setp_and_selp() {
        let mut w = Warp::new(2, FULL_MASK);
        let mut m = FuncMem::new();
        let c = ctx(&[]);
        execute(
            &mut w,
            &alu(AluOp::Mov, 0, Src::Sp(Special::Lane), Src::Imm(0)),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        execute(
            &mut w,
            &Instr::new(Op::SetP {
                pred: Pred(0),
                cmp: CmpOp::LtU,
                a: Src::Reg(Reg(0)),
                b: Src::Imm(16),
            }),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        execute(
            &mut w,
            &Instr::new(Op::Selp {
                dst: Reg(1),
                a: Src::Imm(1),
                b: Src::Imm(2),
                pred: Pred(0),
            }),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        assert_eq!(w.reg(Reg(1), 3), 1);
        assert_eq!(w.reg(Reg(1), 30), 2);
    }

    #[test]
    fn exit_retires_warp() {
        let mut w = Warp::new(1, FULL_MASK);
        let mut m = FuncMem::new();
        let c = ctx(&[]);
        let out = execute(
            &mut w,
            &Instr::new(Op::Exit),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        assert!(out.exited);
        assert!(w.done);
    }

    #[test]
    fn barrier_flags_warp() {
        let mut w = Warp::new(1, FULL_MASK);
        let mut m = FuncMem::new();
        let c = ctx(&[]);
        let out = execute(
            &mut w,
            &Instr::new(Op::Bar),
            &c,
            &mut SharedMem::Direct(&mut m),
        );
        assert!(out.at_barrier);
        assert!(w.at_barrier);
        assert_eq!(w.pc(), 1);
    }
}
