//! The whole-GPU model: SMs, two crossbars, memory partitions, the CTA
//! dispatcher, and the simulation integrity layer (forward-progress
//! watchdog, structural invariant audits, hang forensics).

use crate::assist::{LineStore, SharedLineStore};
use crate::config::{ConfigError, Design, GpuConfig};
use crate::fault::{stream, FaultInjector, FaultMode};
use crate::integrity::{Component, HangReport, Violation};
use crate::mempart::{PartReq, PartResp, Partition};
use crate::observe::{sim_metrics_schema, ObservabilityConfig, TraceConfig};
use crate::shard::{self, PhaseCtl, QuitGuard, ShardPtrs, SmDelta, PHASE_PART, PHASE_SM};
use crate::sm::{OutReq, SharedState, Sm};
use crate::snapshot::{self, RestoreError};
use crate::stats::RunStats;
use crate::trace::{ActivityTrace, Sample, TraceEvent, TraceEventKind, Tracer};
use caba_isa::{Kernel, Program};
use caba_mem::{
    CmapDelta, CompressionMap, Crossbar, FuncMem, IngressLanes, SharedCmap, SharedMem, LINE_SIZE,
};
use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use caba_stats::{FxHashMap, MetricsLevel, MetricsSnapshot, StallKind};
use std::fmt;
use std::sync::Arc;

/// Error returned by [`Gpu::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The kernel did not finish within the cycle budget.
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
        /// Machine state at the moment the budget ran out.
        report: Box<HangReport>,
    },
    /// The forward-progress watchdog saw no counter advance for a full
    /// window — the machine is wedged (usually a barrier deadlock or a lost
    /// request).
    Hang {
        /// Cycles simulated before the hang was declared.
        cycles: u64,
        /// The watchdog window that elapsed without progress.
        window: u64,
        /// Machine state at the moment the hang was declared.
        report: Box<HangReport>,
    },
    /// A structural invariant audit found violations.
    AuditFailed {
        /// Cycle the audit ran.
        cycle: u64,
        /// Every violation found, each naming the faulting component.
        violations: Vec<Violation>,
    },
}

impl RunError {
    /// The attached machine-state snapshot, when the failure carries one.
    pub fn report(&self) -> Option<&HangReport> {
        match self {
            RunError::Timeout { report, .. } | RunError::Hang { report, .. } => Some(report),
            RunError::AuditFailed { .. } => None,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Timeout { cycles, report } => {
                writeln!(f, "kernel did not complete within {cycles} cycles")?;
                write!(f, "{report}")
            }
            RunError::Hang {
                cycles,
                window,
                report,
            } => {
                writeln!(
                    f,
                    "no forward progress for {window} cycles (aborted at cycle {cycles})"
                )?;
                write!(f, "{report}")
            }
            RunError::AuditFailed { cycle, violations } => {
                writeln!(
                    f,
                    "invariant audit at cycle {cycle} found {} violation(s):",
                    violations.len()
                )?;
                for v in violations {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Where an in-flight read currently is, per the request ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Between the SM and the partition (inside the request crossbar).
    RequestXbar,
    /// Inside the memory partition (queues, MSHRs, DRAM).
    Partition,
    /// Between the partition and the SM (inside the response crossbar).
    ResponseXbar,
}

#[derive(Debug, Clone, Copy)]
struct LedgerEntry {
    issued_at: u64,
    stage: Stage,
}

/// The simulated GPU.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    design: Design,
    mem: FuncMem,
    cmap: Option<CompressionMap>,
    line_store: LineStore,
    sms: Vec<Sm>,
    /// Per-SM design forks (CABA controllers are per-SM state machines; the
    /// barrier-phased engine hands each worker exclusive instances).
    sm_designs: Vec<Design>,
    /// Per-SM deferred-visibility deltas (parallel SM phase only).
    sm_deltas: Vec<SmDelta>,
    parts: Vec<Partition>,
    /// Per-partition compression-map overlays (parallel partition phase).
    part_deltas: Vec<CmapDelta>,
    /// Double-buffered crossbar ingress: requests staged per-SM during the
    /// SM phase, merged into `xbar_fwd` in SM index order at the barrier.
    fwd_lanes: IngressLanes<OutReq>,
    /// Responses staged per-partition, merged in partition index order.
    rsp_lanes: IngressLanes<PartResp>,
    xbar_fwd: Crossbar<PartReq>,
    xbar_rsp: Crossbar<PartResp>,
    now: u64,
    tracer: Option<Tracer>,
    /// Every in-flight read, keyed by `(sm, line)`, with the stage the GPU
    /// last moved it into. The invariant audit checks that the recorded
    /// stage actually carries each request. Uses the deterministic in-repo
    /// [`FxHashMap`]: insert/remove runs on every memory access, and no
    /// iteration order escapes into architectural state (the audit sorts
    /// its violations).
    ledger: FxHashMap<(usize, u64), LedgerEntry>,
    xbar_injector: FaultInjector,
    audits_run: u64,
    flits_dropped: u64,
    flit_retransmissions: u64,
    /// Cycles the next-event clock jumped over instead of ticking, and how
    /// many distinct jumps it made. Serialized so a restored run reports
    /// the same totals; architectural state never depends on them.
    cycles_skipped: u64,
    skip_events: u64,
    /// Reusable dirty-line scratch for `commit_sm_deltas` — avoids a heap
    /// allocation on every cycle with memory writes.
    dirty_scratch: Vec<u64>,
    /// CTA dispatch cursor. Lives on the machine (not the run loop) so a
    /// restored snapshot resumes dispatch exactly where it left off.
    next_cta: u32,
    /// Cycle the current run epoch started at. [`Gpu::run`] resets it to
    /// `now`; [`Gpu::resume`] continues the epoch, so cycle budgets,
    /// watchdog strides, and audit schedules count from the original start.
    run_start: u64,
    /// Most recent periodic machine snapshot, `(cycle, container bytes)`,
    /// taken every [`GpuConfig::checkpoint_interval`] cycles. Feeds
    /// time-travel hang forensics and fork-from-checkpoint sweeps.
    last_checkpoint: Option<(u64, Vec<u8>)>,
    /// Optional spill target for periodic checkpoints (e.g. a durable
    /// store). Called with `(cycle, container bytes)` right after each
    /// snapshot is taken; record-only, so it can never perturb the run.
    checkpoint_sink: Option<CheckpointSink>,
}

/// The callback type a [`CheckpointSink`] wraps: `(cycle, container
/// bytes)` for each periodic checkpoint.
pub type CheckpointSinkFn = Box<dyn FnMut(u64, &[u8]) + Send>;

/// A callback receiving each periodic checkpoint as it is taken.
pub struct CheckpointSink(CheckpointSinkFn);

impl fmt::Debug for CheckpointSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CheckpointSink(..)")
    }
}

impl Gpu {
    /// Builds a GPU for one design point.
    ///
    /// # Panics
    ///
    /// Panics when `cfg` is inconsistent; use [`Gpu::try_new`] to handle
    /// [`ConfigError`] instead.
    pub fn new(cfg: GpuConfig, design: Design) -> Self {
        Self::try_new(cfg, design).unwrap_or_else(|e| panic!("invalid GpuConfig: {e}"))
    }

    /// Builds a GPU for one design point, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`GpuConfig::validate`].
    pub fn try_new(cfg: GpuConfig, design: Design) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let cmap = Self::build_cmap(&design);
        let with_md = design.mem_compressed();
        Ok(Gpu {
            cfg,
            mem: FuncMem::new(),
            cmap,
            line_store: LineStore::new(),
            sms: (0..cfg.num_sms).map(|i| Sm::new(i, cfg)).collect(),
            sm_designs: (0..cfg.num_sms).map(|_| design.fork()).collect(),
            sm_deltas: (0..cfg.num_sms).map(|_| SmDelta::default()).collect(),
            parts: (0..cfg.num_channels)
                .map(|i| Partition::new(i, cfg, with_md))
                .collect(),
            part_deltas: (0..cfg.num_channels).map(|_| CmapDelta::new()).collect(),
            fwd_lanes: IngressLanes::new(cfg.num_sms),
            rsp_lanes: IngressLanes::new(cfg.num_channels),
            xbar_fwd: Crossbar::new(cfg.num_sms, cfg.num_channels, cfg.icnt_latency),
            xbar_rsp: Crossbar::new(cfg.num_channels, cfg.num_sms, cfg.icnt_latency),
            now: 0,
            tracer: cfg.observability.trace.map(|t| Tracer::new(t, cfg.num_sms)),
            design,
            ledger: FxHashMap::default(),
            xbar_injector: FaultInjector::for_stream(cfg.fault, stream::CROSSBAR),
            audits_run: 0,
            flits_dropped: 0,
            flit_retransmissions: 0,
            cycles_skipped: 0,
            skip_events: 0,
            dirty_scratch: Vec::new(),
            next_cta: 0,
            run_start: 0,
            last_checkpoint: None,
            checkpoint_sink: None,
        })
    }

    /// The reference compression map for one design point — a pure
    /// memoization of per-line compressed forms, rebuilt from scratch by
    /// [`Gpu::restore`] rather than serialized.
    fn build_cmap(design: &Design) -> Option<CompressionMap> {
        design.mem_compressed().then(|| match design {
            Design::Caba(c) => CompressionMap::new(c.selector()),
            d => CompressionMap::new(caba_mem::func::LineCompressor::Fixed(
                d.algorithm().expect("compressed design has an algorithm"),
            )),
        })
    }

    /// Enables activity tracing: every `interval` cycles a [`Sample`] of
    /// per-SM issue counts and DRAM utilization is recorded. Retrieve the
    /// trace with [`Gpu::take_trace`] after `run`.
    #[deprecated(
        since = "0.1.0",
        note = "set `GpuConfig::observability` via `GpuConfig::with_trace(TraceConfig)` instead"
    )]
    pub fn enable_tracing(&mut self, interval: u64) {
        self.tracer = Some(Tracer::new(
            TraceConfig::sampled(interval.max(1)),
            self.cfg.num_sms,
        ));
    }

    /// Takes the recorded trace, if tracing was enabled
    /// ([`GpuConfig::with_trace`](crate::GpuConfig::with_trace)). Any
    /// instant events still buffered in SMs or partitions are drained
    /// first, so the trace is complete even when the run ends mid-interval.
    pub fn take_trace(&mut self) -> Option<ActivityTrace> {
        let mut tracer = self.tracer.take()?;
        if tracer.events_on {
            for sm in &mut self.sms {
                sm.drain_events(&mut tracer.trace.events);
            }
            for p in &mut self.parts {
                p.drain_events(&mut tracer.trace.events);
            }
        }
        Some(tracer.trace)
    }

    /// Assembles the metric snapshot for this run, or `None` when
    /// [`MetricsLevel::Off`](caba_stats::MetricsLevel) (the default — no
    /// registry exists and nothing was recorded). At `Counters` the snapshot
    /// holds only export-time entries derived from `stats`; at `Full` it
    /// additionally carries the per-event shard values (assist spawn/retire
    /// counts, occupancy high-water marks) merged across SMs in index order,
    /// so the result is bit-identical for any `intra_jobs`.
    pub fn metrics_snapshot(&self, stats: &RunStats) -> Option<MetricsSnapshot> {
        let level = self.cfg.observability.metrics;
        if !level.enabled() {
            return None;
        }
        let mut snap = if level.per_event() {
            let (reg, _) = sim_metrics_schema();
            let merged = reg.merge_shards(self.sms.iter().filter_map(|s| s.metric_shard()));
            reg.snapshot(&merged)
        } else {
            MetricsSnapshot::default()
        };
        snap.push("run.cycles", stats.cycles);
        for k in StallKind::ALL {
            snap.push(k.slug(), stats.breakdown.count(k));
        }
        snap.push("assist.slots_stolen", stats.assist_slots_stolen);
        snap.push("assist.slots_reclaimed", stats.assist_slots_reclaimed);
        snap.push("md.stall_cycles", stats.md_stall_cycles);
        snap.push("dram.bursts", stats.dram_bursts);
        snap.push("icnt.flits", stats.icnt_flits);
        Some(snap)
    }

    fn trace_tick(&mut self) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        if self.now - tr.last_cycle < tr.interval {
            return;
        }
        let mut app = Vec::with_capacity(self.sms.len());
        let mut assist = Vec::with_capacity(self.sms.len());
        let mut stalls = Vec::with_capacity(self.sms.len());
        for (i, sm) in self.sms.iter_mut().enumerate() {
            app.push(sm.app_instructions() - tr.last_app[i]);
            assist.push(sm.assist_instructions() - tr.last_assist[i]);
            stalls.push(sm.breakdown().delta(&tr.last_stalls[i]));
            tr.last_app[i] = sm.app_instructions();
            tr.last_assist[i] = sm.assist_instructions();
            tr.last_stalls[i] = *sm.breakdown();
            if tr.events_on {
                sm.drain_events(&mut tr.trace.events);
            }
        }
        let (mut busy, mut total) = (0u64, 0u64);
        for p in &mut self.parts {
            // Quiesced partitions are clock-skipped by the run loop; repay
            // the lag so the sampled utilization denominator is exact.
            p.catch_up(self.now);
            let d = p.dram_stats();
            busy += d.bus_busy_cycles;
            total += d.total_cycles;
            if tr.events_on {
                p.drain_events(&mut tr.trace.events);
            }
        }
        tr.trace.samples.push(Sample {
            cycle: self.now,
            app_issued: app,
            assist_issued: assist,
            stalls,
            dram_busy: busy - tr.last_dram_busy,
            dram_total: total - tr.last_dram_total,
        });
        tr.last_dram_busy = busy;
        tr.last_dram_total = total;
        tr.last_cycle = self.now;
    }

    /// The functional memory (read-only view).
    pub fn mem(&self) -> &FuncMem {
        &self.mem
    }

    /// The functional memory, mutable (for loading input images).
    pub fn mem_mut(&mut self) -> &mut FuncMem {
        &mut self.mem
    }

    /// Copies input data into device memory (the host→device transfer; with
    /// compressed designs the data is considered software-pre-compressed at
    /// this point, §4.3.1).
    pub fn load_image(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.load_image(addr, bytes);
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The design point.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// A value that changes whenever any part of the machine makes forward
    /// progress. Built from monotone counters only, so an unchanged value
    /// over a whole watchdog window proves the machine is wedged.
    fn progress_signature(&self) -> u64 {
        let mut sig = 0u64;
        for sm in &self.sms {
            sig = sig.wrapping_add(sm.progress_signature());
        }
        for p in &self.parts {
            let d = p.dram_stats();
            sig = sig
                .wrapping_add(p.l2_hits())
                .wrapping_add(p.l2_misses())
                .wrapping_add(d.bursts)
                .wrapping_add(d.reads)
                .wrapping_add(d.writes);
        }
        sig.wrapping_add(self.xbar_fwd.total_flits())
            .wrapping_add(self.xbar_rsp.total_flits())
    }

    /// Runs the full structural invariant audit.
    fn audit(&self, cycle: u64) -> Vec<Violation> {
        let mut out = Vec::new();

        // Request conservation: the stage the ledger last moved each read
        // into must actually carry it. The ledger is iterated in hash order
        // and only the (rare) violations are collected and sorted, instead
        // of materializing and sorting the whole ledger on every audit.
        let mut bad: Vec<(usize, u64, u64, Component)> = Vec::new();
        for (&(sm, line), entry) in &self.ledger {
            let (carried, component) = match entry.stage {
                Stage::RequestXbar => (
                    self.xbar_fwd
                        .in_flight()
                        .any(|r| !r.is_write && r.sm == sm && r.addr == line),
                    Component::CrossbarRequest,
                ),
                Stage::Partition => {
                    let dst = ((line / LINE_SIZE as u64) % self.parts.len() as u64) as usize;
                    (
                        self.parts[dst].carries_read(sm, line),
                        Component::Partition(dst),
                    )
                }
                Stage::ResponseXbar => (
                    self.xbar_rsp
                        .in_flight()
                        .any(|r| r.sm == sm && r.addr == line),
                    Component::CrossbarResponse,
                ),
            };
            if !carried {
                bad.push((sm, line, entry.issued_at, component));
            }
        }
        bad.sort_unstable_by_key(|&(sm, line, _, _)| (sm, line));
        for (sm, line, issued_at, component) in bad {
            out.push(Violation {
                cycle,
                component,
                detail: format!(
                    "read of line {line:#x} for SM {sm} (issued cycle {issued_at}) vanished"
                ),
            });
        }

        // SM-side conservation: every outstanding L1 MSHR line must still
        // have a carrier (queued at the SM or in the ledger).
        for sm in &self.sms {
            for line in sm.mshr_lines() {
                if !sm.has_out_req(line) && !self.ledger.contains_key(&(sm.id(), line)) {
                    out.push(Violation {
                        cycle,
                        component: Component::Sm(sm.id()),
                        detail: format!(
                            "L1 MSHR waits on line {line:#x} but no request is in flight"
                        ),
                    });
                }
            }
        }

        // Occupancy bounds and scoreboard/SIMT consistency.
        for sm in &self.sms {
            sm.audit_into(cycle, &mut out);
        }
        for p in &self.parts {
            p.audit_into(cycle, &mut out);
        }

        // Compressed-line round-trip verification.
        if let Some(cmap) = &self.cmap {
            for addr in cmap.audit_round_trips(&self.mem, 0) {
                out.push(Violation {
                    cycle,
                    component: Component::CompressionMap,
                    detail: format!(
                        "cached compressed form of line {addr:#x} no longer round-trips"
                    ),
                });
            }
        }
        out
    }

    /// Repays the clock of every quiesced (skipped) partition so DRAM
    /// cycle counters are exact. Must run before anything reads
    /// `dram_stats().total_cycles`: trace samples, hang forensics, and
    /// final stats collection.
    fn catch_up_parts(&mut self) {
        let now = self.now;
        for p in &mut self.parts {
            p.catch_up(now);
        }
    }

    /// Builds the forensic snapshot attached to timeout/hang errors.
    fn hang_report(&self, kernel: &Kernel, ctas_dispatched: u32, grid: u32) -> HangReport {
        HangReport {
            cycle: self.now,
            window: self.cfg.watchdog_window,
            ctas_dispatched: ctas_dispatched as usize,
            grid_ctas: grid as usize,
            sms: self
                .sms
                .iter()
                .map(|s| s.snapshot(self.now, kernel))
                .collect(),
            partitions: self.parts.iter().map(|p| p.snapshot()).collect(),
            xbar_fwd_in_flight: self.xbar_fwd.in_flight().count(),
            xbar_rsp_in_flight: self.xbar_rsp.in_flight().count(),
            oldest_request: self
                .ledger
                .iter()
                .map(|(&(sm, line), e)| (self.now.saturating_sub(e.issued_at), sm, line))
                .max_by_key(|&(age, sm, line)| (age, sm, line)),
            trace_path: None,
        }
    }

    /// Time-travel hang forensics: re-execute the window from the most
    /// recent periodic checkpoint to the hang in a fresh replay GPU with
    /// full tracing enabled, and write the Chrome-trace JSON to the system
    /// temp directory. Returns the written path, or `None` when no
    /// checkpoint exists or any replay step fails — forensics must never
    /// turn a hang into a panic.
    fn hang_forensics(&self, kernel: &Kernel) -> Option<String> {
        let (_, bytes) = self.last_checkpoint.as_ref()?;
        let hang_cycle = self.now;
        let mut cfg = self.cfg;
        cfg.observability = ObservabilityConfig {
            trace: Some(TraceConfig::full(1)),
            metrics: MetricsLevel::Off,
        };
        // Replay serially and without taking further checkpoints. Both
        // knobs (like observability) are outside the config hash, and both
        // are record-only: the replayed window is bit-identical to the
        // original run, which is exactly what makes the trace evidence.
        cfg.intra_jobs = 1;
        cfg.checkpoint_interval = 0;
        let mut replay = Gpu::try_new(cfg, self.design.fork()).ok()?;
        replay.restore(kernel, bytes).ok()?;
        // The budget lands the replay timeout exactly on the hang cycle;
        // the replay's own watchdog (baseline reset at resume) can fire no
        // earlier, and a re-hang at the same cycle is equally final.
        match replay.resume(kernel, hang_cycle - replay.run_start) {
            Err(RunError::Timeout { .. } | RunError::Hang { .. }) => {}
            _ => return None,
        }
        let trace = replay.take_trace()?;
        let path = std::env::temp_dir().join(format!(
            "caba-hang-{}-c{hang_cycle}.trace.json",
            self.design.label().to_lowercase()
        ));
        std::fs::write(&path, trace.to_chrome_json()).ok()?;
        Some(path.display().to_string())
    }

    /// Raw pointers into the shardable state, captured once per run. The
    /// vectors behind these pointers are never resized while a run is in
    /// flight.
    fn shard_ptrs(&mut self) -> ShardPtrs {
        ShardPtrs {
            mem: &mut self.mem,
            cmap: &mut self.cmap,
            line_store: &mut self.line_store,
            sms: self.sms.as_mut_ptr(),
            num_sms: self.sms.len(),
            sm_designs: self.sm_designs.as_mut_ptr(),
            sm_deltas: self.sm_deltas.as_mut_ptr(),
            fwd_lanes: self.fwd_lanes.as_mut_slice().as_mut_ptr(),
            parts: self.parts.as_mut_ptr(),
            num_parts: self.parts.len(),
            part_deltas: self.part_deltas.as_mut_ptr(),
            rsp_lanes: self.rsp_lanes.as_mut_slice().as_mut_ptr(),
            mem_compressed: self.design.mem_compressed(),
            icnt_compressed: self.design.icnt_compressed(),
        }
    }

    /// Runs `kernel` to completion (or `max_cycles`).
    ///
    /// With [`GpuConfig::intra_jobs`] > 1 the per-cycle SM and
    /// memory-partition loops are sharded over that many worker threads
    /// (see the [`crate::shard`] module docs for the phase structure and
    /// the determinism argument). [`RunStats`] are bit-identical for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// * [`RunError::Timeout`] — the cycle budget ran out.
    /// * [`RunError::Hang`] — the forward-progress watchdog
    ///   ([`GpuConfig::watchdog_window`]) saw no progress for a full window;
    ///   the attached [`HangReport`] names every stalled warp and queue.
    /// * [`RunError::AuditFailed`] — a structural invariant audit
    ///   ([`GpuConfig::audit_interval`]) found violations.
    pub fn run(&mut self, kernel: &Kernel, max_cycles: u64) -> Result<RunStats, RunError> {
        self.next_cta = 0;
        self.run_start = self.now;
        self.last_checkpoint = None;
        self.cycles_skipped = 0;
        self.skip_events = 0;
        self.run_phases(kernel, max_cycles)
    }

    /// Continues a run — typically after [`Gpu::restore`], or after
    /// [`Gpu::run`] returned [`RunError::Timeout`] (the machine is left
    /// intact at the cycle boundary). Unlike `run`, the CTA dispatch cursor
    /// and the epoch start are *not* reset, and `max_cycles` counts from the
    /// original epoch start: `run(k, C)` to a timeout followed by
    /// `resume(k, M)` is bit-identical to an unbroken `run(k, M)`.
    ///
    /// # Errors
    ///
    /// As [`Gpu::run`].
    pub fn resume(&mut self, kernel: &Kernel, max_cycles: u64) -> Result<RunStats, RunError> {
        self.run_phases(kernel, max_cycles)
    }

    fn run_phases(&mut self, kernel: &Kernel, max_cycles: u64) -> Result<RunStats, RunError> {
        // More workers than SMs would own empty shards: clamp.
        let jobs = self.cfg.intra_jobs.min(self.cfg.num_sms).max(1);
        let ptrs = self.shard_ptrs();
        if jobs == 1 {
            return self.run_loop(kernel, max_cycles, &ptrs, None);
        }
        let ctl = PhaseCtl::new();
        std::thread::scope(|s| {
            for w in 1..jobs {
                let ctl = &ctl;
                s.spawn(move || shard::worker_loop(w, jobs, ptrs, ctl, kernel));
            }
            // Releases the workers even if the run loop unwinds.
            let _quit = QuitGuard(&ctl);
            self.run_loop(kernel, max_cycles, &ptrs, Some((&ctl, jobs)))
        })
    }

    /// The per-cycle engine. `par` is `None` for the inline serial path and
    /// `Some((barrier, jobs))` when worker threads share the phases; both
    /// paths run the identical phase sequence, so stats are bit-identical.
    fn run_loop(
        &mut self,
        kernel: &Kernel,
        max_cycles: u64,
        ptrs: &ShardPtrs,
        par: Option<(&PhaseCtl, usize)>,
    ) -> Result<RunStats, RunError> {
        let extra_regs = match &self.design {
            Design::Caba(c) => c.extra_regs_per_thread(),
            _ => 0,
        };
        let grid = kernel.dims().grid_dim;
        let mut next_cta: u32 = self.next_cta;
        let start = self.run_start;
        let ckpt = self.cfg.checkpoint_interval;
        let mut last_sig = self.progress_signature();
        // Watchdog baselines restart at every run/resume entry (`self.now`,
        // not the epoch start): the watchdog never mutates machine state, so
        // this only delays detection, never changes a completing run.
        let mut last_progress = self.now;
        // The progress signature scans every SM and partition, so it is
        // sampled every `wd_stride` cycles instead of every cycle. Hang
        // detection latency grows by at most one stride; completing runs
        // are bit-identical (the watchdog never mutates machine state).
        let wd_window = self.cfg.watchdog_window;
        let wd_stride = (wd_window / 8).max(1);
        let tracing = self.tracer.is_some();
        let time_skip = self.cfg.time_skip;
        // CTA-dispatch gate (step 1): open until a full round places
        // nothing, then reopened by any block retirement.
        let mut dispatch_open = true;
        let mut blocks_retired_seen: u64 = self.sms.iter().map(|s| s.blocks_retired_total()).sum();

        loop {
            let now = self.now;
            if now - start >= max_cycles {
                self.next_cta = next_cta;
                self.catch_up_parts();
                return Err(RunError::Timeout {
                    cycles: max_cycles,
                    report: Box::new(self.hang_report(kernel, next_cta, grid)),
                });
            }

            // Periodic rolling checkpoint (record-only; the snapshot is a
            // pure read of the cycle-boundary state).
            if ckpt != 0
                && now != start
                && (now - start).is_multiple_of(ckpt)
                && self.last_checkpoint.as_ref().is_none_or(|(c, _)| *c != now)
            {
                self.next_cta = next_cta;
                let bytes = self.snapshot(kernel);
                if let Some(CheckpointSink(sink)) = self.checkpoint_sink.as_mut() {
                    sink(now, &bytes);
                }
                self.last_checkpoint = Some((now, bytes));
            }

            // 1. CTA dispatch (round-robin over SMs) — serial. A launch
            //    attempt can only flip from rejected to accepted when a
            //    block retires somewhere (regs/shared/warp slots free only
            //    at block retirement, and failed attempts are pure), so
            //    after a round that placed nothing the walk stays closed
            //    until the SMs' retire total moves — identical launches,
            //    none of the per-cycle rejection scans.
            let mut launched_any = false;
            if next_cta < grid {
                let retired: u64 = self.sms.iter().map(|s| s.blocks_retired_total()).sum();
                if dispatch_open || retired != blocks_retired_seen {
                    blocks_retired_seen = retired;
                    'dispatch: while next_cta < grid {
                        let mut launched = false;
                        for sm in &mut self.sms {
                            if next_cta >= grid {
                                break;
                            }
                            if sm.try_launch_block(next_cta, kernel, extra_regs) {
                                next_cta += 1;
                                launched = true;
                                launched_any = true;
                            }
                        }
                        if !launched {
                            break 'dispatch;
                        }
                    }
                    dispatch_open = launched_any;
                }
            }

            // 2. SM phase. Every SM advances one cycle against a
            //    deferred-visibility overlay (start-of-cycle snapshot plus
            //    its own writes) and stages at most one outbound request
            //    into its ingress lane; the deltas then commit in SM index
            //    order. The overlay runs even at `intra_jobs = 1` — writes
            //    become visible to *other* SMs only at the end-of-cycle
            //    commit, a clocked-synchronous semantics that is identical
            //    no matter how the phase is sharded. (A direct-view serial
            //    phase would leak same-cycle writes to higher-numbered SMs
            //    in sweep order — a simulation artifact no real crossbar
            //    exhibits, and inherently order-dependent.)
            //    SAFETY: `ptrs` targets this Gpu's fields; the barrier
            //    protocol (shard module docs) partitions all access.
            match par {
                None => unsafe { shard::sm_phase_overlay(ptrs, 0, ptrs.num_sms, now, kernel) },
                Some((ctl, jobs)) => {
                    ctl.publish(PHASE_SM, now);
                    let (lo, hi) = shard::shard_range(ptrs.num_sms, 0, jobs);
                    unsafe { shard::sm_phase_overlay(ptrs, lo, hi, now, kernel) };
                    ctl.wait_done(jobs - 1);
                }
            }
            self.commit_sm_deltas();

            // 3. Merge staged requests into the forward crossbar in SM
            //    index order — crossbar admission, the fault-injection RNG
            //    stream, and the request ledger see the exact serial
            //    sequence. Reads enter the request ledger here.
            self.merge_requests(now);

            // 4. Crossbar → partitions. The output-port scan only runs when
            //    the crossbar actually holds delivered flits.
            self.xbar_fwd.cycle();
            if self.xbar_fwd.delivered_pending() > 0 {
                for (p, part) in self.parts.iter_mut().enumerate() {
                    if part.can_accept() {
                        if let Some(req) = self.xbar_fwd.pop(p) {
                            if !req.is_write {
                                if let Some(e) = self.ledger.get_mut(&(req.sm, req.addr)) {
                                    e.stage = Stage::Partition;
                                }
                            }
                            part.push(req);
                        }
                    }
                }
            }

            // 5. Partition phase. Parallel: workers advance partition
            //    shards against a frozen memory snapshot (partitions are
            //    address-disjoint, so per-partition compression-map
            //    overlays never conflict), staging one response per
            //    partition. Quiesced partitions are clock-skipped — their
            //    DRAM clock is repaid in bulk by `Partition::catch_up`,
            //    which is timing-equivalent because FR-FCFS compares
            //    against the absolute `now`, not per-cycle deltas.
            match par {
                None => unsafe { shard::part_phase_overlay(ptrs, 0, ptrs.num_parts, now) },
                Some((ctl, jobs)) => {
                    ctl.publish(PHASE_PART, now);
                    let (lo, hi) = shard::shard_range(ptrs.num_parts, 0, jobs);
                    unsafe { shard::part_phase_overlay(ptrs, lo, hi, now) };
                    ctl.wait_done(jobs - 1);
                }
            }
            self.commit_part_deltas();

            // 6. Merge staged responses into the response crossbar in
            //    partition index order.
            self.merge_responses();

            // 7. Response crossbar → SM fills — serial, direct views, each
            //    SM's own design fork (fills may launch assist warps whose
            //    slots/tags live in that SM's controller).
            self.xbar_rsp.cycle();
            if self.xbar_rsp.delivered_pending() > 0 {
                for i in 0..self.sms.len() {
                    while let Some(resp) = self.xbar_rsp.pop(i) {
                        self.ledger.remove(&(i, resp.addr));
                        let mut shared = SharedState {
                            mem: SharedMem::Direct(&mut self.mem),
                            cmap: self.cmap.as_mut().map(SharedCmap::Direct),
                            line_store: SharedLineStore::Direct(&mut self.line_store),
                            design: &mut self.sm_designs[i],
                        };
                        self.sms[i].handle_fill(now, resp.addr, &mut shared);
                    }
                }
            }

            self.now += 1;
            if tracing {
                self.trace_tick();
            }

            // Forward-progress watchdog (sampled every `wd_stride` cycles).
            if wd_window > 0 && (self.now - start).is_multiple_of(wd_stride) {
                let sig = self.progress_signature();
                if sig != last_sig {
                    last_sig = sig;
                    last_progress = self.now;
                } else if self.now - last_progress >= wd_window {
                    self.next_cta = next_cta;
                    self.catch_up_parts();
                    let mut report = Box::new(self.hang_report(kernel, next_cta, grid));
                    report.trace_path = self.hang_forensics(kernel);
                    return Err(RunError::Hang {
                        cycles: self.now - start,
                        window: wd_window,
                        report,
                    });
                }
            }

            // Structural invariant audits.
            if self.cfg.audit_interval > 0
                && (self.now - start).is_multiple_of(self.cfg.audit_interval)
            {
                self.audits_run += 1;
                let violations = self.audit(self.now);
                if !violations.is_empty() {
                    self.next_cta = next_cta;
                    return Err(RunError::AuditFailed {
                        cycle: self.now,
                        violations,
                    });
                }
            }

            // 8. Completion check. Cheapest gates first: the dispatch
            //    cursor, then the in-flight read ledger (empty is implied
            //    by a fully drained machine, so this gate never delays
            //    completion), then the O(1) idle/quiesced flags.
            if next_cta >= grid
                && self.ledger.is_empty()
                && self.xbar_fwd.idle()
                && self.xbar_rsp.idle()
                && self.sms.iter().all(|s| s.quiesced())
                && self.parts.iter().all(|p| p.quiesced())
            {
                break;
            }

            // 9. Next-event time skip. The cycle just executed proved every
            //    SM frozen (dormant) or empty (quiesced); if on top of that
            //    both crossbars and all ingress lanes are drained and CTA
            //    dispatch is done or blocked on residency, then every cycle
            //    before the earliest component horizon is a proven no-op:
            //    jump the clock there, crediting the span to the Fig. 1
            //    buckets in bulk (see DESIGN.md "Next-event clock"). The
            //    jump is capped so every checkpoint top, audit / watchdog /
            //    trace-sample bottom, and the timeout boundary still execute
            //    at their exact cycles — the skip is observable only as
            //    wall-clock. If no component has a horizon at all the
            //    machine is wedged; fall through to per-cycle ticking so the
            //    watchdog can prove it.
            if time_skip
                && (next_cta >= grid || !launched_any)
                && self.fwd_lanes.is_empty()
                && self.rsp_lanes.is_empty()
                && self.xbar_fwd.idle()
                && self.xbar_rsp.idle()
                && self.sms.iter().all(|s| s.dormant() || s.quiesced())
            {
                let mut horizon: Option<u64> = None;
                let fold = |t: u64, h: &mut Option<u64>| {
                    *h = Some(h.map_or(t, |a: u64| a.min(t)));
                };
                for sm in &self.sms {
                    if sm.dormant() {
                        if let Some(t) = sm.skip_horizon() {
                            fold(t, &mut horizon);
                        }
                    }
                }
                for p in &self.parts {
                    if let Some(t) = p.next_event(self.now) {
                        fold(t, &mut horizon);
                    }
                }
                if let Some(mut t) = horizon {
                    t = t.min(start.saturating_add(max_cycles));
                    if ckpt != 0 {
                        // Checkpoints fire at the top of the iteration that
                        // executes a boundary cycle: landing exactly on the
                        // boundary still takes it.
                        let r = (self.now - start) % ckpt;
                        let mut c0 = if r == 0 {
                            self.now
                        } else {
                            self.now + (ckpt - r)
                        };
                        if c0 == start {
                            c0 = start + ckpt;
                        }
                        t = t.min(c0);
                    }
                    if self.cfg.audit_interval > 0 {
                        // Audits fire at the bottom, after the increment:
                        // the bottom for boundary `b` belongs to executed
                        // cycle `b - 1`, so land no further than that.
                        let ai = self.cfg.audit_interval;
                        let b = self.now + (ai - (self.now - start) % ai);
                        t = t.min(b - 1);
                    }
                    if wd_window > 0 {
                        let s = self.now + (wd_stride - (self.now - start) % wd_stride);
                        t = t.min(s - 1);
                    }
                    if let Some(tr) = &self.tracer {
                        t = t.min((tr.last_cycle + tr.interval).saturating_sub(1));
                    }
                    if t > self.now {
                        let span = t - self.now;
                        for sm in &mut self.sms {
                            sm.skip_ahead(span);
                        }
                        self.xbar_fwd.skip(span);
                        self.xbar_rsp.skip(span);
                        self.now = t;
                        self.cycles_skipped += span;
                        self.skip_events += 1;
                    }
                }
            }
        }

        self.next_cta = next_cta;
        self.catch_up_parts();
        Ok(self.collect_stats(self.now - start))
    }

    /// Commits every SM's deferred-visibility delta at the cycle barrier,
    /// in SM index order: memory write logs first (byte-merged, so two SMs
    /// touching different bytes of one line both land), then line-store
    /// logs, then compression-map logs. Finally every dirtied line is
    /// blanket-invalidated in the compression map — an SM may have cached
    /// an entry computed from its own overlay that a later-committing SM's
    /// write staled. Invalidation only forces recomputation of a pure
    /// memoization, so it is invisible to timing.
    fn commit_sm_deltas(&mut self) {
        let mut dirty = std::mem::take(&mut self.dirty_scratch);
        dirty.clear();
        for d in &mut self.sm_deltas {
            d.mem.commit(&mut self.mem, Some(&mut dirty));
            d.ls.commit(&mut self.line_store);
        }
        if let Some(cmap) = self.cmap.as_mut() {
            for d in &mut self.sm_deltas {
                d.cmap.commit(cmap);
            }
            dirty.sort_unstable();
            dirty.dedup();
            for &base in &dirty {
                cmap.invalidate(base);
            }
        }
        self.dirty_scratch = dirty;
    }

    /// Commits per-partition compression-map overlays in partition index
    /// order. Partition deltas only carry lazily computed cache entries
    /// for partition-owned (address-disjoint) lines, so order is cosmetic.
    fn commit_part_deltas(&mut self) {
        if let Some(cmap) = self.cmap.as_mut() {
            for d in &mut self.part_deltas {
                d.commit(cmap);
            }
        }
    }

    /// Drains the per-SM ingress lanes into the forward crossbar in SM
    /// index order (at most one request per SM per cycle, as in the serial
    /// engine). A request the crossbar cannot admit returns to the front
    /// of its SM's outbound queue, exactly where a serial run would have
    /// left it.
    fn merge_requests(&mut self, now: u64) {
        for i in 0..self.sms.len() {
            let Some(req) = self.fwd_lanes.take(i) else {
                continue;
            };
            let dst = ((req.addr / LINE_SIZE as u64) % self.cfg.num_channels as u64) as usize;
            if !self.xbar_fwd.can_accept(dst) {
                self.sms[i].push_request_front(req);
                continue;
            }
            if self.xbar_injector.drop_packet() {
                self.flits_dropped += 1;
                let retransmitted = self.xbar_injector.mode() == FaultMode::Recover;
                if let Some(tr) = self.tracer.as_mut().filter(|t| t.events_on) {
                    tr.trace.events.push(TraceEvent {
                        cycle: now,
                        kind: TraceEventKind::XbarDrop { retransmitted },
                    });
                }
                match self.xbar_injector.mode() {
                    FaultMode::Recover => {
                        // Link-level retransmission: the packet returns to
                        // the SM and re-enters arbitration.
                        self.flit_retransmissions += 1;
                        self.sms[i].push_request_front(req);
                    }
                    FaultMode::Silent => {
                        if !req.is_write {
                            // The SM believes the read is in flight; the
                            // conservation audit must notice it is not.
                            self.ledger.insert(
                                (i, req.addr),
                                LedgerEntry {
                                    issued_at: now,
                                    stage: Stage::RequestXbar,
                                },
                            );
                        }
                    }
                }
                continue;
            }
            if let Err(e) = self.xbar_fwd.try_push(
                i,
                dst,
                PartReq {
                    sm: i,
                    addr: req.addr,
                    is_write: req.is_write,
                },
                req.flits,
            ) {
                debug_assert!(e.is_back_pressure(), "unexpected push error: {e}");
                self.sms[i].push_request_front(req);
                continue;
            }
            if !req.is_write {
                self.ledger.insert(
                    (i, req.addr),
                    LedgerEntry {
                        issued_at: now,
                        stage: Stage::RequestXbar,
                    },
                );
            }
        }
    }

    /// Drains the per-partition ingress lanes into the response crossbar in
    /// partition index order; a response the crossbar cannot admit is held
    /// back in its partition (back-pressure), as in the serial engine.
    fn merge_responses(&mut self) {
        for p in 0..self.parts.len() {
            let Some(resp) = self.rsp_lanes.take(p) else {
                continue;
            };
            if !self.xbar_rsp.can_accept(resp.sm) {
                self.parts[p].push_response_front(resp);
                continue;
            }
            if self.xbar_injector.drop_packet() {
                self.flits_dropped += 1;
                let retransmitted = self.xbar_injector.mode() == FaultMode::Recover;
                if let Some(tr) = self.tracer.as_mut().filter(|t| t.events_on) {
                    tr.trace.events.push(TraceEvent {
                        cycle: self.now,
                        kind: TraceEventKind::XbarDrop { retransmitted },
                    });
                }
                match self.xbar_injector.mode() {
                    FaultMode::Recover => {
                        self.flit_retransmissions += 1;
                        self.parts[p].push_response_front(resp);
                    }
                    FaultMode::Silent => {
                        // The response vanishes at the crossbar port.
                        if let Some(e) = self.ledger.get_mut(&(resp.sm, resp.addr)) {
                            e.stage = Stage::ResponseXbar;
                        }
                    }
                }
                continue;
            }
            if let Some(e) = self.ledger.get_mut(&(resp.sm, resp.addr)) {
                e.stage = Stage::ResponseXbar;
            }
            let (src, dst, flits) = (p, resp.sm, resp.flits);
            if let Err(e) = self.xbar_rsp.try_push(src, dst, resp, flits) {
                debug_assert!(e.is_back_pressure(), "unexpected push error: {e}");
                self.parts[p].push_response_front(e.payload);
            }
        }
    }

    /// Diagnostic multi-line state dump.
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let mut out = String::new();
        for sm in &self.sms {
            out.push_str(&sm.debug_state());
            out.push('\n');
        }
        for p in &self.parts {
            out.push_str(&format!("P{}: quiesced={}\n", p.id(), p.quiesced()));
        }
        out.push_str(&format!(
            "xbar_fwd idle={} xbar_rsp idle={}\n",
            self.xbar_fwd.idle(),
            self.xbar_rsp.idle()
        ));
        out
    }

    fn collect_stats(&self, cycles: u64) -> RunStats {
        let mut stats = RunStats {
            cycles,
            ..Default::default()
        };
        for sm in &self.sms {
            sm.export_stats(&mut stats);
        }
        for part in &self.parts {
            let d = part.dram_stats();
            stats.dram_busy_cycles += d.bus_busy_cycles;
            stats.dram_total_cycles += d.total_cycles;
            stats.dram_bursts += d.bursts;
            stats.dram_activates += d.row_misses;
            stats.l2_hits += part.l2_hits();
            stats.l2_misses += part.l2_misses();
            stats.md_lookups += part.md_lookups();
            stats.md_misses += part.md_misses();
            stats.md_stall_cycles += part.md_stall_cycles();
            stats.dram_delay_faults += part.delay_faults();
        }
        stats.icnt_flits = self.xbar_fwd.total_flits() + self.xbar_rsp.total_flits();
        stats.audits_run = self.audits_run;
        stats.flits_dropped = self.flits_dropped;
        stats.flit_retransmissions = self.flit_retransmissions;
        stats
    }

    /// The cycle counter. Advances across [`Gpu::run`]/[`Gpu::resume`]
    /// calls; a restored snapshot continues from the snapshot's cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Next-event clock totals as `(cycles_skipped, skip_events)`: how many
    /// cycles the run loop jumped over instead of ticking, in how many
    /// distinct jumps. Serialized with the machine, so a restored run
    /// reports the same totals an unbroken one would. Deliberately *not*
    /// part of [`RunStats`]: skipping is bit-invisible to every
    /// architectural statistic, and the golden tests compare `RunStats`
    /// across runs with the knob on and off.
    pub fn skip_stats(&self) -> (u64, u64) {
        (self.cycles_skipped, self.skip_events)
    }

    /// The most recent periodic checkpoint taken during a run with
    /// [`GpuConfig::checkpoint_interval`] > 0, as `(cycle, container
    /// bytes)`.
    pub fn last_checkpoint(&self) -> Option<(u64, &[u8])> {
        self.last_checkpoint
            .as_ref()
            .map(|(c, b)| (*c, b.as_slice()))
    }

    /// Registers a spill target for periodic checkpoints: `sink(cycle,
    /// container_bytes)` is called every time the run loop takes one, so
    /// a durable store can persist checkpoints as the run progresses.
    /// The sink is record-only and can never perturb the run.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Zero`] when [`GpuConfig::checkpoint_interval`] is 0
    /// — the sink would silently never fire, which is always a caller
    /// bug, not a configuration choice.
    pub fn set_checkpoint_sink(&mut self, sink: CheckpointSinkFn) -> Result<(), ConfigError> {
        if self.cfg.checkpoint_interval == 0 {
            return Err(ConfigError::Zero {
                field: "checkpoint_interval",
            });
        }
        self.checkpoint_sink = Some(CheckpointSink(sink));
        Ok(())
    }

    /// Removes any registered checkpoint sink.
    pub fn clear_checkpoint_sink(&mut self) {
        self.checkpoint_sink = None;
    }

    /// Serializes the complete machine state — functional memory, every SM
    /// (warps, scoreboards, L1, MSHRs, store buffer, assist runtime), every
    /// partition (L2, MSHRs, MD cache, DRAM channel and retry/delay
    /// queues), both crossbars, the compressed-line store, per-SM CABA
    /// controller state, every fault-injection RNG stream, and the
    /// in-flight request ledger — into a versioned, checksummed container
    /// that [`Gpu::restore`] accepts.
    ///
    /// Must be called at a cycle boundary: between `run`/`resume` calls, or
    /// after [`RunError::Timeout`] (which leaves the machine intact at the
    /// boundary). The run loop's own periodic checkpoints satisfy this by
    /// construction.
    pub fn snapshot(&self, kernel: &Kernel) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.raw(snapshot::MAGIC);
        w.u32(snapshot::FORMAT_VERSION);
        w.u64(snapshot::config_hash(&self.cfg));
        w.str(&self.design.label());
        w.u64(kernel.program().content_hash());
        self.payload_save(&mut w);
        snapshot::seal(w)
    }

    /// Restores machine state from a [`Gpu::snapshot`] container into this
    /// GPU, which must have been built with an equivalent configuration
    /// (everything but observability, checkpointing, and worker-count
    /// knobs), the same design point, and be given the same kernel.
    ///
    /// The container checksum is verified *before* any state is decoded —
    /// corrupt bytes are rejected with [`RestoreError::ChecksumMismatch`]
    /// and never loaded. A mid-payload decode error
    /// ([`RestoreError::Malformed`]) can only come from a version-skew bug,
    /// but it still leaves this GPU partially overwritten: discard it.
    ///
    /// # Errors
    ///
    /// Every [`RestoreError`] variant names the specific rejection.
    pub fn restore(&mut self, kernel: &Kernel, bytes: &[u8]) -> Result<(), RestoreError> {
        self.restore_inner(kernel, bytes, false)
    }

    /// Restores a **baseline** snapshot into this GPU even when this GPU
    /// models a different design — the fork step of a differential sweep.
    /// The warm-up prefix runs once on [`Design::Base`]; every design under
    /// comparison then forks from the identical machine state, so post-fork
    /// differences are attributable to the design alone (the warm-checkpoint
    /// methodology of sampled simulation).
    ///
    /// Only a `Base` snapshot is forkable across designs: the baseline
    /// carries no compression state, so the restored machine is exactly
    /// "this design, having made no compression decisions yet" —
    /// compression maps, compressed-line stores, and controller slots start
    /// empty and populate from the fork point on. Fork into a *freshly
    /// constructed* GPU: design-specific state the snapshot does not cover
    /// is left as built. A snapshot of this GPU's own design restores
    /// exactly as [`Gpu::restore`] would.
    ///
    /// # Errors
    ///
    /// As [`Gpu::restore`], except [`RestoreError::DesignMismatch`] is only
    /// returned for a cross-design snapshot that is not `Base`.
    pub fn restore_fork(&mut self, kernel: &Kernel, bytes: &[u8]) -> Result<(), RestoreError> {
        self.restore_inner(kernel, bytes, true)
    }

    fn restore_inner(
        &mut self,
        kernel: &Kernel,
        bytes: &[u8],
        fork: bool,
    ) -> Result<(), RestoreError> {
        let body = snapshot::verify_sealed(bytes)?;
        let mut r = SnapshotReader::new(body);
        if r.raw(snapshot::MAGIC.len())? != snapshot::MAGIC {
            return Err(RestoreError::BadMagic);
        }
        let version = r.u32()?;
        if version != snapshot::FORMAT_VERSION {
            return Err(RestoreError::VersionMismatch { found: version });
        }
        if r.u64()? != snapshot::config_hash(&self.cfg) {
            return Err(RestoreError::ConfigHashMismatch);
        }
        let label = r.string()?;
        let forked = label != self.design.label();
        if forked && !(fork && label == "Base") {
            return Err(RestoreError::DesignMismatch { found: label });
        }
        if r.u64()? != kernel.program().content_hash() {
            return Err(RestoreError::KernelMismatch);
        }
        self.payload_load(&mut r, forked)?;
        r.finish()?;
        Ok(())
    }

    /// Serializes everything [`Gpu::restore`] needs to continue the run.
    /// Deliberately absent: the compression map (a pure memoization,
    /// rebuilt empty), the tracer and event buffers (record-only), the
    /// phase-engine deltas and ingress lanes (empty at every cycle
    /// boundary), and the rolling checkpoint itself.
    fn payload_save(&self, w: &mut SnapshotWriter) {
        w.u64(self.now);
        w.u64(self.run_start);
        w.u32(self.next_cta);
        self.mem.save(w);
        self.line_store.save(w);
        w.usize(self.sms.len());
        for sm in &self.sms {
            sm.snap_save(w);
        }
        for d in &self.sm_designs {
            if let Design::Caba(c) = d {
                c.snap_save(w);
            }
        }
        w.usize(self.parts.len());
        for p in &self.parts {
            p.snap_save(w);
        }
        self.xbar_fwd.snap_save(w);
        self.xbar_rsp.snap_save(w);
        let mut ledger: Vec<(usize, u64, u64, u8)> = self
            .ledger
            .iter()
            .map(|(&(sm, line), e)| {
                let stage = match e.stage {
                    Stage::RequestXbar => 0u8,
                    Stage::Partition => 1,
                    Stage::ResponseXbar => 2,
                };
                (sm, line, e.issued_at, stage)
            })
            .collect();
        ledger.sort_unstable_by_key(|&(sm, line, _, _)| (sm, line));
        w.usize(ledger.len());
        for (sm, line, issued_at, stage) in ledger {
            w.usize(sm);
            w.u64(line);
            w.u64(issued_at);
            w.u8(stage);
        }
        self.xbar_injector.snap_save(w);
        w.u64(self.audits_run);
        w.u64(self.flits_dropped);
        w.u64(self.flit_retransmissions);
        w.u64(self.cycles_skipped);
        w.u64(self.skip_events);
    }

    /// `forked_from_base` marks a cross-design fork of a `Base` snapshot:
    /// the payload then carries no controller sections (the baseline writes
    /// none), so this design's controllers keep their as-built state.
    fn payload_load(
        &mut self,
        r: &mut SnapshotReader<'_>,
        forked_from_base: bool,
    ) -> Result<(), SnapError> {
        let programs = self.program_table();
        self.now = r.u64()?;
        self.run_start = r.u64()?;
        if self.run_start > self.now {
            return Err(SnapError::Invariant {
                what: "run epoch starts after the snapshot cycle",
            });
        }
        self.next_cta = r.u32()?;
        self.mem = FuncMem::load(r)?;
        self.line_store = LineStore::load(r)?;
        if r.seq_len("SMs", 1)? != self.sms.len() {
            return Err(SnapError::Invariant {
                what: "SM count mismatch",
            });
        }
        for sm in &mut self.sms {
            sm.snap_load(r, &programs)?;
        }
        if !forked_from_base {
            for d in &mut self.sm_designs {
                if let Design::Caba(c) = d {
                    c.snap_load(r)?;
                }
            }
        }
        if r.seq_len("partitions", 1)? != self.parts.len() {
            return Err(SnapError::Invariant {
                what: "partition count mismatch",
            });
        }
        for p in &mut self.parts {
            p.snap_load(r, forked_from_base)?;
        }
        self.xbar_fwd.snap_load(r)?;
        self.xbar_rsp.snap_load(r)?;
        self.ledger.clear();
        let n = r.seq_len("request ledger", 25)?;
        for _ in 0..n {
            let sm = r.usize()?;
            let line = r.u64()?;
            let issued_at = r.u64()?;
            let stage = match r.u8()? {
                0 => Stage::RequestXbar,
                1 => Stage::Partition,
                2 => Stage::ResponseXbar,
                tag => {
                    return Err(SnapError::BadTag {
                        what: "ledger stage",
                        tag: tag.into(),
                    })
                }
            };
            self.ledger
                .insert((sm, line), LedgerEntry { issued_at, stage });
        }
        self.xbar_injector.snap_load(r)?;
        self.audits_run = r.u64()?;
        self.flits_dropped = r.u64()?;
        self.flit_retransmissions = r.u64()?;
        self.cycles_skipped = r.u64()?;
        self.skip_events = r.u64()?;

        // Non-serialized runtime state: rebuild, drain, or re-baseline.
        self.cmap = Self::build_cmap(&self.design);
        for d in &mut self.sm_deltas {
            *d = SmDelta::default();
        }
        for d in &mut self.part_deltas {
            *d = CmapDelta::new();
        }
        self.fwd_lanes = IngressLanes::new(self.cfg.num_sms);
        self.rsp_lanes = IngressLanes::new(self.cfg.num_channels);
        self.last_checkpoint = None;
        self.tracer = self
            .cfg
            .observability
            .trace
            .map(|t| Tracer::new(t, self.cfg.num_sms));
        if let Some(tr) = self.tracer.as_mut() {
            // Prime the delta baselines so the first sample covers only
            // post-restore activity instead of the whole history.
            for (i, sm) in self.sms.iter().enumerate() {
                tr.last_app[i] = sm.app_instructions();
                tr.last_assist[i] = sm.assist_instructions();
                tr.last_stalls[i] = *sm.breakdown();
            }
            let (mut busy, mut total) = (0u64, 0u64);
            for p in &self.parts {
                let d = p.dram_stats();
                busy += d.bus_busy_cycles;
                total += d.total_cycles;
            }
            tr.last_dram_busy = busy;
            tr.last_dram_total = total;
            tr.last_cycle = self.now;
        }
        Ok(())
    }

    /// Assist-subroutine programs reachable on this design, keyed by
    /// content hash — the table [`crate::sm::Sm`] resolves serialized
    /// program references against on load.
    fn program_table(&self) -> FxHashMap<u64, Arc<Program>> {
        let mut table = FxHashMap::default();
        if let Design::Caba(c) = &self.design {
            for p in c.subroutine_programs() {
                table.insert(p.content_hash(), p);
            }
        }
        table
    }
}
